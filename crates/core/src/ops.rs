//! The operations layer: typed operation handles, completions, and
//! caller-owned receive buffers.
//!
//! [`Endpoint::post_send`](crate::Endpoint::post_send) and
//! [`Endpoint::post_recv`](crate::Endpoint::post_recv) return [`SendOp`] /
//! [`RecvOp`] handles backed by a generation-checked slab (`OpTable`), so
//! issuing an operation never allocates in steady state and a handle reused
//! after completion is detected instead of silently aliasing a newer
//! operation.  Completions are reported through a per-endpoint completion
//! queue ([`Completion`] records drained with
//! [`Endpoint::poll_completion`](crate::Endpoint::poll_completion)),
//! **separate** from the backend-facing [`Action`](crate::Action) stream:
//! backends route packets, applications consume completions.
//!
//! Receives additionally support:
//!
//! * **caller-owned buffers** ([`RecvBuf`], posted with
//!   [`Endpoint::post_recv_into`](crate::Endpoint::post_recv_into)): the
//!   engine reassembles pushed and pulled fragments directly into the
//!   caller's storage and hands the buffer back in the completion, making
//!   even the multi-fragment pull path allocation-free;
//! * **wildcard matching** ([`ANY_SOURCE`](crate::types::ANY_SOURCE) /
//!   [`ANY_TAG`](crate::types::ANY_TAG));
//! * **cancellation** ([`Endpoint::cancel`](crate::Endpoint::cancel)) and
//!   **truncation policies** ([`TruncationPolicy`]) for receives smaller
//!   than the arriving message.

use crate::error::Error;
use crate::queues::merge_interval;
use crate::types::{ProcessId, Tag};
use bytes::Bytes;
use ppmsg_check::sync::atomic::{AtomicUsize, Ordering};
use ppmsg_check::sync::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::task::Waker;

/// Handle of a posted send operation.
///
/// Identifies one in-flight send until its [`Completion`] is produced; the
/// pair `(slot, generation)` is generation-checked, so a handle held past
/// completion can never be confused with a newer operation that reuses the
/// same slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SendOp {
    slot: u32,
    generation: u32,
}

/// Handle of a posted receive operation.
///
/// See [`SendOp`] for the generation-checking rationale.  A `RecvOp` can be
/// cancelled with [`Endpoint::cancel`](crate::Endpoint::cancel) while it is
/// still unmatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecvOp {
    slot: u32,
    generation: u32,
}

macro_rules! op_impl {
    ($ty:ident, $prefix:literal) => {
        impl $ty {
            /// Reconstructs a handle from its raw parts.  Intended for tests,
            /// benchmarks, and backends that index per-operation state by
            /// slot; handles used with an engine must originate from it.
            #[inline]
            pub fn from_raw(slot: u32, generation: u32) -> Self {
                Self { slot, generation }
            }

            /// The dense slab slot of this operation.  Slots are reused after
            /// completion, so a slot alone does not identify an operation —
            /// always pair it with [`Self::generation`].
            #[inline]
            pub fn slot(&self) -> u32 {
                self.slot
            }

            /// The generation the slot had when this operation was issued.
            #[inline]
            pub fn generation(&self) -> u32 {
                self.generation
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}.{}"), self.slot, self.generation)
            }
        }
    };
}

op_impl!(SendOp, "send");
op_impl!(RecvOp, "recv");

/// Either kind of operation handle, as carried by a [`Completion`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpId {
    /// A send operation.
    Send(SendOp),
    /// A receive operation.
    Recv(RecvOp),
}

impl From<SendOp> for OpId {
    fn from(op: SendOp) -> Self {
        OpId::Send(op)
    }
}

impl From<RecvOp> for OpId {
    fn from(op: RecvOp) -> Self {
        OpId::Recv(op)
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpId::Send(op) => op.fmt(f),
            OpId::Recv(op) => op.fmt(f),
        }
    }
}

/// What a posted receive does when the arriving message is larger than its
/// buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TruncationPolicy {
    /// The receive completes with [`Status::Error`] carrying
    /// [`Error::ReceiveTooSmall`]; the message itself is **unharmed** and
    /// stays queued as unexpected, so the next adequate receive gets it in
    /// full.  (The seed dropped the message's partial state instead, which
    /// poisoned it: a later big-enough receive would hang forever waiting for
    /// the discarded eager prefix.)
    #[default]
    Error,
    /// The receive accepts the message and completes with
    /// [`Status::Truncated`], delivering the first `capacity` bytes; the
    /// remainder is discarded on delivery.
    Truncate,
}

/// Terminal status of an operation, as reported in its [`Completion`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Status {
    /// The operation completed normally.
    Ok,
    /// The receive completed but the message was larger than the posted
    /// buffer; only the first `capacity` bytes were delivered
    /// ([`TruncationPolicy::Truncate`]).
    Truncated {
        /// Full length of the message in bytes (the completion's `len` field
        /// holds the number of bytes actually delivered).
        message_len: usize,
    },
    /// The receive was cancelled before it matched a message.
    Cancelled,
    /// The operation failed.
    Error(Error),
}

impl Status {
    /// `true` for [`Status::Ok`].
    #[inline]
    pub fn is_ok(&self) -> bool {
        matches!(self, Status::Ok)
    }
}

/// One completed operation, drained from the endpoint's completion queue.
#[derive(Debug)]
pub struct Completion {
    /// The operation this completion belongs to.
    pub op: OpId,
    /// The remote process: destination for sends, message source for
    /// receives.  For a cancelled receive this echoes the posted selector
    /// (which may be [`ANY_SOURCE`](crate::types::ANY_SOURCE)).
    pub peer: ProcessId,
    /// The message tag (the posted selector for cancelled receives).
    pub tag: Tag,
    /// Bytes transferred: the message length for sends and complete
    /// receives, the delivered prefix for truncated receives, `0` for
    /// cancelled or failed operations.
    pub len: usize,
    /// How the operation ended.
    pub status: Status,
    /// The message bytes of an engine-buffered receive
    /// ([`Endpoint::post_recv`](crate::Endpoint::post_recv)).  `None` for
    /// sends and caller-buffered receives.
    pub data: Option<Bytes>,
    /// The caller-owned buffer of a
    /// [`post_recv_into`](crate::Endpoint::post_recv_into) receive, handed
    /// back for reuse (also on cancellation and failure).
    pub buf: Option<RecvBuf>,
}

impl Completion {
    /// The delivered message bytes of a receive completion, regardless of
    /// whether the receive was engine-buffered or caller-buffered.
    pub fn payload(&self) -> Option<&[u8]> {
        match (&self.data, &self.buf) {
            (Some(data), _) => Some(&data[..]),
            (None, Some(buf)) => Some(buf.as_slice()),
            (None, None) => None,
        }
    }
}

/// A caller-owned destination buffer for
/// [`post_recv_into`](crate::Endpoint::post_recv_into).
///
/// The engine reassembles the message's pushed and pulled fragments directly
/// into this storage — no engine-side assembly buffer, no owned-`Bytes`
/// handoff — and returns the buffer in the [`Completion`].  Reusing one
/// `RecvBuf` across receives makes the pull path allocation-free in steady
/// state.
///
/// A buffer smaller than the arriving message behaves according to the
/// posted [`TruncationPolicy`].
#[derive(Debug, Default)]
pub struct RecvBuf {
    /// Caller storage; `data.len()` is the capacity of the receive.
    data: Vec<u8>,
    /// Sorted, disjoint covered `[start, end)` intervals over the *message*
    /// range `[0, total)` (which may exceed the capacity when truncating).
    covered: Vec<(usize, usize)>,
    received: usize,
    total: usize,
}

impl RecvBuf {
    /// Creates a buffer able to receive messages of up to `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        RecvBuf {
            data: vec![0u8; capacity],
            covered: Vec::new(),
            received: 0,
            total: 0,
        }
    }

    /// Wraps caller storage; the vector's length is the receive capacity.
    pub fn from_vec(data: Vec<u8>) -> Self {
        RecvBuf {
            data,
            covered: Vec::new(),
            received: 0,
            total: 0,
        }
    }

    /// The receive capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Number of message bytes present after a completed receive
    /// (`min(message length, capacity)`).
    #[inline]
    pub fn len(&self) -> usize {
        self.total.min(self.data.len())
    }

    /// `true` when no message bytes are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The delivered message bytes (valid after the completion).
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        let len = self.len();
        &self.data[..len]
    }

    /// Unwraps the underlying storage.
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }

    /// Re-initialises the buffer for a message of `total` bytes, keeping the
    /// interval list's capacity.
    pub(crate) fn begin(&mut self, total: usize) {
        self.covered.clear();
        self.received = 0;
        self.total = total;
    }

    /// Records a fragment at `offset` in the message, copying the bytes that
    /// fit below the capacity and counting coverage over the full message
    /// range.  Returns the number of newly covered message bytes.
    pub(crate) fn write_at(&mut self, offset: usize, fragment: &[u8]) -> usize {
        if offset >= self.total || fragment.is_empty() {
            return 0;
        }
        let end = (offset + fragment.len()).min(self.total);
        let copy_end = end.min(self.data.len());
        if offset < copy_end {
            self.data[offset..copy_end].copy_from_slice(&fragment[..copy_end - offset]);
        }
        let newly = merge_interval(&mut self.covered, offset, end);
        self.received += newly;
        newly
    }

    /// `true` once every byte of the message range has been received.
    pub(crate) fn is_complete(&self) -> bool {
        self.received == self.total
    }
}

/// A generation-checked slab of in-flight operations.
///
/// Issuing an operation pops a recycled slot (or grows the arena once, at
/// peak working-set size); completing it bumps the slot's generation so any
/// held handle goes stale.  Steady-state post/complete cycles never allocate;
/// growth is counted in [`OpTable::alloc_events`].
#[derive(Debug)]
pub(crate) struct OpTable<T> {
    slots: Vec<(u32, Option<T>)>,
    free: Vec<u32>,
    alloc_events: u64,
}

impl<T> Default for OpTable<T> {
    fn default() -> Self {
        OpTable {
            slots: Vec::new(),
            free: Vec::new(),
            alloc_events: 0,
        }
    }
}

impl<T> OpTable<T> {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Stores `value`, returning `(slot, generation)`.
    pub(crate) fn insert(&mut self, value: T) -> (u32, u32) {
        if let Some(slot) = self.free.pop() {
            let entry = &mut self.slots[slot as usize];
            debug_assert!(entry.1.is_none());
            entry.1 = Some(value);
            return (slot, entry.0);
        }
        if self.slots.len() == self.slots.capacity() {
            self.alloc_events += 1;
        }
        let slot = self.slots.len() as u32;
        self.slots.push((0, Some(value)));
        (slot, 0)
    }

    pub(crate) fn get_mut(&mut self, slot: u32, generation: u32) -> Option<&mut T> {
        let entry = self.slots.get_mut(slot as usize)?;
        if entry.0 != generation {
            return None;
        }
        entry.1.as_mut()
    }

    /// Removes the operation, bumping the slot generation so the handle goes
    /// stale, and recycles the slot.
    pub(crate) fn remove(&mut self, slot: u32, generation: u32) -> Option<T> {
        let entry = self.slots.get_mut(slot as usize)?;
        if entry.0 != generation {
            return None;
        }
        let value = entry.1.take()?;
        entry.0 = entry.0.wrapping_add(1);
        if self.free.len() == self.free.capacity() {
            self.alloc_events += 1;
        }
        self.free.push(slot);
        Some(value)
    }

    /// Number of live operations.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Number of heap allocations this table has performed.
    pub(crate) fn alloc_events(&self) -> u64 {
        self.alloc_events
    }
}

/// One kind's waker slots: `slot → [(generation, waker)]`.
///
/// Storage is slot-indexed like the operation tables, but each slot holds a
/// (tiny) generation-keyed **list**, not a single latest-wins entry: the
/// operation tables recycle a slot the moment its operation retires, so a
/// waiter of an older, still-unclaimed completion and a waiter of the newer
/// operation that reused the slot must both keep their registrations — a
/// latest-wins slot silently dropped the older waiter's eviction exemption,
/// letting the retention cap evict an awaited completion into a
/// forever-pending future (caught by the retention proptest).  List
/// capacity is retained across take/re-register churn, so the steady path
/// stays allocation-free; every registration has a deterministic removal
/// (claim, future drop, or wait timeout), which bounds the lists by the
/// number of live waiters.
#[derive(Debug, Default)]
struct WakerSlots {
    slots: Vec<Vec<(u32, Registration)>>,
    registered: usize,
    alloc_events: u64,
}

/// One waiter registration: either a bare eviction-exemption *interest* (a
/// blocking path that re-checks on its own, or a future not yet polled) or
/// a real [`Waker`] to invoke on publication.
///
/// Interest used to be encoded as a registered `Waker::noop()` and detected
/// with `will_wake(Waker::noop())` — but the noop waker's vtable is
/// const-promoted **per crate**, so a noop registered through code
/// instantiated in one crate does not `will_wake`-match a `Waker::noop()`
/// conjured in another, and the detection silently failed across the crate
/// boundary.  An explicit variant cannot mis-compare.
#[derive(Debug)]
enum Registration {
    /// Eviction exemption only: nothing to wake on publication.
    Interest,
    /// A task's waker, invoked when the completion is published.
    Waker(Waker),
}

impl Registration {
    fn waker(&self) -> Option<&Waker> {
        match self {
            Registration::Interest => None,
            Registration::Waker(waker) => Some(waker),
        }
    }
}

impl WakerSlots {
    /// Finds the entry for `(slot, generation)`, creating storage up to
    /// `slot` on first touch.
    fn entry_mut(&mut self, slot: u32, generation: u32) -> Option<&mut Registration> {
        let idx = slot as usize;
        if idx >= self.slots.len() {
            if idx >= self.slots.capacity() {
                self.alloc_events += 1;
            }
            self.slots.resize_with(idx + 1, Vec::new);
        }
        self.slots[idx]
            .iter_mut()
            .find(|(gen, _)| *gen == generation)
            .map(|(_, registration)| registration)
    }

    fn insert(&mut self, slot: u32, generation: u32, registration: Registration) {
        let entries = &mut self.slots[slot as usize];
        if entries.len() == entries.capacity() {
            self.alloc_events += 1;
        }
        entries.push((generation, registration));
        self.registered += 1;
    }

    fn register(&mut self, slot: u32, generation: u32, waker: &Waker) {
        match self.entry_mut(slot, generation) {
            // Re-registration for the same operation: latest waker wins, and
            // `will_wake` (same task on a spurious poll) skips the clone.
            Some(Registration::Waker(existing)) if existing.will_wake(waker) => {}
            Some(registration) => *registration = Registration::Waker(waker.clone()),
            None => self.insert(slot, generation, Registration::Waker(waker.clone())),
        }
    }

    /// Registers a bare interest, never downgrading a real waker.
    fn register_interest(&mut self, slot: u32, generation: u32) {
        if self.entry_mut(slot, generation).is_none() {
            self.insert(slot, generation, Registration::Interest);
        }
    }

    fn take(&mut self, slot: u32, generation: u32) -> Option<Registration> {
        let entries = self.slots.get_mut(slot as usize)?;
        let pos = entries.iter().position(|(gen, _)| *gen == generation)?;
        self.registered -= 1;
        // Wake order across operations is driven by completion publication;
        // within a slot, swap_remove is fine (and keeps the capacity).
        Some(entries.swap_remove(pos).1)
    }

    fn get(&self, slot: u32, generation: u32) -> Option<&Registration> {
        self.slots
            .get(slot as usize)?
            .iter()
            .find(|(gen, _)| *gen == generation)
            .map(|(_, registration)| registration)
    }
}

/// Async wakers of in-flight operations, keyed by op slot + generation.
///
/// Backends park a task's [`Waker`] here when the operation it awaits has not
/// completed yet, and take it back out (to wake) when the completion is
/// published.  Storage is slot-indexed like the operation tables themselves
/// (each slot holding a tiny generation-keyed list, so waiters of an old
/// unclaimed completion and of the newer operation reusing its slot
/// coexist); registering and taking are O(1) and allocation-free once the
/// table has grown to the endpoint's peak number of concurrent operations,
/// and the generation key makes a waker registered for a retired operation
/// unreachable — a slot reuse can never wake (or be woken by) a stale task.
#[derive(Debug, Default)]
pub struct WakerTable {
    send: WakerSlots,
    recv: WakerSlots,
}

impl WakerTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `waker` to be taken when operation `op` completes,
    /// replacing any waker (or bare interest) previously registered for the
    /// same operation.  Steady-state re-registration (same op, same task)
    /// is free.
    pub fn register_waker(&mut self, op: OpId, waker: &Waker) {
        match op {
            OpId::Send(s) => self.send.register(s.slot(), s.generation(), waker),
            OpId::Recv(r) => self.recv.register(r.slot(), r.generation(), waker),
        }
    }

    /// Registers a bare eviction-exemption interest for `op` — no waker to
    /// invoke on publication.  A real waker already registered is left in
    /// place.
    pub fn register_interest(&mut self, op: OpId) {
        match op {
            OpId::Send(s) => self.send.register_interest(s.slot(), s.generation()),
            OpId::Recv(r) => self.recv.register_interest(r.slot(), r.generation()),
        }
    }

    /// Removes `op`'s registration, returning its waker if the registration
    /// carried one (`None` for bare interests and stale handles).
    pub fn take_waker(&mut self, op: OpId) -> Option<Waker> {
        let registration = match op {
            OpId::Send(s) => self.send.take(s.slot(), s.generation()),
            OpId::Recv(r) => self.recv.take(r.slot(), r.generation()),
        }?;
        match registration {
            Registration::Interest => None,
            Registration::Waker(waker) => Some(waker),
        }
    }

    /// The waker registered for `op`, if any, left in place (`None` for
    /// bare interests).
    pub fn get_waker(&self, op: OpId) -> Option<&Waker> {
        self.get(op).and_then(Registration::waker)
    }

    fn get(&self, op: OpId) -> Option<&Registration> {
        match op {
            OpId::Send(s) => self.send.get(s.slot(), s.generation()),
            OpId::Recv(r) => self.recv.get(r.slot(), r.generation()),
        }
    }

    /// `true` when any registration — real waker or bare interest — is held
    /// for `op`.
    pub fn has_registration(&self, op: OpId) -> bool {
        self.get(op).is_some()
    }

    /// Number of registrations currently held (wakers and bare interests,
    /// including any stale ones whose slot has not been reused yet).
    pub fn len(&self) -> usize {
        self.send.registered + self.recv.registered
    }

    /// `true` when no waker is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of heap allocations this table has performed.
    pub fn alloc_events(&self) -> u64 {
        self.send.alloc_events + self.recv.alloc_events
    }
}

/// One kind's completion slots: `slot → [(generation, completion)]`.
///
/// A slot usually holds at most one unclaimed completion, but the operation
/// tables recycle a slot the moment its operation retires, so a *newer*
/// operation on the same slot can complete while an older completion is
/// still unclaimed — each slot is therefore a (tiny) generation-keyed list,
/// whose capacity is retained across claims so steady-state churn stays
/// allocation-free.
#[derive(Debug, Default)]
struct CompletionSlots {
    slots: Vec<Vec<(u32, Completion)>>,
    alloc_events: u64,
}

impl CompletionSlots {
    fn insert(&mut self, slot: u32, generation: u32, completion: Completion) {
        let idx = slot as usize;
        if idx >= self.slots.len() {
            if idx >= self.slots.capacity() {
                self.alloc_events += 1;
            }
            self.slots.resize_with(idx + 1, Vec::new);
        }
        let entries = &mut self.slots[idx];
        debug_assert!(
            entries.iter().all(|(gen, _)| *gen != generation),
            "duplicate completion for live operation"
        );
        if entries.len() == entries.capacity() {
            self.alloc_events += 1;
        }
        entries.push((generation, completion));
    }

    fn take(&mut self, slot: u32, generation: u32) -> Option<Completion> {
        let entries = self.slots.get_mut(slot as usize)?;
        let pos = entries.iter().position(|(gen, _)| *gen == generation)?;
        // Order across operations is tracked by the queue's `order` deque;
        // within a slot, swap_remove is fine.
        Some(entries.swap_remove(pos).1)
    }

    fn get(&self, slot: u32, generation: u32) -> Option<&Completion> {
        self.slots
            .get(slot as usize)?
            .iter()
            .find(|(gen, _)| *gen == generation)
            .map(|(_, completion)| completion)
    }

    fn contains(&self, slot: u32, generation: u32) -> bool {
        self.slots
            .get(slot as usize)
            .is_some_and(|entries| entries.iter().any(|(gen, _)| *gen == generation))
    }
}

/// Default number of unclaimed completions a [`CompletionQueue`] retains
/// before evicting the oldest.
pub const DEFAULT_COMPLETION_RETENTION: usize = 4096;

/// Outcome of one [`CompletionQueue::take_or_wait`] step.
#[derive(Debug)]
pub enum WaitPoll {
    /// The operation had finished; its completion was claimed.
    Ready(Completion),
    /// Not finished yet; the caller's waker is registered (replacing only a
    /// noop interest or the caller's own previous registration) and will be
    /// woken on publication.
    Registered,
    /// Another task's real waker is registered for this operation; nothing
    /// was claimed or changed.  The caller should yield and re-poll — the
    /// registered waiter has priority on the completion.
    Occupied,
}

/// What a [`CompletionQueue::peek_each`] inspector decides about one
/// completion it was shown by reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Claim {
    /// Leave the completion queued (its drain position is preserved): a
    /// later [`CompletionQueue::take`], drain, or `wait` can still claim it
    /// and move its `Bytes`/[`RecvBuf`] out.  This is the telemetry path —
    /// look, count, never touch ownership.
    Keep,
    /// Consume the completion: it is removed from the queue and dropped
    /// (dropping releases any `Bytes` refcount or [`RecvBuf`] it carried).
    /// Use this to retire fire-and-forget results whose status has been
    /// inspected, without materialising them through a drain vector.
    Remove,
}

/// The backend-side completion queue of one endpoint: completed operations
/// indexed by their handle, plus the [`WakerTable`] of tasks awaiting them.
///
/// This replaces the linearly-scanned `done` vector the host backends used
/// to keep: claiming one operation's completion ([`CompletionQueue::take`])
/// is an O(1) slot probe instead of an O(n) scan-and-shift, so a
/// long-running endpoint with many unclaimed completions (fire-and-forget
/// sends) no longer degrades every `wait` — the retention scan that made
/// such endpoints O(n²) is gone.
///
/// Completions that are *never* claimed are evicted once more than the
/// retention cap ([`CompletionQueue::set_retention`], default
/// [`DEFAULT_COMPLETION_RETENTION`]) are outstanding, oldest first, so a
/// fire-and-forget workload cannot grow the queue without bound.  Claimed or
/// drained completions never count against the cap.
#[derive(Debug)]
pub struct CompletionQueue {
    send: CompletionSlots,
    recv: CompletionSlots,
    /// Insertion order for FIFO draining and oldest-first eviction.  Entries
    /// whose completion was already taken are stale and skipped (and the
    /// deque is compacted when stale entries dominate).
    order: VecDeque<OpId>,
    live: usize,
    retention: usize,
    evicted: u64,
    wakers: WakerTable,
    /// Recycled buffer for the wakers a `publish` batch collects, so the
    /// caller can wake them *after* releasing the lock guarding this queue
    /// without allocating per batch.
    wake_scratch: Vec<Waker>,
    alloc_events: u64,
}

impl Default for CompletionQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl CompletionQueue {
    /// Creates an empty queue with the default retention cap.
    pub fn new() -> Self {
        CompletionQueue {
            send: CompletionSlots::default(),
            recv: CompletionSlots::default(),
            order: VecDeque::new(),
            live: 0,
            retention: DEFAULT_COMPLETION_RETENTION,
            evicted: 0,
            wakers: WakerTable::new(),
            wake_scratch: Vec::new(),
            alloc_events: 0,
        }
    }

    /// Caps the number of unclaimed completions retained; the oldest are
    /// evicted (and counted in [`CompletionQueue::evicted`]) beyond it.
    pub fn set_retention(&mut self, retention: usize) {
        self.retention = retention.max(1);
        self.evict_over_cap();
    }

    /// Number of completions evicted because they were never claimed.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Number of completions currently waiting to be claimed.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no completion is waiting.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    fn is_live(&self, op: OpId) -> bool {
        match op {
            OpId::Send(s) => self.send.contains(s.slot(), s.generation()),
            OpId::Recv(r) => self.recv.contains(r.slot(), r.generation()),
        }
    }

    fn take_slot(&mut self, op: OpId) -> Option<Completion> {
        match op {
            OpId::Send(s) => self.send.take(s.slot(), s.generation()),
            OpId::Recv(r) => self.recv.take(r.slot(), r.generation()),
        }
    }

    /// Evicts oldest-first past the retention cap, **skipping any operation
    /// a waiter has registered for**: a registered waker marks the
    /// completion as spoken for (futures register from creation /
    /// first-`Pending` poll, blocking `wait`ers via
    /// [`CompletionQueue::register_interest`], and registrations persist
    /// until the completion is claimed), so eviction can never strand a
    /// waiter on an operation that completed.  Only completions nobody
    /// waits for — the fire-and-forget traffic the cap exists for — are
    /// dropped.  Exempt completions are bounded by the waker table (one
    /// registration per live waiter, each removed at claim, future drop, or
    /// wait timeout), so the queue stays bounded by
    /// `retention + concurrently awaited operations`.
    ///
    /// The loop only runs while evictable (non-exempt) entries are
    /// guaranteed to exist (`live > retention + registrations`), so the
    /// all-exempt steady state — a large async fan-out — costs O(1) per
    /// push instead of rescanning the deque.
    fn evict_over_cap(&mut self) {
        let mut scan = self.order.len();
        while self.live > self.retention + self.wakers.len() && scan > 0 {
            scan -= 1;
            let Some(op) = self.order.pop_front() else {
                break;
            };
            if !self.is_live(op) {
                continue; // stale entry: already claimed
            }
            if self.wakers.has_registration(op) {
                // Awaited: exempt, keep its drain position at the back.
                if self.order.len() == self.order.capacity() {
                    self.alloc_events += 1;
                }
                self.order.push_back(op);
                continue;
            }
            self.take_slot(op);
            self.live -= 1;
            self.evicted += 1;
        }
    }

    /// Marks `op` as waited-on without supplying a real waker: its
    /// completion (present or future) becomes exempt from retention
    /// eviction until claimed.  Blocking `wait` paths call this before
    /// parking on a condvar — they re-check on every publish, so they need
    /// the exemption, not a wake — and futures call it at creation so a
    /// completion cannot be evicted before their first poll.  A real waker
    /// already registered for the operation is left untouched, and the
    /// generation ordering in the waker table makes a stale handle's
    /// interest harmless to the slot's current occupant.
    pub fn register_interest(&mut self, op: OpId) {
        self.wakers.register_interest(op);
    }

    /// Drops a [`CompletionQueue::register_interest`] registration for `op`
    /// if one is still in place (a real waker registered by a future is left
    /// alone).  Blocking `wait` paths call this when they give up on a
    /// timeout, so an abandoned wait does not leave its completion exempt
    /// from eviction — and undrainable — forever.
    pub fn clear_interest(&mut self, op: OpId) {
        if matches!(self.wakers.get(op), Some(Registration::Interest)) {
            drop(self.wakers.take_waker(op));
        }
    }

    /// Drops **any** waker registered for `op` — noop interest or a real
    /// waker alike.  A future that abandons its await (is dropped before
    /// resolving) calls this so the operation's completion goes back to
    /// being ordinary fire-and-forget traffic: drainable through
    /// [`CompletionQueue::drain_into`] and evictable past the retention
    /// cap, instead of pinned for a waiter that no longer exists.
    pub fn deregister(&mut self, op: OpId) {
        drop(self.wakers.take_waker(op));
    }

    /// Stores one completion and returns a clone of the waker of the task
    /// awaiting it, if any.  The caller must `wake()` it **after releasing
    /// whatever lock guards this queue** — an arbitrary executor's waker may
    /// poll inline, which would re-enter the lock.  The registration itself
    /// stays in the table until the completion is claimed, keeping the
    /// operation exempt from retention eviction for the whole wake → poll →
    /// claim window.
    pub fn push(&mut self, completion: Completion) -> Option<Waker> {
        let op = completion.op;
        match op {
            OpId::Send(s) => self.send.insert(s.slot(), s.generation(), completion),
            OpId::Recv(r) => self.recv.insert(r.slot(), r.generation(), completion),
        }
        if self.order.len() == self.order.capacity() {
            self.alloc_events += 1;
        }
        self.order.push_back(op);
        self.live += 1;
        self.evict_over_cap();
        // A noop registration is an eviction exemption
        // ([`CompletionQueue::register_interest`]), not a waiter: waking it
        // would make every fire-and-forget completion pay the wake path.
        self.wakers.get_waker(op).cloned()
    }

    /// Stores a batch of completions, draining `comps` (its capacity is kept
    /// for reuse).  Returns the wakers of every task that awaited one of
    /// them; the caller must invoke them **after releasing the lock guarding
    /// this queue**, then hand the buffer back through
    /// [`CompletionQueue::recycle_woken`] so the steady path stays
    /// allocation-free.  An empty return means nothing to wake (and nothing
    /// to recycle).
    #[must_use = "returned wakers must be woken after the queue's lock is released"]
    pub fn publish(&mut self, comps: &mut Vec<Completion>) -> Vec<Waker> {
        let mut woken = std::mem::take(&mut self.wake_scratch);
        for completion in comps.drain(..) {
            if let Some(waker) = self.push(completion) {
                if woken.len() == woken.capacity() {
                    self.alloc_events += 1;
                }
                woken.push(waker);
            }
        }
        if woken.is_empty() {
            // Nothing to wake: keep the scratch (and its capacity) in place.
            self.wake_scratch = woken;
            return Vec::new();
        }
        woken
    }

    /// Returns a drained wake buffer from [`CompletionQueue::publish`] so
    /// its capacity is reused by the next batch.
    pub fn recycle_woken(&mut self, woken: Vec<Waker>) {
        debug_assert!(woken.is_empty(), "recycled wake buffer must be drained");
        if woken.capacity() > self.wake_scratch.capacity() {
            self.wake_scratch = woken;
        }
    }

    /// Claims the completion of `op`, if the operation has finished and its
    /// completion has not been claimed, drained, or evicted yet.  Any waker
    /// still registered for the operation is dropped — the await is over.
    pub fn take(&mut self, op: OpId) -> Option<Completion> {
        let completion = self.take_slot(op)?;
        drop(self.wakers.take_waker(op));
        self.live -= 1;
        // Taking leaves a stale entry in `order`; compact once stale entries
        // outnumber live ones so the deque stays proportional to the live
        // set (amortized O(1) per take).
        if self.order.len() > 64 && self.order.len() >= 2 * self.live {
            let mut retained = std::mem::take(&mut self.order);
            retained.retain(|&op| self.is_live(op));
            self.order = retained;
        }
        Some(completion)
    }

    /// [`CompletionQueue::take`], registering `waker` to be woken when the
    /// operation completes if it has not yet.  Checking and registering are
    /// one atomic step from the caller's point of view (this method runs
    /// under the caller's lock), so a completion can never slip between a
    /// failed check and the registration — the lost-wakeup race of the
    /// check-then-register idiom cannot happen.
    pub fn take_or_register(&mut self, op: OpId, waker: &Waker) -> Option<Completion> {
        if let Some(completion) = self.take(op) {
            return Some(completion);
        }
        self.wakers.register_waker(op, waker);
        None
    }

    /// The polite variant of [`CompletionQueue::take_or_register`] for
    /// *secondary* waiters (a blocking wait racing a live future): it never
    /// claims a completion out from under — and never displaces the
    /// registration of — another task registered for `op`.  Any existing
    /// registration that is not this `waker`'s own — a future's real waker
    /// **or** its bare [`CompletionQueue::register_interest`] (only futures
    /// register interest) — leaves the operation untouched and returns
    /// [`WaitPoll::Occupied`], so the registered waiter keeps its wakeup,
    /// its eviction exemption, and its claim.
    pub fn take_or_wait(&mut self, op: OpId, waker: &Waker) -> WaitPoll {
        match self.wakers.get(op) {
            Some(Registration::Interest) => return WaitPoll::Occupied,
            Some(Registration::Waker(w)) if !w.will_wake(waker) => return WaitPoll::Occupied,
            _ => {}
        }
        if let Some(completion) = self.take(op) {
            return WaitPoll::Ready(completion);
        }
        self.wakers.register_waker(op, waker);
        WaitPoll::Registered
    }

    /// Withdraws a [`CompletionQueue::take_or_wait`] registration, touching
    /// nothing unless the registered waker is `waker` itself — an expiring
    /// blocking wait must not tear down a registration that meanwhile went
    /// to another task.
    pub fn deregister_waiter(&mut self, op: OpId, waker: &Waker) {
        if self
            .wakers
            .get_waker(op)
            .is_some_and(|w| w.will_wake(waker))
        {
            drop(self.wakers.take_waker(op));
        }
    }

    /// Appends every unclaimed, **unawaited** completion to `out`, oldest
    /// first, reusing `out`'s capacity.  A completion some waiter has
    /// registered for (a parked future or a blocking `wait`) is left in
    /// place — a concurrent drain loop must not steal a result out from
    /// under a task that would then pend forever.
    pub fn drain_into(&mut self, out: &mut Vec<Completion>) {
        for _ in 0..self.order.len() {
            let Some(op) = self.order.pop_front() else {
                break;
            };
            if !self.is_live(op) {
                continue; // stale entry: already claimed
            }
            if self.wakers.has_registration(op) {
                // Awaited: keep it (and its drain position) for the waiter.
                if self.order.len() == self.order.capacity() {
                    self.alloc_events += 1;
                }
                self.order.push_back(op);
                continue;
            }
            let completion = self.take_slot(op).expect("live entry has a completion");
            self.live -= 1;
            out.push(completion);
        }
    }

    /// Shows every unclaimed, **unawaited** completion to `f` by reference,
    /// oldest first — the borrowed counterpart of
    /// [`CompletionQueue::drain_into`]: nothing is moved, so a multi-fragment
    /// pulled receive can be inspected (status, peer, payload bytes) without
    /// its [`RecvBuf`] or `Bytes` ever leaving the queue.  `f` returns a
    /// [`Claim`] per completion: [`Claim::Keep`] preserves it (and its drain
    /// position), [`Claim::Remove`] consumes and drops it.
    ///
    /// Completions a waiter has registered for (a parked future or a
    /// blocking `wait`) are skipped entirely, exactly as in `drain_into` — an
    /// inspector must not observe, and can certainly not remove, a result
    /// that is spoken for.
    pub fn peek_each(&mut self, f: &mut dyn FnMut(&Completion) -> Claim) {
        for _ in 0..self.order.len() {
            let Some(op) = self.order.pop_front() else {
                break;
            };
            if !self.is_live(op) {
                continue; // stale entry: already claimed
            }
            if self.wakers.has_registration(op) {
                // Awaited: keep it (and its drain position) for the waiter.
                if self.order.len() == self.order.capacity() {
                    self.alloc_events += 1;
                }
                self.order.push_back(op);
                continue;
            }
            let completion = match op {
                OpId::Send(s) => self.send.get(s.slot(), s.generation()),
                OpId::Recv(r) => self.recv.get(r.slot(), r.generation()),
            }
            .expect("live entry has a completion");
            match f(completion) {
                Claim::Keep => {
                    if self.order.len() == self.order.capacity() {
                        self.alloc_events += 1;
                    }
                    self.order.push_back(op);
                }
                Claim::Remove => {
                    drop(self.take_slot(op));
                    self.live -= 1;
                }
            }
        }
    }

    /// Number of heap allocations this queue (including its waker table) has
    /// performed.
    pub fn alloc_events(&self) -> u64 {
        self.alloc_events
            + self.send.alloc_events
            + self.recv.alloc_events
            + self.wakers.alloc_events()
    }

    /// Number of waiter registrations currently held — real wakers and bare
    /// eviction-exemption interests alike.  [`CompletionMailbox`] reads this
    /// after every queue access to decide whether a producer must take the
    /// publication lock at all.
    pub fn waiters(&self) -> usize {
        self.wakers.len()
    }
}

/// Invokes a [`CompletionQueue::publish`] wake batch **outside** the lock
/// that guards the queue, then hands the drained buffer to `recycle` (which
/// should briefly re-take the lock and call
/// [`CompletionQueue::recycle_woken`]).  Centralises the
/// publish → unlock → wake → recycle protocol all backends must follow: a
/// waker is arbitrary executor code and may legally poll — and so re-enter
/// the endpoint — inline.  No-op (and no lock retaken) for empty batches.
pub fn wake_all<F: FnOnce(Vec<Waker>)>(mut woken: Vec<Waker>, recycle: F) {
    if woken.is_empty() {
        return;
    }
    for waker in woken.drain(..) {
        waker.wake();
    }
    recycle(woken);
}

/// Fault-injection knobs for the model-check harnesses.  Each knob
/// deliberately reintroduces a historical bug class into the mailbox
/// handshake; the `--cfg ppmsg_check` CI job asserts the model checker
/// catches every one within the preemption bound (teeth for the teeth).
/// Compiled only under `--cfg ppmsg_check`; knobs are plain process-global
/// flags, so harnesses that flip them must serialize.
#[cfg(ppmsg_check)]
pub mod sabotage {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Downgrade the two-flag `pending`/`waiters` handshake from `SeqCst` to
    /// `Relaxed`, and split the producer's `pending` bump into a plain
    /// load+store.  Under the model's store-buffer semantics both sides can
    /// then miss each other's flag — the classic Dekker reordering — and a
    /// consumer parks forever.
    pub static WEAK_FLAGS: AtomicBool = AtomicBool::new(false);
    /// Drop the consumer half of the handshake: `with` skips its post-unlock
    /// `pending` re-check, so a producer that loaded a stale zero `waiters`
    /// snapshot leaves a registered waker unserved.
    pub static SKIP_RECHECK: AtomicBool = AtomicBool::new(false);

    pub(super) fn weak_flags() -> bool {
        WEAK_FLAGS.load(Ordering::Relaxed)
    }

    pub(super) fn skip_recheck() -> bool {
        SKIP_RECHECK.load(Ordering::Relaxed)
    }

    /// Reset every knob (harnesses call this between variants).
    pub fn reset() {
        WEAK_FLAGS.store(false, Ordering::Relaxed);
        SKIP_RECHECK.store(false, Ordering::Relaxed);
    }
}

/// A [`CompletionQueue`] behind an MPSC publication path.
///
/// With a sharded engine, several shards (and with the intranode fabric,
/// several *routing threads*) complete operations concurrently, but the old
/// publication scheme made every one of them serialize on the single `done`
/// lock even when nobody was waiting.  The mailbox splits publication in
/// two:
///
/// * each producer appends its batch to its **own inbox** (one tiny lock per
///   producer, never contended across producers), and
/// * the shared queue is only locked to **sweep** the inboxes when a waiter
///   could be parked — publication with no registered waiter is a pure
///   inbox append, the fire-and-forget fast path.
///
/// Consumers go through [`CompletionMailbox::with`], which sweeps pending
/// inboxes into the queue *before* running the caller's closure (a poll can
/// never miss an already-posted completion) and re-checks for a
/// post-registration race after releasing the lock.  The race is closed the
/// classic two-flag way: a producer advertises `pending` before loading
/// `waiters`, a consumer advertises `waiters` before re-loading `pending`
/// (all `SeqCst`), so in every interleaving at least one side observes the
/// other and performs the sweep-and-wake.
#[derive(Debug)]
pub struct CompletionMailbox {
    /// One inbox per producer (engine shard / reactor loop); a producer
    /// only ever locks its own.
    inboxes: Box<[Mutex<Vec<Completion>>]>,
    /// Completions posted to inboxes and not yet swept into the queue.
    pending: AtomicUsize,
    /// Snapshot of the queue's waiter-registration count, maintained by
    /// every queue access; producers skip the queue lock while it is zero.
    waiters: AtomicUsize,
    inner: Mutex<MailboxInner>,
}

#[derive(Debug)]
struct MailboxInner {
    queue: CompletionQueue,
    /// Sweep staging: inbox batches are moved here (one memcpy per batch)
    /// and published in a single call, so one sweep produces one wake batch
    /// and the scratch capacities stabilise — the steady path allocates
    /// nothing.
    scratch: Vec<Completion>,
}

impl CompletionMailbox {
    /// A mailbox with `producers` inboxes in front of a fresh queue.
    pub fn new(producers: usize) -> Self {
        Self::with_queue(producers, CompletionQueue::new())
    }

    /// A mailbox with `producers` inboxes in front of `queue` (carrying the
    /// backend's retention configuration).
    pub fn with_queue(producers: usize, queue: CompletionQueue) -> Self {
        let inboxes = (0..producers.max(1))
            .map(|_| Mutex::new("core.mailbox.inbox", Vec::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        CompletionMailbox {
            inboxes,
            pending: AtomicUsize::new(0),
            waiters: AtomicUsize::new(0),
            inner: Mutex::new(
                "core.mailbox.inner",
                MailboxInner {
                    queue,
                    scratch: Vec::new(),
                },
            ),
        }
    }

    /// Number of producer inboxes.
    pub fn producers(&self) -> usize {
        self.inboxes.len()
    }

    /// Publishes a batch from `producer`, draining `comps` (its capacity is
    /// kept for reuse).  The batch lands in the producer's own inbox; the
    /// shared queue is locked — and waiters woken — only when the waiter
    /// snapshot says somebody may be parked.
    ///
    /// # Panics
    ///
    /// Panics if `producer >= self.producers()`.
    pub fn post(&self, producer: usize, comps: &mut Vec<Completion>) {
        if comps.is_empty() {
            return;
        }
        // Publication must never run under an engine/shard/mailbox lock:
        // `deliver` below takes the queue lock and invokes wakers.  Locks
        // outside `core.` (an executor's task mutex, say) are fine — the
        // deliver path never acquires them.
        if cfg!(debug_assertions) {
            ppmsg_check::lockdep::assert_no_locks_held_in("CompletionMailbox::post", "core.");
        }
        let batch = comps.len();
        {
            let mut inbox = self.inboxes[producer].lock();
            inbox.extend(comps.drain(..));
        }
        self.advertise(batch);
        if self.load_waiters() > 0 {
            self.deliver();
        }
    }

    /// Advertise the batch *before* loading `waiters` (see the type-level
    /// race argument): a consumer registering concurrently either is seen by
    /// [`Self::load_waiters`], or sees our `pending` in its post-unlock
    /// re-check.
    fn advertise(&self, batch: usize) {
        #[cfg(ppmsg_check)]
        if sabotage::weak_flags() {
            let cur = self.pending.load(Ordering::Relaxed);
            self.pending.store(cur + batch, Ordering::Relaxed);
            return;
        }
        self.pending.fetch_add(batch, Ordering::SeqCst);
    }

    fn load_pending(&self) -> usize {
        #[cfg(ppmsg_check)]
        if sabotage::weak_flags() {
            return self.pending.load(Ordering::Relaxed);
        }
        self.pending.load(Ordering::SeqCst)
    }

    fn load_waiters(&self) -> usize {
        #[cfg(ppmsg_check)]
        if sabotage::weak_flags() {
            return self.waiters.load(Ordering::Relaxed);
        }
        self.waiters.load(Ordering::SeqCst)
    }

    fn store_waiters(&self, n: usize) {
        #[cfg(ppmsg_check)]
        if sabotage::weak_flags() {
            self.waiters.store(n, Ordering::Relaxed);
            return;
        }
        self.waiters.store(n, Ordering::SeqCst);
    }

    /// Runs `f` on the queue with every pending inbox swept in first, then
    /// refreshes the waiter snapshot and closes the producer race.  This is
    /// the backend's `with_completions` primitive: polls, claims, waker
    /// registrations, and drains all come through here.
    pub fn with(&self, f: &mut dyn FnMut(&mut CompletionQueue)) {
        let woken = {
            let mut inner = self.inner.lock();
            let woken = self.sweep(&mut inner);
            f(&mut inner.queue);
            self.store_waiters(inner.queue.waiters());
            woken
        };
        wake_all(woken, |drained| {
            self.inner.lock().queue.recycle_woken(drained)
        });
        // `f` may have registered a waker after our sweep while a producer
        // posted and loaded a stale zero `waiters` snapshot: re-check.
        #[cfg(ppmsg_check)]
        if sabotage::skip_recheck() {
            return;
        }
        if self.load_pending() > 0 && self.load_waiters() > 0 {
            self.deliver();
        }
    }

    /// Locks the queue, sweeps the inboxes, and wakes whoever the sweep
    /// readied.
    fn deliver(&self) {
        let woken = {
            let mut inner = self.inner.lock();
            let woken = self.sweep(&mut inner);
            self.store_waiters(inner.queue.waiters());
            woken
        };
        wake_all(woken, |drained| {
            self.inner.lock().queue.recycle_woken(drained)
        });
    }

    /// Moves every inbox's contents into the queue (one publication batch),
    /// returning the wakers to invoke once the queue lock is released.
    /// Caller holds the `inner` lock.
    fn sweep(&self, inner: &mut MailboxInner) -> Vec<Waker> {
        if self.pending.load(Ordering::SeqCst) == 0 {
            return Vec::new();
        }
        let mut scratch = std::mem::take(&mut inner.scratch);
        for inbox in self.inboxes.iter() {
            let mut inbox = inbox.lock();
            if !inbox.is_empty() {
                scratch.extend(inbox.drain(..));
            }
        }
        self.pending.fetch_sub(scratch.len(), Ordering::SeqCst);
        let woken = inner.queue.publish(&mut scratch);
        inner.scratch = scratch;
        woken
    }

    /// Completions evicted past the retention cap (see
    /// [`CompletionQueue::evicted`]).
    pub fn evicted(&self) -> u64 {
        self.inner.lock().queue.evicted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_table_generation_checking() {
        let mut t: OpTable<&'static str> = OpTable::new();
        let (slot, g0) = t.insert("a");
        assert_eq!(t.get_mut(slot, g0), Some(&mut "a"));
        assert_eq!(t.remove(slot, g0), Some("a"));
        // Stale handle: same slot, old generation.
        assert_eq!(t.get_mut(slot, g0), None);
        assert_eq!(t.remove(slot, g0), None);
        // Slot is recycled with a new generation.
        let (slot2, g1) = t.insert("b");
        assert_eq!(slot2, slot);
        assert_ne!(g1, g0);
        assert_eq!(t.get_mut(slot, g0), None);
        assert_eq!(t.get_mut(slot, g1), Some(&mut "b"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn op_table_steady_cycle_does_not_allocate() {
        let mut t: OpTable<u64> = OpTable::new();
        for i in 0..4 {
            t.insert(i);
        }
        for slot in 0..4u32 {
            t.remove(slot, 0).unwrap();
        }
        let allocs = t.alloc_events();
        for round in 0..10_000u64 {
            let (slot, generation) = t.insert(round);
            assert_eq!(t.remove(slot, generation), Some(round));
        }
        assert_eq!(t.alloc_events(), allocs, "steady churn must not allocate");
    }

    #[test]
    fn recv_buf_reassembles_and_clamps() {
        let mut buf = RecvBuf::with_capacity(8);
        buf.begin(12); // message larger than the buffer: truncating receive
        assert_eq!(buf.write_at(4, &[4, 5, 6, 7, 8, 9, 10, 11]), 8);
        assert_eq!(buf.write_at(0, &[0, 1, 2, 3]), 4);
        assert!(buf.is_complete());
        assert_eq!(buf.len(), 8);
        assert_eq!(buf.as_slice(), &[0, 1, 2, 3, 4, 5, 6, 7]);
        // Duplicates do not double-count.
        assert_eq!(buf.write_at(0, &[0, 1]), 0);
        // Reuse for a smaller message.
        buf.begin(3);
        assert!(!buf.is_complete());
        assert_eq!(buf.write_at(0, &[9, 9, 9]), 3);
        assert!(buf.is_complete());
        assert_eq!(buf.as_slice(), &[9, 9, 9]);
    }

    #[test]
    fn op_display_and_raw_roundtrip() {
        let op = RecvOp::from_raw(3, 7);
        assert_eq!(op.slot(), 3);
        assert_eq!(op.generation(), 7);
        assert_eq!(op.to_string(), "recv3.7");
        assert_eq!(SendOp::from_raw(1, 0).to_string(), "send1.0");
        assert_eq!(OpId::from(op), OpId::Recv(op));
    }

    /// A real (non-noop) waker: push() deliberately does not wake noop
    /// interest registrations, so tests standing in for an actual awaiting
    /// task need one of these.
    fn test_waker() -> Waker {
        struct NopWake;
        impl std::task::Wake for NopWake {
            fn wake(self: std::sync::Arc<Self>) {}
        }
        Waker::from(std::sync::Arc::new(NopWake))
    }

    fn completion(op: OpId) -> Completion {
        Completion {
            op,
            peer: ProcessId::new(0, 1),
            tag: Tag(0),
            len: 0,
            status: Status::Ok,
            data: None,
            buf: None,
        }
    }

    #[test]
    fn completion_queue_takes_by_op_and_drains_in_order() {
        let mut q = CompletionQueue::new();
        let a = OpId::Send(SendOp::from_raw(0, 0));
        let b = OpId::Recv(RecvOp::from_raw(0, 0));
        let c = OpId::Send(SendOp::from_raw(1, 0));
        for op in [a, b, c] {
            assert!(q.push(completion(op)).is_none());
        }
        assert_eq!(q.len(), 3);
        // O(1) claim by handle, generation-checked.
        assert_eq!(q.take(b).unwrap().op, b);
        assert!(q.take(b).is_none(), "claimed completion must be gone");
        assert!(
            q.take(OpId::Send(SendOp::from_raw(0, 9))).is_none(),
            "stale generation must not claim"
        );
        // Draining skips the claimed entry and preserves insertion order.
        let mut out = Vec::new();
        q.drain_into(&mut out);
        assert_eq!(out.iter().map(|c| c.op).collect::<Vec<_>>(), vec![a, c]);
        assert!(q.is_empty());
    }

    #[test]
    fn completion_queue_evicts_oldest_beyond_retention() {
        let mut q = CompletionQueue::new();
        q.set_retention(4);
        for slot in 0..10u32 {
            q.push(completion(OpId::Send(SendOp::from_raw(slot, 0))));
        }
        assert_eq!(q.len(), 4);
        assert_eq!(q.evicted(), 6);
        // The oldest six are gone; the newest four survive.
        assert!(q.take(OpId::Send(SendOp::from_raw(0, 0))).is_none());
        assert!(q.take(OpId::Send(SendOp::from_raw(9, 0))).is_some());
    }

    #[test]
    fn completion_queue_steady_churn_does_not_allocate() {
        let mut q = CompletionQueue::new();
        // Warm up: grow the slot vectors and push the order deque past its
        // stale-compaction threshold (it grows once to ~2× the threshold,
        // then compaction keeps it there).
        for round in 0..200u32 {
            let op = OpId::Recv(RecvOp::from_raw(round % 8, round / 8));
            q.push(completion(op));
            assert!(q.take(op).is_some());
        }
        let allocs = q.alloc_events();
        for round in 200..10_000u32 {
            let op = OpId::Recv(RecvOp::from_raw(round % 8, round / 8));
            q.push(completion(op));
            assert!(q.take(op).is_some());
        }
        assert_eq!(q.alloc_events(), allocs, "steady churn must not allocate");
    }

    #[test]
    fn waker_table_is_generation_checked() {
        let mut t = WakerTable::new();
        let waker = Waker::noop();
        let old = OpId::Recv(RecvOp::from_raw(2, 0));
        let new = OpId::Recv(RecvOp::from_raw(2, 1));
        t.register_waker(old, waker);
        // A newer op reusing the slot registers independently: both waiters
        // coexist (an awaited-but-unclaimed older completion must keep its
        // registration when the slot is recycled)...
        t.register_waker(new, waker);
        assert_eq!(t.len(), 2);
        // ...and each generation takes exactly its own waker, exactly once.
        assert!(t.take_waker(old).is_some());
        assert!(t.take_waker(old).is_none(), "wakers are taken once");
        assert!(t.take_waker(new).is_some());
        assert!(t.take_waker(new).is_none(), "wakers are taken once");
        assert!(t.is_empty());
    }

    #[test]
    fn eviction_spares_awaited_completions() {
        let mut q = CompletionQueue::new();
        q.set_retention(4);
        // A task awaits op (0,0): its waker is registered before anything
        // completes, as a real first poll would.
        let awaited = OpId::Send(SendOp::from_raw(0, 0));
        let waker = test_waker();
        assert!(q.take_or_register(awaited, &waker).is_none());
        // Its completion arrives first, then a flood of fire-and-forget
        // completions far beyond the cap.
        assert!(q.push(completion(awaited)).is_some(), "awaiter is woken");
        for slot in 1..20u32 {
            q.push(completion(OpId::Send(SendOp::from_raw(slot, 0))));
        }
        // One registration is live, so the queue holds retention + 1.
        assert_eq!(q.len(), 5);
        // The flood evicted unawaited completions only; the awaited one is
        // still claimable (and claiming clears its registration).
        assert!(
            q.take(awaited).is_some(),
            "awaited completion must survive eviction"
        );
        assert_eq!(q.evicted(), 15);
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn registered_interest_protects_blocking_waiters_from_eviction() {
        // A blocking `wait` registers interest (no real waker) before
        // parking; its completion must survive an over-cap flood that
        // arrives between its wakeups.
        let mut q = CompletionQueue::new();
        q.set_retention(2);
        let waited = OpId::Recv(RecvOp::from_raw(7, 3));
        q.register_interest(waited);
        q.push(completion(waited));
        for slot in 0..10u32 {
            q.push(completion(OpId::Send(SendOp::from_raw(slot, 0))));
        }
        assert!(
            q.take(waited).is_some(),
            "waited-on completion must survive the flood"
        );
        // Interest is cleared by the claim; nothing protects the slot now.
        q.push(completion(OpId::Recv(RecvOp::from_raw(7, 4))));
        for slot in 0..10u32 {
            q.push(completion(OpId::Send(SendOp::from_raw(slot, 1))));
        }
        assert!(
            q.take(OpId::Recv(RecvOp::from_raw(7, 4))).is_none(),
            "uninterested completion is evictable again"
        );
    }

    #[test]
    fn stale_registration_cannot_clobber_newer_waker() {
        let mut q = CompletionQueue::new();
        let old = OpId::Recv(RecvOp::from_raw(3, 0));
        let new = OpId::Recv(RecvOp::from_raw(3, 1));
        // The old op completed (unclaimed); the newer op reusing the slot is
        // being awaited.
        q.push(completion(old));
        let waker = test_waker();
        assert!(q.take_or_register(new, &waker).is_none());
        // Re-awaiting / noting interest in the stale handle must not steal
        // the slot's registration from the newer op...
        q.register_interest(old);
        assert!(q.take_or_register(old, Waker::noop()).is_some());
        // ...so the newer op's completion still finds a waker to wake.
        assert!(
            q.push(completion(new)).is_some(),
            "newer op's waker must survive stale-handle traffic"
        );
    }

    #[test]
    fn drain_leaves_awaited_completions_for_their_waiter() {
        let mut q = CompletionQueue::new();
        let awaited = OpId::Recv(RecvOp::from_raw(0, 0));
        let loose = OpId::Send(SendOp::from_raw(0, 0));
        assert!(q.take_or_register(awaited, Waker::noop()).is_none());
        q.push(completion(awaited));
        q.push(completion(loose));
        let mut out = Vec::new();
        q.drain_into(&mut out);
        assert_eq!(
            out.iter().map(|c| c.op).collect::<Vec<_>>(),
            vec![loose],
            "drain must not steal an awaited completion"
        );
        assert!(
            q.take(awaited).is_some(),
            "the waiter still claims its result"
        );
    }

    #[test]
    fn take_or_wait_never_displaces_or_steals_from_a_live_future() {
        let mut q = CompletionQueue::new();
        let op = OpId::Recv(RecvOp::from_raw(0, 0));
        let future_waker = test_waker();
        let wait_waker = test_waker();
        // A future is registered first; a blocking wait must back off...
        assert!(q.take_or_register(op, &future_waker).is_none());
        assert!(matches!(
            q.take_or_wait(op, &wait_waker),
            WaitPoll::Occupied
        ));
        // ...even once the completion has landed: the registered waiter owns
        // the claim.
        assert!(q.push(completion(op)).is_some(), "future woken");
        assert!(matches!(
            q.take_or_wait(op, &wait_waker),
            WaitPoll::Occupied
        ));
        assert!(q.take(op).is_some(), "the future still claims its result");

        // A bare interest is a future's registration too (only futures
        // register interest): the wait must not upgrade it away.
        let op2 = OpId::Recv(RecvOp::from_raw(1, 0));
        q.register_interest(op2);
        assert!(matches!(
            q.take_or_wait(op2, &wait_waker),
            WaitPoll::Occupied
        ));
        q.deregister(op2); // the future is dropped
                           // With no registration at all, the wait registers and claims
                           // normally.
        assert!(matches!(
            q.take_or_wait(op2, &wait_waker),
            WaitPoll::Registered
        ));
        assert!(q.push(completion(op2)).is_some(), "wait waker woken");
        assert!(matches!(
            q.take_or_wait(op2, &wait_waker),
            WaitPoll::Ready(_)
        ));
    }

    #[test]
    fn deregister_waiter_removes_only_its_own_registration() {
        let mut q = CompletionQueue::new();
        let op = OpId::Send(SendOp::from_raw(0, 0));
        let future_waker = test_waker();
        let wait_waker = test_waker();
        assert!(q.take_or_register(op, &future_waker).is_none());
        // An expiring wait must not tear down the future's registration.
        q.deregister_waiter(op, &wait_waker);
        assert!(
            q.push(completion(op)).is_some(),
            "future's waker must survive a foreign deregister_waiter"
        );
        // Its own registration is removed.
        let op2 = OpId::Send(SendOp::from_raw(1, 0));
        assert!(matches!(
            q.take_or_wait(op2, &wait_waker),
            WaitPoll::Registered
        ));
        q.deregister_waiter(op2, &wait_waker);
        assert!(
            q.push(completion(op2)).is_none(),
            "deregistered wait must not be woken"
        );
    }

    #[test]
    fn peek_each_inspects_without_moving_and_can_remove() {
        let mut q = CompletionQueue::new();
        let a = OpId::Send(SendOp::from_raw(0, 0));
        let b = OpId::Recv(RecvOp::from_raw(0, 0));
        let c = OpId::Send(SendOp::from_raw(1, 0));
        let awaited = OpId::Recv(RecvOp::from_raw(1, 0));
        for op in [a, b, c] {
            q.push(completion(op));
        }
        let waker = test_waker();
        assert!(q.take_or_register(awaited, &waker).is_none());
        q.push(completion(awaited));

        // First pass: pure telemetry.  Awaited entries are never shown.
        let mut seen = Vec::new();
        q.peek_each(&mut |completion| {
            seen.push(completion.op);
            Claim::Keep
        });
        assert_eq!(seen, vec![a, b, c], "oldest first, awaited skipped");
        assert_eq!(q.len(), 4, "peek with Keep moves nothing");

        // Second pass: retire the send completions in place.
        q.peek_each(&mut |completion| match completion.op {
            OpId::Send(_) => Claim::Remove,
            OpId::Recv(_) => Claim::Keep,
        });
        assert!(q.take(a).is_none(), "removed in place");
        assert!(q.take(c).is_none(), "removed in place");
        // The kept receive is still claimable, in its drain position...
        let mut out = Vec::new();
        q.drain_into(&mut out);
        assert_eq!(out.iter().map(|c| c.op).collect::<Vec<_>>(), vec![b]);
        // ...and the awaited completion still belongs to its waiter.
        assert!(q.take(awaited).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn peek_each_steady_churn_does_not_allocate() {
        let mut q = CompletionQueue::new();
        for round in 0..200u32 {
            let op = OpId::Recv(RecvOp::from_raw(round % 8, round / 8));
            q.push(completion(op));
            q.peek_each(&mut |_| Claim::Keep);
            assert!(q.take(op).is_some());
        }
        let allocs = q.alloc_events();
        for round in 200..5_000u32 {
            let op = OpId::Recv(RecvOp::from_raw(round % 8, round / 8));
            q.push(completion(op));
            q.peek_each(&mut |_| Claim::Keep);
            q.peek_each(&mut |_| Claim::Remove);
            assert!(q.take(op).is_none(), "peek removed it");
        }
        assert_eq!(q.alloc_events(), allocs, "steady peeking must not allocate");
    }

    #[test]
    fn take_or_register_wakes_exactly_once() {
        let mut q = CompletionQueue::new();
        let op = OpId::Recv(RecvOp::from_raw(0, 0));
        let waker = test_waker();
        assert!(q.take_or_register(op, &waker).is_none());
        // The registered waker is surfaced when the completion arrives.
        assert!(q.push(completion(op)).is_some());
        // No waker left behind; the completion is claimable.
        assert!(q
            .push(completion(OpId::Recv(RecvOp::from_raw(1, 0))))
            .is_none());
        assert!(q.take_or_register(op, Waker::noop()).is_some());
    }
}
