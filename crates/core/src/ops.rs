//! The operations layer: typed operation handles, completions, and
//! caller-owned receive buffers.
//!
//! [`Endpoint::post_send`](crate::Endpoint::post_send) and
//! [`Endpoint::post_recv`](crate::Endpoint::post_recv) return [`SendOp`] /
//! [`RecvOp`] handles backed by a generation-checked slab (`OpTable`), so
//! issuing an operation never allocates in steady state and a handle reused
//! after completion is detected instead of silently aliasing a newer
//! operation.  Completions are reported through a per-endpoint completion
//! queue ([`Completion`] records drained with
//! [`Endpoint::poll_completion`](crate::Endpoint::poll_completion)),
//! **separate** from the backend-facing [`Action`](crate::Action) stream:
//! backends route packets, applications consume completions.
//!
//! Receives additionally support:
//!
//! * **caller-owned buffers** ([`RecvBuf`], posted with
//!   [`Endpoint::post_recv_into`](crate::Endpoint::post_recv_into)): the
//!   engine reassembles pushed and pulled fragments directly into the
//!   caller's storage and hands the buffer back in the completion, making
//!   even the multi-fragment pull path allocation-free;
//! * **wildcard matching** ([`ANY_SOURCE`](crate::types::ANY_SOURCE) /
//!   [`ANY_TAG`](crate::types::ANY_TAG));
//! * **cancellation** ([`Endpoint::cancel`](crate::Endpoint::cancel)) and
//!   **truncation policies** ([`TruncationPolicy`]) for receives smaller
//!   than the arriving message.

use crate::error::Error;
use crate::queues::merge_interval;
use crate::types::{ProcessId, Tag};
use bytes::Bytes;
use std::fmt;

/// Handle of a posted send operation.
///
/// Identifies one in-flight send until its [`Completion`] is produced; the
/// pair `(slot, generation)` is generation-checked, so a handle held past
/// completion can never be confused with a newer operation that reuses the
/// same slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SendOp {
    slot: u32,
    generation: u32,
}

/// Handle of a posted receive operation.
///
/// See [`SendOp`] for the generation-checking rationale.  A `RecvOp` can be
/// cancelled with [`Endpoint::cancel`](crate::Endpoint::cancel) while it is
/// still unmatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecvOp {
    slot: u32,
    generation: u32,
}

macro_rules! op_impl {
    ($ty:ident, $prefix:literal) => {
        impl $ty {
            /// Reconstructs a handle from its raw parts.  Intended for tests,
            /// benchmarks, and backends that index per-operation state by
            /// slot; handles used with an engine must originate from it.
            #[inline]
            pub fn from_raw(slot: u32, generation: u32) -> Self {
                Self { slot, generation }
            }

            /// The dense slab slot of this operation.  Slots are reused after
            /// completion, so a slot alone does not identify an operation —
            /// always pair it with [`Self::generation`].
            #[inline]
            pub fn slot(&self) -> u32 {
                self.slot
            }

            /// The generation the slot had when this operation was issued.
            #[inline]
            pub fn generation(&self) -> u32 {
                self.generation
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}.{}"), self.slot, self.generation)
            }
        }
    };
}

op_impl!(SendOp, "send");
op_impl!(RecvOp, "recv");

/// Either kind of operation handle, as carried by a [`Completion`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpId {
    /// A send operation.
    Send(SendOp),
    /// A receive operation.
    Recv(RecvOp),
}

impl From<SendOp> for OpId {
    fn from(op: SendOp) -> Self {
        OpId::Send(op)
    }
}

impl From<RecvOp> for OpId {
    fn from(op: RecvOp) -> Self {
        OpId::Recv(op)
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpId::Send(op) => op.fmt(f),
            OpId::Recv(op) => op.fmt(f),
        }
    }
}

/// What a posted receive does when the arriving message is larger than its
/// buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TruncationPolicy {
    /// The receive completes with [`Status::Error`] carrying
    /// [`Error::ReceiveTooSmall`]; the message itself is **unharmed** and
    /// stays queued as unexpected, so the next adequate receive gets it in
    /// full.  (The seed dropped the message's partial state instead, which
    /// poisoned it: a later big-enough receive would hang forever waiting for
    /// the discarded eager prefix.)
    #[default]
    Error,
    /// The receive accepts the message and completes with
    /// [`Status::Truncated`], delivering the first `capacity` bytes; the
    /// remainder is discarded on delivery.
    Truncate,
}

/// Terminal status of an operation, as reported in its [`Completion`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Status {
    /// The operation completed normally.
    Ok,
    /// The receive completed but the message was larger than the posted
    /// buffer; only the first `capacity` bytes were delivered
    /// ([`TruncationPolicy::Truncate`]).
    Truncated {
        /// Full length of the message in bytes (the completion's `len` field
        /// holds the number of bytes actually delivered).
        message_len: usize,
    },
    /// The receive was cancelled before it matched a message.
    Cancelled,
    /// The operation failed.
    Error(Error),
}

impl Status {
    /// `true` for [`Status::Ok`].
    #[inline]
    pub fn is_ok(&self) -> bool {
        matches!(self, Status::Ok)
    }
}

/// One completed operation, drained from the endpoint's completion queue.
#[derive(Debug)]
pub struct Completion {
    /// The operation this completion belongs to.
    pub op: OpId,
    /// The remote process: destination for sends, message source for
    /// receives.  For a cancelled receive this echoes the posted selector
    /// (which may be [`ANY_SOURCE`](crate::types::ANY_SOURCE)).
    pub peer: ProcessId,
    /// The message tag (the posted selector for cancelled receives).
    pub tag: Tag,
    /// Bytes transferred: the message length for sends and complete
    /// receives, the delivered prefix for truncated receives, `0` for
    /// cancelled or failed operations.
    pub len: usize,
    /// How the operation ended.
    pub status: Status,
    /// The message bytes of an engine-buffered receive
    /// ([`Endpoint::post_recv`](crate::Endpoint::post_recv)).  `None` for
    /// sends and caller-buffered receives.
    pub data: Option<Bytes>,
    /// The caller-owned buffer of a
    /// [`post_recv_into`](crate::Endpoint::post_recv_into) receive, handed
    /// back for reuse (also on cancellation and failure).
    pub buf: Option<RecvBuf>,
}

impl Completion {
    /// The delivered message bytes of a receive completion, regardless of
    /// whether the receive was engine-buffered or caller-buffered.
    pub fn payload(&self) -> Option<&[u8]> {
        match (&self.data, &self.buf) {
            (Some(data), _) => Some(&data[..]),
            (None, Some(buf)) => Some(buf.as_slice()),
            (None, None) => None,
        }
    }
}

/// A caller-owned destination buffer for
/// [`post_recv_into`](crate::Endpoint::post_recv_into).
///
/// The engine reassembles the message's pushed and pulled fragments directly
/// into this storage — no engine-side assembly buffer, no owned-`Bytes`
/// handoff — and returns the buffer in the [`Completion`].  Reusing one
/// `RecvBuf` across receives makes the pull path allocation-free in steady
/// state.
///
/// A buffer smaller than the arriving message behaves according to the
/// posted [`TruncationPolicy`].
#[derive(Debug, Default)]
pub struct RecvBuf {
    /// Caller storage; `data.len()` is the capacity of the receive.
    data: Vec<u8>,
    /// Sorted, disjoint covered `[start, end)` intervals over the *message*
    /// range `[0, total)` (which may exceed the capacity when truncating).
    covered: Vec<(usize, usize)>,
    received: usize,
    total: usize,
}

impl RecvBuf {
    /// Creates a buffer able to receive messages of up to `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        RecvBuf {
            data: vec![0u8; capacity],
            covered: Vec::new(),
            received: 0,
            total: 0,
        }
    }

    /// Wraps caller storage; the vector's length is the receive capacity.
    pub fn from_vec(data: Vec<u8>) -> Self {
        RecvBuf {
            data,
            covered: Vec::new(),
            received: 0,
            total: 0,
        }
    }

    /// The receive capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Number of message bytes present after a completed receive
    /// (`min(message length, capacity)`).
    #[inline]
    pub fn len(&self) -> usize {
        self.total.min(self.data.len())
    }

    /// `true` when no message bytes are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The delivered message bytes (valid after the completion).
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        let len = self.len();
        &self.data[..len]
    }

    /// Unwraps the underlying storage.
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }

    /// Re-initialises the buffer for a message of `total` bytes, keeping the
    /// interval list's capacity.
    pub(crate) fn begin(&mut self, total: usize) {
        self.covered.clear();
        self.received = 0;
        self.total = total;
    }

    /// Records a fragment at `offset` in the message, copying the bytes that
    /// fit below the capacity and counting coverage over the full message
    /// range.  Returns the number of newly covered message bytes.
    pub(crate) fn write_at(&mut self, offset: usize, fragment: &[u8]) -> usize {
        if offset >= self.total || fragment.is_empty() {
            return 0;
        }
        let end = (offset + fragment.len()).min(self.total);
        let copy_end = end.min(self.data.len());
        if offset < copy_end {
            self.data[offset..copy_end].copy_from_slice(&fragment[..copy_end - offset]);
        }
        let newly = merge_interval(&mut self.covered, offset, end);
        self.received += newly;
        newly
    }

    /// `true` once every byte of the message range has been received.
    pub(crate) fn is_complete(&self) -> bool {
        self.received == self.total
    }
}

/// A generation-checked slab of in-flight operations.
///
/// Issuing an operation pops a recycled slot (or grows the arena once, at
/// peak working-set size); completing it bumps the slot's generation so any
/// held handle goes stale.  Steady-state post/complete cycles never allocate;
/// growth is counted in [`OpTable::alloc_events`].
#[derive(Debug)]
pub(crate) struct OpTable<T> {
    slots: Vec<(u32, Option<T>)>,
    free: Vec<u32>,
    alloc_events: u64,
}

impl<T> Default for OpTable<T> {
    fn default() -> Self {
        OpTable {
            slots: Vec::new(),
            free: Vec::new(),
            alloc_events: 0,
        }
    }
}

impl<T> OpTable<T> {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Stores `value`, returning `(slot, generation)`.
    pub(crate) fn insert(&mut self, value: T) -> (u32, u32) {
        if let Some(slot) = self.free.pop() {
            let entry = &mut self.slots[slot as usize];
            debug_assert!(entry.1.is_none());
            entry.1 = Some(value);
            return (slot, entry.0);
        }
        if self.slots.len() == self.slots.capacity() {
            self.alloc_events += 1;
        }
        let slot = self.slots.len() as u32;
        self.slots.push((0, Some(value)));
        (slot, 0)
    }

    pub(crate) fn get_mut(&mut self, slot: u32, generation: u32) -> Option<&mut T> {
        let entry = self.slots.get_mut(slot as usize)?;
        if entry.0 != generation {
            return None;
        }
        entry.1.as_mut()
    }

    /// Removes the operation, bumping the slot generation so the handle goes
    /// stale, and recycles the slot.
    pub(crate) fn remove(&mut self, slot: u32, generation: u32) -> Option<T> {
        let entry = self.slots.get_mut(slot as usize)?;
        if entry.0 != generation {
            return None;
        }
        let value = entry.1.take()?;
        entry.0 = entry.0.wrapping_add(1);
        if self.free.len() == self.free.capacity() {
            self.alloc_events += 1;
        }
        self.free.push(slot);
        Some(value)
    }

    /// Number of live operations.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Number of heap allocations this table has performed.
    pub(crate) fn alloc_events(&self) -> u64 {
        self.alloc_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_table_generation_checking() {
        let mut t: OpTable<&'static str> = OpTable::new();
        let (slot, g0) = t.insert("a");
        assert_eq!(t.get_mut(slot, g0), Some(&mut "a"));
        assert_eq!(t.remove(slot, g0), Some("a"));
        // Stale handle: same slot, old generation.
        assert_eq!(t.get_mut(slot, g0), None);
        assert_eq!(t.remove(slot, g0), None);
        // Slot is recycled with a new generation.
        let (slot2, g1) = t.insert("b");
        assert_eq!(slot2, slot);
        assert_ne!(g1, g0);
        assert_eq!(t.get_mut(slot, g0), None);
        assert_eq!(t.get_mut(slot, g1), Some(&mut "b"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn op_table_steady_cycle_does_not_allocate() {
        let mut t: OpTable<u64> = OpTable::new();
        for i in 0..4 {
            t.insert(i);
        }
        for slot in 0..4u32 {
            t.remove(slot, 0).unwrap();
        }
        let allocs = t.alloc_events();
        for round in 0..10_000u64 {
            let (slot, generation) = t.insert(round);
            assert_eq!(t.remove(slot, generation), Some(round));
        }
        assert_eq!(t.alloc_events(), allocs, "steady churn must not allocate");
    }

    #[test]
    fn recv_buf_reassembles_and_clamps() {
        let mut buf = RecvBuf::with_capacity(8);
        buf.begin(12); // message larger than the buffer: truncating receive
        assert_eq!(buf.write_at(4, &[4, 5, 6, 7, 8, 9, 10, 11]), 8);
        assert_eq!(buf.write_at(0, &[0, 1, 2, 3]), 4);
        assert!(buf.is_complete());
        assert_eq!(buf.len(), 8);
        assert_eq!(buf.as_slice(), &[0, 1, 2, 3, 4, 5, 6, 7]);
        // Duplicates do not double-count.
        assert_eq!(buf.write_at(0, &[0, 1]), 0);
        // Reuse for a smaller message.
        buf.begin(3);
        assert!(!buf.is_complete());
        assert_eq!(buf.write_at(0, &[9, 9, 9]), 3);
        assert!(buf.is_complete());
        assert_eq!(buf.as_slice(), &[9, 9, 9]);
    }

    #[test]
    fn op_display_and_raw_roundtrip() {
        let op = RecvOp::from_raw(3, 7);
        assert_eq!(op.slot(), 3);
        assert_eq!(op.generation(), 7);
        assert_eq!(op.to_string(), "recv3.7");
        assert_eq!(SendOp::from_raw(1, 0).to_string(), "send1.0");
        assert_eq!(OpId::from(op), OpId::Recv(op));
    }
}
