//! Peer-sharded engine: independent peers progress under independent locks.
//!
//! A single [`Endpoint`] behind one mutex serializes *every* peer's traffic,
//! even though the protocol state of unrelated peers never interacts: the
//! send queue, receive matching, pushed buffer, and ARQ channel of peer A
//! are disjoint from peer B's.  [`ShardedEngine`] exploits that by running
//! `n` complete engine shards (each a full [`Endpoint`] with the same
//! process id) and routing every peer-directed interaction — posting,
//! packet/frame delivery, timer fires — to the shard that owns the peer.
//! Two threads driving traffic for different peers contend only when their
//! peers hash to the same shard.
//!
//! ## Shard assignment
//!
//! Peers are assigned round-robin in **first-contact order** through a dense
//! [`U64Index`] interner — the same structure the engine itself uses for its
//! peer table — so `k` active peers spread across `min(k, n)` shards
//! regardless of how their raw ids cluster.  Assignment is sticky for the
//! engine's lifetime: all state for a peer lives in exactly one shard.
//!
//! ## Handle remapping
//!
//! Each shard numbers its operation slots independently, so shard-local
//! handles would collide.  The sharded engine interleaves them:
//! `global_slot = local_slot * n + shard`.  Handles returned to callers and
//! the `op` fields of drained [`Completion`]s are globalized; incoming
//! handles (cancellation, completion claims) localize with the inverse map.
//! With `n = 1` the map is the identity, so an unsharded configuration has
//! byte-identical handle values to a bare [`Endpoint`].
//!
//! ## What does not shard
//!
//! An [`ANY_SOURCE`] receive could match traffic landing in *any* shard;
//! rather than serialize all shards to honor one wildcard, posting it on a
//! multi-shard engine returns [`Error::ShardedWildcard`].  `ANY_TAG` with a
//! concrete source is unaffected (tag wildcards stay within the source's
//! shard).

// ppmsg-lint: deny(hot_path_alloc) — steady-state engine path; pooled buffers only.

use crate::engine::{Action, Endpoint, EndpointStats};
use crate::error::{Error, Result};
use crate::index::U64Index;
use crate::ops::{Completion, OpId, RecvBuf, RecvOp, SendOp, TruncationPolicy};
use crate::reliability::Frame;
use crate::telemetry::{self, lock_ctx, Counter, EventKind, HistogramSnapshot, LogHistogram};
use crate::types::{ProcessId, Tag, TimerId, ANY_SOURCE};
use crate::wire::Packet;
use crate::ProtocolConfig;
use bytes::Bytes;
use ppmsg_check::sync::Mutex;
use std::sync::RwLock;

/// One engine-lock hold in this many is timed (two monotonic clock reads)
/// and fed to the shard's hold-time histogram; the rest pay only the
/// sampling tick.  Holds are short and numerous, so 1-in-64 converges fast
/// without taxing the hot path.
const LOCK_SAMPLE: u64 = 64;

/// Per-shard telemetry: an interaction counter doubling as the sampling
/// ticket, and the sampled lock-hold distribution.  Bumped while the shard
/// lock is held, so the counter never contends.
#[derive(Debug, Default)]
struct ShardTelemetry {
    calls: Counter,
    hold_ns: LogHistogram,
}

/// Lockdep classes for the shard locks, one per shard index so an inverted
/// cross-shard acquisition names both shards in the report.  Engines with
/// more shards than classes share the last class; same-class nesting is a
/// lockdep violation either way, which is exactly the invariant we want
/// (never hold two shard locks at once).
const SHARD_CLASSES: [&str; 8] = [
    "core.shard[0]",
    "core.shard[1]",
    "core.shard[2]",
    "core.shard[3]",
    "core.shard[4]",
    "core.shard[5]",
    "core.shard[6]",
    "core.shard[7]",
];

fn shard_class(index: usize) -> &'static str {
    SHARD_CLASSES[index.min(SHARD_CLASSES.len() - 1)]
}

/// Scratch buffers one sharded-engine interaction drains into: the actions
/// the backend must relay and the completions to publish (op handles already
/// globalized), plus the shard the interaction ran on — the producer index
/// for an MPSC publication path
/// ([`CompletionMailbox::post`](crate::ops::CompletionMailbox::post)).
///
/// Reuse one batch across calls to keep the steady path allocation-free.
#[derive(Debug, Default)]
pub struct EngineBatch {
    /// Actions drained from the shard (transmissions, timers, copies).
    pub actions: Vec<Action>,
    /// Completions drained from the shard, handles globalized.
    pub comps: Vec<Completion>,
    /// Shard index the last interaction ran on.
    pub shard: usize,
}

impl EngineBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Round-robin peer→shard assignment, interned on first contact.
#[derive(Debug)]
struct ShardAssign {
    index: U64Index,
    next: u32,
}

/// A peer-sharded protocol engine: `n` [`Endpoint`] shards behind
/// independent locks, one owning each peer.  See the [module
/// docs](self) for the sharding model.
#[derive(Debug)]
pub struct ShardedEngine {
    id: ProcessId,
    shards: Box<[Mutex<Endpoint>]>,
    assign: RwLock<ShardAssign>,
    shard_telemetry: Box<[ShardTelemetry]>,
}

impl ShardedEngine {
    /// Builds `shards` engine shards for process `id`, each configured with
    /// `config`.  `shards` is clamped to at least 1.  Note that per-shard
    /// resources (pushed buffer, packet pools) are replicated per shard.
    pub fn new(id: ProcessId, config: ProtocolConfig, shards: usize) -> Self {
        let shards = shards.max(1);
        let engines = (0..shards)
            .map(|i| Mutex::new(shard_class(i), Endpoint::new(id, config.clone())))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let shard_telemetry = (0..shards)
            .map(|_| ShardTelemetry::default())
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ShardedEngine {
            id,
            shards: engines,
            assign: RwLock::new(ShardAssign {
                index: U64Index::new(),
                next: 0,
            }),
            shard_telemetry,
        }
    }

    /// This engine's process id.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `peer`, interning a round-robin assignment on first
    /// contact.  The read path is a shared-lock probe of the dense interner;
    /// only a peer's very first appearance takes the write lock.
    pub fn shard_of(&self, peer: ProcessId) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        let key = peer.as_u64();
        if let Ok(assign) = self.assign.read() {
            if let Some(shard) = assign.index.get(key) {
                return shard as usize;
            }
        }
        let mut assign = self
            .assign
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(shard) = assign.index.get(key) {
            return shard as usize;
        }
        let shard = assign.next % self.shards.len() as u32;
        assign.next = assign.next.wrapping_add(1);
        assign.index.insert(key, shard);
        shard as usize
    }

    /// The shard a send handle's operation lives in.
    pub fn send_shard(&self, op: SendOp) -> usize {
        op.slot() as usize % self.shards.len()
    }

    /// The shard a receive handle's operation lives in.
    pub fn recv_shard(&self, op: RecvOp) -> usize {
        op.slot() as usize % self.shards.len()
    }

    fn globalize_send(&self, op: SendOp, shard: usize) -> SendOp {
        let n = self.shards.len() as u32;
        SendOp::from_raw(op.slot() * n + shard as u32, op.generation())
    }

    fn globalize_recv(&self, op: RecvOp, shard: usize) -> RecvOp {
        let n = self.shards.len() as u32;
        RecvOp::from_raw(op.slot() * n + shard as u32, op.generation())
    }

    fn localize_send(&self, op: SendOp) -> SendOp {
        SendOp::from_raw(op.slot() / self.shards.len() as u32, op.generation())
    }

    fn localize_recv(&self, op: RecvOp) -> RecvOp {
        RecvOp::from_raw(op.slot() / self.shards.len() as u32, op.generation())
    }

    fn globalize_op(&self, op: OpId, shard: usize) -> OpId {
        match op {
            OpId::Send(s) => OpId::Send(self.globalize_send(s, shard)),
            OpId::Recv(r) => OpId::Recv(self.globalize_recv(r, shard)),
        }
    }

    /// Runs `f` on shard `shard`, draining the actions and completions the
    /// interaction produced into `out` (completion handles globalized,
    /// `out.shard` recorded).  This is the building block every
    /// peer-directed method uses; backends needing raw engine access (e.g.
    /// idle checks inside a poll loop) can call it directly.
    pub fn run_on_shard<R>(
        &self,
        shard: usize,
        out: &mut EngineBatch,
        f: impl FnOnce(&mut Endpoint) -> R,
    ) -> R {
        out.shard = shard;
        let first_new = out.comps.len();
        let result = {
            let mut engine = self.shards[shard].lock();
            // Sampled hold-time measurement: the ticket is taken under the
            // lock, so the counter never contends; 63 of 64 holds pay only
            // the tick.
            let shard_tel = &self.shard_telemetry[shard];
            let sampled = shard_tel.calls.tick().is_multiple_of(LOCK_SAMPLE);
            let t0 = if sampled {
                telemetry::clock::mono_ns()
            } else {
                0
            };
            let result = f(&mut engine);
            engine.drain_actions_into(&mut out.actions);
            engine.drain_completions_into(&mut out.comps);
            if sampled {
                let held = telemetry::clock::mono_ns().saturating_sub(t0);
                shard_tel.hold_ns.record(held);
                telemetry::event(EventKind::EngineLock, lock_ctx::SHARD, shard as u32, held);
            }
            result
        };
        if self.shards.len() > 1 {
            for completion in &mut out.comps[first_new..] {
                completion.op = self.globalize_op(completion.op, shard);
            }
        }
        result
    }

    /// Runs `f` on `peer`'s shard; see [`ShardedEngine::run_on_shard`].
    pub fn run_for_peer<R>(
        &self,
        peer: ProcessId,
        out: &mut EngineBatch,
        f: impl FnOnce(&mut Endpoint) -> R,
    ) -> R {
        self.run_on_shard(self.shard_of(peer), out, f)
    }

    /// Posts a send to `dst` on its shard; see [`Endpoint::post_send`].
    pub fn post_send(
        &self,
        dst: ProcessId,
        tag: Tag,
        data: Bytes,
        out: &mut EngineBatch,
    ) -> Result<SendOp> {
        let shard = self.shard_of(dst);
        self.run_on_shard(shard, out, |e| e.post_send(dst, tag, data))
            .map(|op| self.globalize_send(op, shard))
    }

    /// Posts a vectored send to `dst` on its shard; see
    /// [`Endpoint::post_send_vectored`].
    pub fn post_send_vectored(
        &self,
        dst: ProcessId,
        tag: Tag,
        segments: &[Bytes],
        out: &mut EngineBatch,
    ) -> Result<SendOp> {
        let shard = self.shard_of(dst);
        self.run_on_shard(shard, out, |e| e.post_send_vectored(dst, tag, segments))
            .map(|op| self.globalize_send(op, shard))
    }

    /// Posts an engine-buffered receive on `src`'s shard; see
    /// [`Endpoint::post_recv_with`].  [`ANY_SOURCE`] requires a single-shard
    /// engine ([`Error::ShardedWildcard`] otherwise); `ANY_TAG` with a
    /// concrete source is fine.
    pub fn post_recv_with(
        &self,
        src: ProcessId,
        tag: Tag,
        capacity: usize,
        policy: TruncationPolicy,
        out: &mut EngineBatch,
    ) -> Result<RecvOp> {
        let shard = self.wildcard_shard(src)?;
        self.run_on_shard(shard, out, |e| e.post_recv_with(src, tag, capacity, policy))
            .map(|op| self.globalize_recv(op, shard))
    }

    /// Posts a caller-buffered receive on `src`'s shard; see
    /// [`Endpoint::post_recv_into`] and the wildcard caveat on
    /// [`ShardedEngine::post_recv_with`].
    pub fn post_recv_into(
        &self,
        src: ProcessId,
        tag: Tag,
        buf: RecvBuf,
        policy: TruncationPolicy,
        out: &mut EngineBatch,
    ) -> Result<RecvOp> {
        let shard = self.wildcard_shard(src)?;
        self.run_on_shard(shard, out, |e| e.post_recv_into(src, tag, buf, policy))
            .map(|op| self.globalize_recv(op, shard))
    }

    fn wildcard_shard(&self, src: ProcessId) -> Result<usize> {
        if src == ANY_SOURCE {
            if self.shards.len() > 1 {
                return Err(Error::ShardedWildcard {
                    shards: self.shards.len(),
                });
            }
            return Ok(0);
        }
        Ok(self.shard_of(src))
    }

    /// Cancels a still-unmatched receive; see [`Endpoint::cancel`].
    pub fn cancel_recv(&self, op: RecvOp, out: &mut EngineBatch) -> bool {
        let shard = self.recv_shard(op);
        let local = self.localize_recv(op);
        self.run_on_shard(shard, out, |e| e.cancel(local))
    }

    /// Cancels an unpulled send; see [`Endpoint::cancel_send`].
    pub fn cancel_send(&self, op: SendOp, out: &mut EngineBatch) -> bool {
        let shard = self.send_shard(op);
        let local = self.localize_send(op);
        self.run_on_shard(shard, out, |e| e.cancel_send(local))
    }

    /// Delivers a packet from `src` to its shard; see
    /// [`Endpoint::handle_packet`].
    pub fn handle_packet(&self, src: ProcessId, packet: Packet, out: &mut EngineBatch) {
        self.run_for_peer(src, out, |e| e.handle_packet(src, packet));
    }

    /// Delivers an ARQ frame from `src` to its shard; see
    /// [`Endpoint::handle_frame`].
    pub fn handle_frame(&self, src: ProcessId, frame: Frame, out: &mut EngineBatch) {
        self.run_for_peer(src, out, |e| e.handle_frame(src, frame));
    }

    /// Fires a timer on its peer's shard; see [`Endpoint::handle_timer`].
    /// Timer ids are peer-keyed, so a timer armed by a shard always fires
    /// back into the same shard.
    pub fn handle_timer(&self, timer: TimerId, out: &mut EngineBatch) {
        self.run_for_peer(timer.peer, out, |e| e.handle_timer(timer));
    }

    /// Merged statistics over every shard (see [`EndpointStats::merge`]).
    /// `completions_evicted` stays 0 here — backends merge their completion
    /// queue's counter in, exactly as with a bare engine.
    pub fn stats(&self) -> EndpointStats {
        let mut total = EndpointStats::default();
        for shard in self.shards.iter() {
            total.merge(&shard.lock().stats());
        }
        total
    }

    /// `true` when every shard is idle (see [`Endpoint::idle`]).
    pub fn idle(&self) -> bool {
        self.shards.iter().all(|shard| shard.lock().idle())
    }

    /// Merged distribution of **sampled** engine-lock hold times across all
    /// shards, in nanoseconds (1 hold in [`LOCK_SAMPLE`](self) is timed).
    /// Mergeable with other snapshots like
    /// [`EndpointStats::merge`](EndpointStats::merge).
    pub fn lock_hold_stats(&self) -> HistogramSnapshot {
        let mut total = HistogramSnapshot::default();
        for tel in self.shard_telemetry.iter() {
            total.merge(&tel.hold_ns.snapshot());
        }
        total
    }

    /// ARQ statistics of the channel to `peer`, if one exists; see
    /// [`Endpoint::channel_stats`].
    pub fn channel_stats(&self, peer: ProcessId) -> Option<crate::reliability::GbnStats> {
        self.shards[self.shard_of(peer)].lock().channel_stats(peer)
    }

    /// Visits every ARQ channel across all shards; see
    /// [`Endpoint::each_channel`].
    pub fn each_channel(&self, mut f: impl FnMut(ProcessId, &crate::reliability::ArqChannel)) {
        for shard in self.shards.iter() {
            shard.lock().each_channel(&mut f);
        }
    }

    /// Resizes every shard's pushed buffer to `capacity`; see
    /// [`Endpoint::resize_pushed_buffer`].  Capacity is per shard.
    pub fn resize_pushed_buffer(&self, capacity: usize) {
        for shard in self.shards.iter() {
            shard.lock().resize_pushed_buffer(capacity);
        }
    }

    /// Test-only hook: acquires two shard locks nested in the given order.
    /// Exists so the lockdep self-tests can prove the cycle detector has
    /// teeth against the *production* shard classes — nothing in the real
    /// engine ever holds two shard locks at once.
    #[doc(hidden)]
    pub fn __lockdep_lock_pair(&self, first: usize, second: usize) {
        let ga = self.shards[first].lock();
        let _gb = self.shards[second].lock();
        drop(ga);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ANY_TAG;
    use crate::ProtocolMode;

    fn cfg() -> ProtocolConfig {
        ProtocolConfig::paper_intranode().with_mode(ProtocolMode::PushPull)
    }

    fn pump(
        a: &ShardedEngine,
        b: &ShardedEngine,
        ba: &mut EngineBatch,
        bb: &mut EngineBatch,
        comps: &mut Vec<Completion>,
    ) {
        // Relay packets between two sharded engines until both are idle,
        // accumulating every completion either side produces.  `ba` only
        // ever holds traffic emitted by `a`, `bb` by `b`, so attribution of
        // relayed packets stays correct.
        loop {
            let acts_a: Vec<Action> = ba.actions.drain(..).collect();
            let acts_b: Vec<Action> = bb.actions.drain(..).collect();
            let mut progressed = false;
            for action in acts_a {
                if let Action::Transmit { packet, .. } = action {
                    progressed = true;
                    b.handle_packet(a.id(), packet, bb);
                }
            }
            for action in acts_b {
                if let Action::Transmit { packet, .. } = action {
                    progressed = true;
                    a.handle_packet(b.id(), packet, ba);
                }
            }
            comps.append(&mut ba.comps);
            comps.append(&mut bb.comps);
            if !progressed && ba.actions.is_empty() && bb.actions.is_empty() {
                break;
            }
        }
    }

    #[test]
    fn round_robin_assignment_spreads_peers() {
        let e = ShardedEngine::new(ProcessId::new(0, 0), cfg(), 4);
        let shards: Vec<usize> = (1..9).map(|r| e.shard_of(ProcessId::new(0, r))).collect();
        assert_eq!(shards, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        // Sticky: re-query returns the same assignment.
        assert_eq!(e.shard_of(ProcessId::new(0, 1)), 0);
    }

    #[test]
    fn handle_remap_is_identity_with_one_shard() {
        let e = ShardedEngine::new(ProcessId::new(0, 0), cfg(), 1);
        let op = SendOp::from_raw(7, 3);
        assert_eq!(e.globalize_send(op, 0), op);
        assert_eq!(e.localize_send(op), op);
    }

    #[test]
    fn handle_remap_round_trips() {
        let e = ShardedEngine::new(ProcessId::new(0, 0), cfg(), 4);
        for slot in 0..16u32 {
            for shard in 0..4usize {
                let local = RecvOp::from_raw(slot, 9);
                let global = e.globalize_recv(local, shard);
                assert_eq!(e.recv_shard(global), shard);
                assert_eq!(e.localize_recv(global), local);
            }
        }
    }

    #[test]
    fn wildcard_rejected_on_multi_shard() {
        let e = ShardedEngine::new(ProcessId::new(0, 0), cfg(), 2);
        let mut out = EngineBatch::new();
        let err = e
            .post_recv_with(ANY_SOURCE, ANY_TAG, 64, TruncationPolicy::Error, &mut out)
            .unwrap_err();
        assert_eq!(err, Error::ShardedWildcard { shards: 2 });
        // Tag wildcard with a concrete source is fine.
        assert!(e
            .post_recv_with(
                ProcessId::new(0, 1),
                ANY_TAG,
                64,
                TruncationPolicy::Error,
                &mut out
            )
            .is_ok());
    }

    #[test]
    fn sharded_transfer_and_merged_stats() {
        // Two sharded engines exchange a message; completions carry
        // globalized handles that localize back to the right shard.
        let a = ShardedEngine::new(ProcessId::new(0, 0), cfg(), 2);
        let b = ShardedEngine::new(ProcessId::new(0, 1), cfg(), 2);
        let mut ba = EngineBatch::new();
        let mut bb = EngineBatch::new();
        let mut comps: Vec<Completion> = Vec::new();
        let data = Bytes::from(vec![0xA5u8; 2048]);
        let recv = b
            .post_recv_with(a.id(), Tag(3), 2048, TruncationPolicy::Error, &mut bb)
            .unwrap();
        let send = a.post_send(b.id(), Tag(3), data.clone(), &mut ba).unwrap();
        pump(&a, &b, &mut ba, &mut bb, &mut comps);
        comps.append(&mut ba.comps);
        comps.append(&mut bb.comps);
        let got_send = comps.iter().any(|c| c.op == OpId::Send(send));
        let got_recv = comps
            .iter()
            .any(|c| c.op == OpId::Recv(recv) && c.data.as_deref() == Some(&data[..]));
        assert!(got_send, "send completion with globalized handle");
        assert!(got_recv, "recv completion with globalized handle and data");
        assert_eq!(a.stats().sends_completed, 1);
        assert_eq!(b.stats().recvs_completed, 1);
        assert!(a.idle() && b.idle());
    }
}
