//! The object-safe backend contract: [`RawTransport`].
//!
//! A transport backend — the intranode shared-memory fabric, the UDP
//! internode endpoint, the deterministic sim-cluster loopback binding, or
//! anything a downstream user writes — implements exactly one small trait:
//! the **posting core** (post a send / receive, cancel) plus a single
//! completion-access primitive, [`RawTransport::with_completions`], which
//! runs a closure against the endpoint's [`CompletionQueue`] under whatever
//! lock the backend guards it with.
//!
//! Everything else is **shared code**: claiming, polling, waker interest,
//! batch draining, and borrowed peeking are provided methods derived from
//! `with_completions`, written once here; blocking waits, async futures and
//! the configuration front-end live in the facade crate's generic
//! `Endpoint<T: RawTransport>`.  Adding a backend means implementing the
//! nine required methods below — not re-deriving a 13-method surface.
//!
//! The trait is deliberately **object-safe**: every required and provided
//! method is non-generic, so `Box<dyn RawTransport>` is a first-class
//! backend and heterogeneous endpoints (one host, one loopback, one UDP)
//! can live behind a single type in a routing table.

use crate::engine::EndpointStats;
use crate::error::Result;
use crate::ops::{
    Claim, Completion, CompletionQueue, OpId, RecvBuf, RecvOp, SendOp, TruncationPolicy,
};
use crate::types::{ProcessId, Tag};
use bytes::Bytes;
use std::task::Waker;

/// The minimal, object-safe transport backend: post operations, cancel
/// them, and expose the completion queue.  See the [module docs](self) for
/// the design rationale and the facade crate's `Endpoint<T>` for the
/// convenience layer built on top.
///
/// # Contract
///
/// * Posting methods hand the operation to the engine and initiate whatever
///   transfer the protocol calls for before returning.
/// * [`RawTransport::with_completions`] calls its closure **exactly once**,
///   under the same lock (or single-threaded context) that completion
///   publication uses, so a check-then-register through it can never race a
///   concurrently published completion.
/// * Publication must wake any [`Waker`] registered in the queue **after**
///   releasing that lock (see [`crate::ops::wake_all`]).
pub trait RawTransport {
    /// The process id of this endpoint.
    fn local_id(&self) -> ProcessId;

    /// Posts a send of `data` to `peer` with tag `tag`, returning its
    /// operation handle.  The matching [`Completion`] reports when the
    /// message has been fully handed to the transport (for Push-Pull sends,
    /// when the receiver has pulled the remainder).
    fn post_send(&self, peer: ProcessId, tag: Tag, data: Bytes) -> Result<SendOp>;

    /// Posts a **vectored** send: `segments` arrive as one concatenated
    /// message, but are never coalesced on the wire — every packet's payload
    /// is a zero-copy slice of exactly one segment.  Empty segments are
    /// skipped.
    fn post_send_vectored(&self, peer: ProcessId, tag: Tag, segments: &[Bytes]) -> Result<SendOp>;

    /// Posts an engine-buffered receive of up to `capacity` bytes.  `src` /
    /// `tag` may be the [`ANY_SOURCE`](crate::types::ANY_SOURCE) /
    /// [`ANY_TAG`](crate::types::ANY_TAG) wildcards; the completion reports
    /// the concrete source and tag.
    fn post_recv(
        &self,
        src: ProcessId,
        tag: Tag,
        capacity: usize,
        policy: TruncationPolicy,
    ) -> Result<RecvOp>;

    /// Posts a receive that reassembles the message directly into the
    /// caller-owned `buf`, handed back in the completion (also on
    /// cancellation and failure).
    fn post_recv_into(
        &self,
        src: ProcessId,
        tag: Tag,
        buf: RecvBuf,
        policy: TruncationPolicy,
    ) -> Result<RecvOp>;

    /// Cancels a still-unmatched receive.  Returns `true` when the operation
    /// was cancelled (a [`Status::Cancelled`](crate::Status::Cancelled)
    /// completion is produced); `false` for stale handles and
    /// already-matched receives.
    fn cancel_recv(&self, op: RecvOp) -> bool;

    /// Cancels a posted send whose remainder has not been pulled yet,
    /// reclaiming the pinned payload.  Returns `true` when the operation was
    /// cancelled; `false` for stale handles, eagerly-completed sends, and
    /// sends whose pull has already been served.  See
    /// [`crate::Endpoint::cancel_send`] for the receiver-side caveat.
    fn cancel_send(&self, op: SendOp) -> bool;

    /// Runs `f` exactly once against this endpoint's [`CompletionQueue`],
    /// under the lock that guards completion publication.  This is the single
    /// primitive all completion access (claim, poll, drain, peek, waker
    /// interest) derives from — the provided methods below and the facade's
    /// blocking/async front-end are shared code over it.
    ///
    /// Implementations must not invoke wakers while the lock is held; `f`
    /// itself never wakes (it only operates on the queue).
    fn with_completions(&self, f: &mut dyn FnMut(&mut CompletionQueue));

    /// Protocol statistics of this endpoint, including the backend's
    /// completion-queue eviction counter
    /// ([`EndpointStats::completions_evicted`]).
    fn stats(&self) -> EndpointStats;

    // ------------------------------------------------------------------
    // Provided methods: completion access derived from `with_completions`,
    // written once for every backend (all non-generic, so `dyn` works).
    // ------------------------------------------------------------------

    /// Takes the completion of `op` if the operation has finished, without
    /// blocking or registering anything.
    fn take_completion(&self, op: OpId) -> Option<Completion> {
        let mut out = None;
        self.with_completions(&mut |queue| out = queue.take(op));
        out
    }

    /// Takes the completion of `op` if the operation has finished, or
    /// registers `waker` to be woken when it does — one atomic step with
    /// respect to completion publication.  This is the poll primitive behind
    /// the async front-end.
    fn poll_completion(&self, op: OpId, waker: &Waker) -> Option<Completion> {
        let mut out = None;
        self.with_completions(&mut |queue| out = queue.take_or_register(op, waker));
        out
    }

    /// Exempts `op`'s completion (present or future) from retention
    /// eviction until claimed; see [`CompletionQueue::register_interest`].
    fn register_interest(&self, op: OpId) {
        self.with_completions(&mut |queue| queue.register_interest(op));
    }

    /// Withdraws any waker or interest registered for `op` (an abandoned
    /// await or an expired blocking wait); see [`CompletionQueue::deregister`].
    fn deregister_interest(&self, op: OpId) {
        self.with_completions(&mut |queue| queue.deregister(op));
    }

    /// Drains every unclaimed completion into `out`, oldest first — except
    /// completions some waiter has registered for, which stay queued for
    /// that waiter.  Beyond the endpoint's retention cap, unawaited
    /// completions are evicted oldest-first
    /// (observable through [`EndpointStats::completions_evicted`]).
    fn drain_completions(&self, out: &mut Vec<Completion>) {
        self.with_completions(&mut |queue| queue.drain_into(out));
    }

    /// Shows every unclaimed, unawaited completion to `f` **by reference**,
    /// oldest first, without moving its `Bytes` or [`RecvBuf`] — the
    /// borrowed drain for telemetry and in-place triage.  `f` returns a
    /// [`Claim`] per completion: [`Claim::Keep`] preserves it for a later
    /// claim, [`Claim::Remove`] consumes and drops it.  See
    /// [`CompletionQueue::peek_each`].
    fn peek_completions(&self, f: &mut dyn FnMut(&Completion) -> Claim) {
        self.with_completions(&mut |queue| queue.peek_each(f));
    }
}

macro_rules! delegate_raw_transport {
    ($wrapper:ty) => {
        impl<T: RawTransport + ?Sized> RawTransport for $wrapper {
            fn local_id(&self) -> ProcessId {
                (**self).local_id()
            }
            fn post_send(&self, peer: ProcessId, tag: Tag, data: Bytes) -> Result<SendOp> {
                (**self).post_send(peer, tag, data)
            }
            fn post_send_vectored(
                &self,
                peer: ProcessId,
                tag: Tag,
                segments: &[Bytes],
            ) -> Result<SendOp> {
                (**self).post_send_vectored(peer, tag, segments)
            }
            fn post_recv(
                &self,
                src: ProcessId,
                tag: Tag,
                capacity: usize,
                policy: TruncationPolicy,
            ) -> Result<RecvOp> {
                (**self).post_recv(src, tag, capacity, policy)
            }
            fn post_recv_into(
                &self,
                src: ProcessId,
                tag: Tag,
                buf: RecvBuf,
                policy: TruncationPolicy,
            ) -> Result<RecvOp> {
                (**self).post_recv_into(src, tag, buf, policy)
            }
            fn cancel_recv(&self, op: RecvOp) -> bool {
                (**self).cancel_recv(op)
            }
            fn cancel_send(&self, op: SendOp) -> bool {
                (**self).cancel_send(op)
            }
            fn with_completions(&self, f: &mut dyn FnMut(&mut CompletionQueue)) {
                (**self).with_completions(f)
            }
            fn stats(&self) -> EndpointStats {
                (**self).stats()
            }
        }
    };
}

delegate_raw_transport!(&T);
delegate_raw_transport!(Box<T>);
delegate_raw_transport!(std::sync::Arc<T>);
