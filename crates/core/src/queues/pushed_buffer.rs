//! The pushed buffer: a finite, pinned kernel buffer holding pushed data
//! whose destination is not yet known.

// ppmsg-lint: deny(hot_path_alloc) — steady-state engine path; pooled buffers only.

use serde::{Deserialize, Serialize};

/// Statistics exposed by the pushed buffer, used by the experiment harness to
/// explain the Fig. 6 (late receiver) collapse of Push-All.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PushedBufferStats {
    /// Bytes currently resident in the buffer.
    pub in_use: usize,
    /// Largest number of bytes ever resident at once.
    pub high_water: usize,
    /// Total bytes accepted over the lifetime of the buffer.
    pub total_accepted: u64,
    /// Total bytes rejected because the buffer was full (each rejection
    /// forces a retransmission by the sender's go-back-N logic).
    pub total_rejected: u64,
    /// Number of individual reservation attempts that were rejected.
    pub overflow_events: u64,
}

/// Byte-capacity accounting for the pushed buffer.
///
/// The actual payload bytes live with the message assembly state in the
/// engine; this type only enforces the capacity limit, because that limit —
/// 12 KiB in Fig. 3, 4 KiB in Fig. 6 — is what differentiates Push-All from
/// Push-Pull when the receiver is late.
#[derive(Debug, Clone)]
pub struct PushedBuffer {
    capacity: usize,
    stats: PushedBufferStats,
}

impl PushedBuffer {
    /// Creates a pushed buffer with the given byte capacity.
    pub fn new(capacity: usize) -> Self {
        PushedBuffer {
            capacity,
            stats: PushedBufferStats::default(),
        }
    }

    /// The configured capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently reserved.
    #[inline]
    pub fn in_use(&self) -> usize {
        self.stats.in_use
    }

    /// Bytes still free (zero when the buffer was shrunk below the amount
    /// currently in use).
    #[inline]
    pub fn free(&self) -> usize {
        self.capacity.saturating_sub(self.stats.in_use)
    }

    /// Attempts to reserve `len` bytes for an unexpected pushed fragment.
    ///
    /// Returns `true` on success.  On failure nothing is reserved and the
    /// rejection is recorded; the caller is expected to drop the packet so
    /// the sender retransmits it later (go-back-N).
    pub fn try_reserve(&mut self, len: usize) -> bool {
        if len > self.free() {
            self.stats.total_rejected += len as u64;
            self.stats.overflow_events += 1;
            return false;
        }
        self.stats.in_use += len;
        self.stats.high_water = self.stats.high_water.max(self.stats.in_use);
        self.stats.total_accepted += len as u64;
        true
    }

    /// Releases `len` bytes previously reserved (after the data has been
    /// copied to its destination buffer).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if more bytes are released than are in use —
    /// that would indicate an accounting bug in the engine.
    pub fn release(&mut self, len: usize) {
        debug_assert!(
            len <= self.stats.in_use,
            "pushed buffer released {len} bytes with only {} in use",
            self.stats.in_use
        );
        self.stats.in_use = self.stats.in_use.saturating_sub(len);
    }

    /// Dynamically resizes the buffer ("applications can dynamically change
    /// the size of the pushed buffer to adapt to the runtime environment").
    /// Shrinking below the currently reserved amount keeps the reserved bytes
    /// but rejects new reservations until enough is released.
    pub fn resize(&mut self, capacity: usize) {
        self.capacity = capacity;
    }

    /// A snapshot of the buffer statistics.
    #[inline]
    pub fn stats(&self) -> PushedBufferStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let mut pb = PushedBuffer::new(4096);
        assert!(pb.try_reserve(1024));
        assert!(pb.try_reserve(1024));
        assert_eq!(pb.in_use(), 2048);
        assert_eq!(pb.free(), 2048);
        pb.release(1024);
        assert_eq!(pb.in_use(), 1024);
        assert_eq!(pb.stats().high_water, 2048);
    }

    #[test]
    fn overflow_is_rejected_and_counted() {
        let mut pb = PushedBuffer::new(4096);
        assert!(pb.try_reserve(4000));
        assert!(!pb.try_reserve(200));
        assert_eq!(pb.in_use(), 4000);
        let s = pb.stats();
        assert_eq!(s.overflow_events, 1);
        assert_eq!(s.total_rejected, 200);
        assert_eq!(s.total_accepted, 4000);
    }

    #[test]
    fn exact_fit_accepted() {
        let mut pb = PushedBuffer::new(100);
        assert!(pb.try_reserve(100));
        assert!(!pb.try_reserve(1));
        pb.release(100);
        assert!(pb.try_reserve(1));
    }

    #[test]
    fn resize_smaller_than_in_use() {
        let mut pb = PushedBuffer::new(4096);
        assert!(pb.try_reserve(3000));
        pb.resize(1024);
        assert!(!pb.try_reserve(1));
        assert_eq!(pb.free(), 0);
        pb.release(3000);
        assert!(pb.try_reserve(1024));
    }

    #[test]
    fn zero_length_reservation_always_succeeds() {
        let mut pb = PushedBuffer::new(0);
        assert!(pb.try_reserve(0));
        assert_eq!(pb.in_use(), 0);
    }
}
