//! The send queue: pending send operations whose remainder is waiting to be
//! pulled by the receiver.

// ppmsg-lint: deny(hot_path_alloc) — steady-state engine path; pooled buffers only.

use crate::btp::BtpSplit;
use crate::index::{Slab, U64Index, NIL};
use crate::ops::SendOp;
use crate::types::{MessageId, ProcessId, Tag};
use bytes::Bytes;
use std::sync::Arc;

/// Calls `f(offset, chunk)` for every wire chunk covering the message range
/// `[start, end)` of the concatenation of `segments`: each chunk is at most
/// `max_payload` bytes, is a zero-copy slice of the underlying storage, and
/// never crosses a segment boundary (no coalescing).  A zero-length range
/// yields exactly one empty chunk — a zero-byte push still announces the
/// message.
///
/// Working on a **borrowed** slice is what keeps the fully-eager vectored
/// send allocation-free: the engine chunks the caller's segment list
/// directly and only pins it (in one shared `Arc<[Bytes]>`) when a pull
/// remainder must outlive the posting call.
pub fn chunk_segments(
    segments: &[Bytes],
    start: usize,
    end: usize,
    max_payload: usize,
    mut f: impl FnMut(usize, Bytes),
) {
    debug_assert!(start <= end);
    if start == end {
        f(start, Bytes::new());
        return;
    }
    // `base` is the message offset where the current segment starts; chunks
    // are clipped to [start, end) ∩ the segment.
    let mut base = 0usize;
    for segment in segments {
        let seg_end = base + segment.len();
        let lo = start.max(base);
        let hi = end.min(seg_end);
        let mut offset = lo;
        while offset < hi {
            let chunk = (hi - offset).min(max_payload);
            f(offset, segment.slice(offset - base..offset - base + chunk));
            offset += chunk;
        }
        base = seg_end;
        if base >= end {
            break;
        }
    }
}

/// The payload of one send operation: a single contiguous buffer, or a
/// vectored list of segments sent as one message.
///
/// Vectored payloads are transmitted **without coalescing**: every wire
/// packet's payload is a zero-copy [`Bytes::slice`] of exactly one segment
/// ([`chunk_segments`] never crosses a segment boundary), so a scatter list
/// of headers and body buffers goes on the wire without ever being copied
/// into a contiguous staging buffer.
///
/// A `SendPayload` only exists for sends that register a **pull remainder**
/// (it lives in the send queue until the receiver pulls): fully-eager sends
/// — including small vectored ones, the latency-critical case — are chunked
/// straight off the caller's borrowed segment slice and never construct
/// one, so they never pay the `Arc<[Bytes]>` pin.  Keeping the vectored
/// variant a thin shared pointer (rather than inlining segments here) also
/// keeps the [`PendingSend`] record small: it is moved in and out of the
/// send-queue slab on every registered send.
#[derive(Debug, Clone)]
pub enum SendPayload {
    /// One contiguous buffer (the [`post_send`](crate::Endpoint::post_send)
    /// path).
    Single(Bytes),
    /// A scatter list of segments, concatenated on the receive side (the
    /// [`post_send_vectored`](crate::Endpoint::post_send_vectored) path).
    /// Empty segments are skipped on the wire.  The list is shared
    /// (`Arc<[Bytes]>`): a send with a pull remainder pays one allocation to
    /// pin the segment list, and cloning the pending payload to serve the
    /// pull phase is a refcount bump, like the single-buffer path.
    Vectored(Arc<[Bytes]>),
}

impl SendPayload {
    /// Total message length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            SendPayload::Single(data) => data.len(),
            SendPayload::Vectored(segments) => segments.iter().map(|s| s.len()).sum(),
        }
    }

    /// `true` for empty messages.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Calls `f(offset, chunk)` for every wire chunk covering the message
    /// range `[start, end)`; see [`chunk_segments`], which this delegates to
    /// (a single buffer chunks exactly like a one-segment list).
    pub fn for_each_chunk(
        &self,
        start: usize,
        end: usize,
        max_payload: usize,
        f: impl FnMut(usize, Bytes),
    ) {
        debug_assert!(start <= end && end <= self.len());
        match self {
            SendPayload::Single(data) => {
                chunk_segments(std::slice::from_ref(data), start, end, max_payload, f)
            }
            SendPayload::Vectored(segments) => chunk_segments(segments, start, end, max_payload, f),
        }
    }
}

impl From<Bytes> for SendPayload {
    fn from(data: Bytes) -> Self {
        SendPayload::Single(data)
    }
}

/// One registered send operation (arrow 1b.1 in Fig. 1).
#[derive(Debug, Clone)]
pub struct PendingSend {
    /// Operation handle returned to the application.
    pub op: SendOp,
    /// The destination process.
    pub dst: ProcessId,
    /// The user tag.
    pub tag: Tag,
    /// The message identifier chosen by the sender.
    pub msg_id: MessageId,
    /// The complete message payload (cheaply sliceable, possibly vectored).
    pub payload: SendPayload,
    /// How the message was split into pushed and pulled parts.
    pub split: BtpSplit,
    /// `true` once the pull request has been answered (the pulled bytes have
    /// been handed to the transport).
    pub pull_served: bool,
    /// `true` once the whole message has been handed to the transport (but
    /// not necessarily acknowledged at the transport level).
    pub fully_transmitted: bool,
    /// `true` once the source-buffer zero buffer has been built (address
    /// translation performed).  With translation masking this happens after
    /// the first push has been injected.
    pub translated: bool,
}

impl PendingSend {
    /// Length of the user message in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// `true` for empty messages.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

#[derive(Debug)]
struct Node {
    send: PendingSend,
    /// Registration-order links (doubly linked so completion unlinks in
    /// O(1) instead of the `order.retain` scan the original used).
    prev: u32,
    next: u32,
}

/// The send queue shared between a process and its kernel side.
///
/// Pending sends live in a slab addressed through an open-addressed
/// message-id index; registration order is kept by intrusive links.  All of
/// register / lookup / remove are O(1) amortized and allocation-free in
/// steady state.
#[derive(Debug, Default)]
pub struct SendQueue {
    nodes: Slab<Node>,
    by_msg_id: U64Index,
    head: u32,
    tail: u32,
}

impl SendQueue {
    /// Creates an empty send queue.
    pub fn new() -> Self {
        SendQueue {
            nodes: Slab::new(),
            by_msg_id: U64Index::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Registers a pending send, keyed by its message id.
    #[inline]
    pub fn register(&mut self, send: PendingSend) {
        let key = send.msg_id.0;
        debug_assert!(self.by_msg_id.get(key).is_none(), "duplicate msg_id {key}");
        let slot = self.nodes.insert(Node {
            send,
            prev: self.tail,
            next: NIL,
        });
        if self.tail != NIL {
            self.nodes.get_mut(self.tail).unwrap().next = slot;
        } else {
            self.head = slot;
        }
        self.tail = slot;
        self.by_msg_id.insert(key, slot);
    }

    /// Looks up a pending send by message id.
    #[inline]
    pub fn get(&self, msg_id: MessageId) -> Option<&PendingSend> {
        let slot = self.by_msg_id.get(msg_id.0)?;
        Some(&self.nodes.get(slot)?.send)
    }

    /// Mutable lookup by message id.
    #[inline]
    pub fn get_mut(&mut self, msg_id: MessageId) -> Option<&mut PendingSend> {
        let slot = self.by_msg_id.get(msg_id.0)?;
        Some(&mut self.nodes.get_mut(slot)?.send)
    }

    /// Removes a completed send from the queue, returning it.
    #[inline]
    pub fn remove(&mut self, msg_id: MessageId) -> Option<PendingSend> {
        let slot = self.by_msg_id.remove(msg_id.0)?;
        let node = self.nodes.remove(slot).expect("indexed slot must be live");
        if node.prev != NIL {
            self.nodes.get_mut(node.prev).unwrap().next = node.next;
        } else {
            self.head = node.next;
        }
        if node.next != NIL {
            self.nodes.get_mut(node.next).unwrap().prev = node.prev;
        } else {
            self.tail = node.prev;
        }
        Some(node.send)
    }

    /// Number of sends currently registered.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no sends are pending.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over pending sends in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &PendingSend> {
        OrderIter {
            queue: self,
            cursor: self.head,
        }
    }

    /// Number of heap allocations this queue has performed (steady state
    /// must not add any).
    pub fn alloc_events(&self) -> u64 {
        self.nodes.alloc_events() + self.by_msg_id.alloc_events()
    }
}

struct OrderIter<'a> {
    queue: &'a SendQueue,
    cursor: u32,
}

impl<'a> Iterator for OrderIter<'a> {
    type Item = &'a PendingSend;
    fn next(&mut self) -> Option<&'a PendingSend> {
        if self.cursor == NIL {
            return None;
        }
        let node = self
            .queue
            .nodes
            .get(self.cursor)
            .expect("order links intact");
        self.cursor = node.next;
        Some(&node.send)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::btp::BtpPolicy;
    use crate::config::{OptFlags, ProtocolMode};

    fn pending(msg_id: u64, len: usize) -> PendingSend {
        PendingSend {
            op: SendOp::from_raw(msg_id as u32, 0),
            dst: ProcessId::new(1, 0),
            tag: Tag(0),
            msg_id: MessageId(msg_id),
            payload: SendPayload::Single(Bytes::from(vec![0u8; len])),
            split: BtpSplit::plan(
                ProtocolMode::PushPull,
                BtpPolicy::INTERNODE_DEFAULT,
                OptFlags::full(),
                len,
            ),
            pull_served: false,
            fully_transmitted: false,
            translated: false,
        }
    }

    #[test]
    fn register_lookup_remove() {
        let mut q = SendQueue::new();
        q.register(pending(1, 4096));
        q.register(pending(2, 100));
        assert_eq!(q.len(), 2);
        assert_eq!(q.get(MessageId(1)).unwrap().len(), 4096);
        assert!(q.get(MessageId(3)).is_none());

        let removed = q.remove(MessageId(1)).unwrap();
        assert_eq!(removed.op, SendOp::from_raw(1, 0));
        assert_eq!(q.len(), 1);
        assert!(q.remove(MessageId(1)).is_none());
    }

    #[test]
    fn iteration_is_in_registration_order() {
        let mut q = SendQueue::new();
        for id in [5u64, 3, 9, 1] {
            q.register(pending(id, 10));
        }
        let ids: Vec<u64> = q.iter().map(|p| p.msg_id.0).collect();
        assert_eq!(ids, vec![5, 3, 9, 1]);
    }

    #[test]
    fn order_survives_interior_removal() {
        let mut q = SendQueue::new();
        for id in [5u64, 3, 9, 1] {
            q.register(pending(id, 10));
        }
        q.remove(MessageId(9)).unwrap();
        q.remove(MessageId(5)).unwrap();
        let ids: Vec<u64> = q.iter().map(|p| p.msg_id.0).collect();
        assert_eq!(ids, vec![3, 1]);
        q.register(pending(7, 10));
        let ids: Vec<u64> = q.iter().map(|p| p.msg_id.0).collect();
        assert_eq!(ids, vec![3, 1, 7]);
    }

    #[test]
    fn get_mut_allows_state_transition() {
        let mut q = SendQueue::new();
        q.register(pending(7, 5000));
        let entry = q.get_mut(MessageId(7)).unwrap();
        assert!(!entry.pull_served);
        entry.pull_served = true;
        assert!(q.get(MessageId(7)).unwrap().pull_served);
    }

    #[test]
    fn empty_message_flags() {
        let p = pending(1, 0);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    /// Collects `for_each_chunk` output as `(offset, len, ptr)` triples.
    fn chunks(
        payload: &SendPayload,
        start: usize,
        end: usize,
        max: usize,
    ) -> Vec<(usize, usize, *const u8)> {
        let mut out = Vec::new();
        payload.for_each_chunk(start, end, max, |offset, chunk| {
            out.push((offset, chunk.len(), chunk.as_ptr()));
        });
        out
    }

    #[test]
    fn single_payload_chunks_by_max_payload() {
        let payload = SendPayload::Single(Bytes::from(vec![7u8; 10]));
        let got = chunks(&payload, 2, 10, 3);
        assert_eq!(
            got.iter().map(|&(o, l, _)| (o, l)).collect::<Vec<_>>(),
            vec![(2, 3), (5, 3), (8, 2)]
        );
    }

    #[test]
    fn vectored_payload_never_crosses_segment_boundaries() {
        let segments = vec![
            Bytes::from(vec![1u8; 5]),
            Bytes::new(), // empty segments are skipped on the wire
            Bytes::from(vec![2u8; 7]),
            Bytes::from(vec![3u8; 4]),
        ];
        let payload = SendPayload::Vectored(segments.clone().into());
        assert_eq!(payload.len(), 16);
        // Full range, max_payload 4: chunks split at 5 and 12 (segment
        // boundaries) as well as every 4 bytes within a segment.
        let got = chunks(&payload, 0, 16, 4);
        assert_eq!(
            got.iter().map(|&(o, l, _)| (o, l)).collect::<Vec<_>>(),
            vec![(0, 4), (4, 1), (5, 4), (9, 3), (12, 4)]
        );
        // Every chunk is a zero-copy slice: its pointer lies inside the
        // segment that owns its offset — no staging copy anywhere.
        for &(offset, len, ptr) in &got {
            let (seg, base) = if offset < 5 {
                (&segments[0], 0)
            } else if offset < 12 {
                (&segments[2], 5)
            } else {
                (&segments[3], 12)
            };
            let seg_ptr = seg.as_ptr();
            // SAFETY: the offsets were chosen inside the segment; the
            // length assert below re-checks the bound.
            assert_eq!(ptr, unsafe { seg_ptr.add(offset - base) });
            assert!(offset - base + len <= seg.len());
        }
        // A sub-range that starts and ends mid-segment.
        let got = chunks(&payload, 3, 14, 100);
        assert_eq!(
            got.iter().map(|&(o, l, _)| (o, l)).collect::<Vec<_>>(),
            vec![(3, 2), (5, 7), (12, 2)]
        );
    }

    #[test]
    fn zero_length_range_yields_one_announce_chunk() {
        for payload in [
            SendPayload::Single(Bytes::new()),
            SendPayload::Vectored(Vec::new().into()),
            SendPayload::Vectored(vec![Bytes::new(), Bytes::new()].into()),
        ] {
            let got = chunks(&payload, 0, 0, 1460);
            assert_eq!(got.len(), 1);
            assert_eq!((got[0].0, got[0].1), (0, 0));
        }
    }

    #[test]
    fn single_payload_chunks_like_a_one_segment_list() {
        let data = Bytes::from(vec![9u8; 10]);
        let single = SendPayload::Single(data.clone());
        let vectored = SendPayload::Vectored(vec![data].into());
        for (start, end, max) in [(0usize, 10usize, 3usize), (2, 9, 4), (0, 0, 8)] {
            assert_eq!(
                chunks(&single, start, end, max)
                    .iter()
                    .map(|&(o, l, _)| (o, l))
                    .collect::<Vec<_>>(),
                chunks(&vectored, start, end, max)
                    .iter()
                    .map(|&(o, l, _)| (o, l))
                    .collect::<Vec<_>>(),
                "range {start}..{end} max {max}"
            );
        }
    }

    #[test]
    fn payload_is_only_as_large_as_its_thin_variants() {
        // The vectored variant must stay a thin shared pointer: PendingSend
        // records move through the send-queue slab on every registered send,
        // so an inline segment array here would tax every single-buffer send
        // with its size.
        assert!(std::mem::size_of::<SendPayload>() <= 40);
    }

    #[test]
    fn steady_register_remove_cycle_does_not_allocate() {
        let mut q = SendQueue::new();
        for id in 0..4u64 {
            q.register(pending(id, 16));
        }
        for id in 0..4u64 {
            q.remove(MessageId(id)).unwrap();
        }
        let allocs = q.alloc_events();
        for id in 4..10_000u64 {
            q.register(pending(id, 16));
            assert!(q.remove(MessageId(id)).is_some());
        }
        assert_eq!(q.alloc_events(), allocs, "steady churn must not allocate");
    }
}
