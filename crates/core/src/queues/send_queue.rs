//! The send queue: pending send operations whose remainder is waiting to be
//! pulled by the receiver.

use crate::btp::BtpSplit;
use crate::types::{MessageId, ProcessId, SendHandle, Tag};
use bytes::Bytes;
use std::collections::HashMap;

/// One registered send operation (arrow 1b.1 in Fig. 1).
#[derive(Debug, Clone)]
pub struct PendingSend {
    /// Handle returned to the application.
    pub handle: SendHandle,
    /// The destination process.
    pub dst: ProcessId,
    /// The user tag.
    pub tag: Tag,
    /// The message identifier chosen by the sender.
    pub msg_id: MessageId,
    /// The complete message payload (cheaply sliceable).
    pub data: Bytes,
    /// How the message was split into pushed and pulled parts.
    pub split: BtpSplit,
    /// `true` once the pull request has been answered (the pulled bytes have
    /// been handed to the transport).
    pub pull_served: bool,
    /// `true` once the whole message has been handed to the transport (but
    /// not necessarily acknowledged at the transport level).
    pub fully_transmitted: bool,
    /// `true` once the source-buffer zero buffer has been built (address
    /// translation performed).  With translation masking this happens after
    /// the first push has been injected.
    pub translated: bool,
}

impl PendingSend {
    /// Length of the user message in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` for empty messages.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// The send queue shared between a process and its kernel side.
#[derive(Debug, Default)]
pub struct SendQueue {
    entries: HashMap<u64, PendingSend>,
    /// Insertion order, for deterministic iteration and diagnostics.
    order: Vec<u64>,
}

impl SendQueue {
    /// Creates an empty send queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a pending send, keyed by its message id.
    pub fn register(&mut self, send: PendingSend) {
        let key = send.msg_id.0;
        debug_assert!(!self.entries.contains_key(&key), "duplicate msg_id {key}");
        self.order.push(key);
        self.entries.insert(key, send);
    }

    /// Looks up a pending send by message id.
    pub fn get(&self, msg_id: MessageId) -> Option<&PendingSend> {
        self.entries.get(&msg_id.0)
    }

    /// Mutable lookup by message id.
    pub fn get_mut(&mut self, msg_id: MessageId) -> Option<&mut PendingSend> {
        self.entries.get_mut(&msg_id.0)
    }

    /// Removes a completed send from the queue, returning it.
    pub fn remove(&mut self, msg_id: MessageId) -> Option<PendingSend> {
        let removed = self.entries.remove(&msg_id.0);
        if removed.is_some() {
            self.order.retain(|&k| k != msg_id.0);
        }
        removed
    }

    /// Number of sends currently registered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no sends are pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over pending sends in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &PendingSend> {
        self.order.iter().filter_map(move |k| self.entries.get(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{OptFlags, ProtocolMode};
    use crate::btp::BtpPolicy;

    fn pending(msg_id: u64, len: usize) -> PendingSend {
        PendingSend {
            handle: SendHandle(msg_id),
            dst: ProcessId::new(1, 0),
            tag: Tag(0),
            msg_id: MessageId(msg_id),
            data: Bytes::from(vec![0u8; len]),
            split: BtpSplit::plan(
                ProtocolMode::PushPull,
                BtpPolicy::INTERNODE_DEFAULT,
                OptFlags::full(),
                len,
            ),
            pull_served: false,
            fully_transmitted: false,
            translated: false,
        }
    }

    #[test]
    fn register_lookup_remove() {
        let mut q = SendQueue::new();
        q.register(pending(1, 4096));
        q.register(pending(2, 100));
        assert_eq!(q.len(), 2);
        assert_eq!(q.get(MessageId(1)).unwrap().len(), 4096);
        assert!(q.get(MessageId(3)).is_none());

        let removed = q.remove(MessageId(1)).unwrap();
        assert_eq!(removed.handle, SendHandle(1));
        assert_eq!(q.len(), 1);
        assert!(q.remove(MessageId(1)).is_none());
    }

    #[test]
    fn iteration_is_in_registration_order() {
        let mut q = SendQueue::new();
        for id in [5u64, 3, 9, 1] {
            q.register(pending(id, 10));
        }
        let ids: Vec<u64> = q.iter().map(|p| p.msg_id.0).collect();
        assert_eq!(ids, vec![5, 3, 9, 1]);
    }

    #[test]
    fn get_mut_allows_state_transition() {
        let mut q = SendQueue::new();
        q.register(pending(7, 5000));
        let entry = q.get_mut(MessageId(7)).unwrap();
        assert!(!entry.pull_served);
        entry.pull_served = true;
        assert!(q.get(MessageId(7)).unwrap().pull_served);
    }

    #[test]
    fn empty_message_flags() {
        let p = pending(1, 0);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }
}
