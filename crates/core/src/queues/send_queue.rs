//! The send queue: pending send operations whose remainder is waiting to be
//! pulled by the receiver.

use crate::btp::BtpSplit;
use crate::index::{Slab, U64Index, NIL};
use crate::ops::SendOp;
use crate::types::{MessageId, ProcessId, Tag};
use bytes::Bytes;

/// One registered send operation (arrow 1b.1 in Fig. 1).
#[derive(Debug, Clone)]
pub struct PendingSend {
    /// Operation handle returned to the application.
    pub op: SendOp,
    /// The destination process.
    pub dst: ProcessId,
    /// The user tag.
    pub tag: Tag,
    /// The message identifier chosen by the sender.
    pub msg_id: MessageId,
    /// The complete message payload (cheaply sliceable).
    pub data: Bytes,
    /// How the message was split into pushed and pulled parts.
    pub split: BtpSplit,
    /// `true` once the pull request has been answered (the pulled bytes have
    /// been handed to the transport).
    pub pull_served: bool,
    /// `true` once the whole message has been handed to the transport (but
    /// not necessarily acknowledged at the transport level).
    pub fully_transmitted: bool,
    /// `true` once the source-buffer zero buffer has been built (address
    /// translation performed).  With translation masking this happens after
    /// the first push has been injected.
    pub translated: bool,
}

impl PendingSend {
    /// Length of the user message in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` for empty messages.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[derive(Debug)]
struct Node {
    send: PendingSend,
    /// Registration-order links (doubly linked so completion unlinks in
    /// O(1) instead of the `order.retain` scan the original used).
    prev: u32,
    next: u32,
}

/// The send queue shared between a process and its kernel side.
///
/// Pending sends live in a slab addressed through an open-addressed
/// message-id index; registration order is kept by intrusive links.  All of
/// register / lookup / remove are O(1) amortized and allocation-free in
/// steady state.
#[derive(Debug, Default)]
pub struct SendQueue {
    nodes: Slab<Node>,
    by_msg_id: U64Index,
    head: u32,
    tail: u32,
}

impl SendQueue {
    /// Creates an empty send queue.
    pub fn new() -> Self {
        SendQueue {
            nodes: Slab::new(),
            by_msg_id: U64Index::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Registers a pending send, keyed by its message id.
    #[inline]
    pub fn register(&mut self, send: PendingSend) {
        let key = send.msg_id.0;
        debug_assert!(self.by_msg_id.get(key).is_none(), "duplicate msg_id {key}");
        let slot = self.nodes.insert(Node {
            send,
            prev: self.tail,
            next: NIL,
        });
        if self.tail != NIL {
            self.nodes.get_mut(self.tail).unwrap().next = slot;
        } else {
            self.head = slot;
        }
        self.tail = slot;
        self.by_msg_id.insert(key, slot);
    }

    /// Looks up a pending send by message id.
    #[inline]
    pub fn get(&self, msg_id: MessageId) -> Option<&PendingSend> {
        let slot = self.by_msg_id.get(msg_id.0)?;
        Some(&self.nodes.get(slot)?.send)
    }

    /// Mutable lookup by message id.
    #[inline]
    pub fn get_mut(&mut self, msg_id: MessageId) -> Option<&mut PendingSend> {
        let slot = self.by_msg_id.get(msg_id.0)?;
        Some(&mut self.nodes.get_mut(slot)?.send)
    }

    /// Removes a completed send from the queue, returning it.
    #[inline]
    pub fn remove(&mut self, msg_id: MessageId) -> Option<PendingSend> {
        let slot = self.by_msg_id.remove(msg_id.0)?;
        let node = self.nodes.remove(slot).expect("indexed slot must be live");
        if node.prev != NIL {
            self.nodes.get_mut(node.prev).unwrap().next = node.next;
        } else {
            self.head = node.next;
        }
        if node.next != NIL {
            self.nodes.get_mut(node.next).unwrap().prev = node.prev;
        } else {
            self.tail = node.prev;
        }
        Some(node.send)
    }

    /// Number of sends currently registered.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no sends are pending.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over pending sends in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &PendingSend> {
        OrderIter {
            queue: self,
            cursor: self.head,
        }
    }

    /// Number of heap allocations this queue has performed (steady state
    /// must not add any).
    pub fn alloc_events(&self) -> u64 {
        self.nodes.alloc_events() + self.by_msg_id.alloc_events()
    }
}

struct OrderIter<'a> {
    queue: &'a SendQueue,
    cursor: u32,
}

impl<'a> Iterator for OrderIter<'a> {
    type Item = &'a PendingSend;
    fn next(&mut self) -> Option<&'a PendingSend> {
        if self.cursor == NIL {
            return None;
        }
        let node = self
            .queue
            .nodes
            .get(self.cursor)
            .expect("order links intact");
        self.cursor = node.next;
        Some(&node.send)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::btp::BtpPolicy;
    use crate::config::{OptFlags, ProtocolMode};

    fn pending(msg_id: u64, len: usize) -> PendingSend {
        PendingSend {
            op: SendOp::from_raw(msg_id as u32, 0),
            dst: ProcessId::new(1, 0),
            tag: Tag(0),
            msg_id: MessageId(msg_id),
            data: Bytes::from(vec![0u8; len]),
            split: BtpSplit::plan(
                ProtocolMode::PushPull,
                BtpPolicy::INTERNODE_DEFAULT,
                OptFlags::full(),
                len,
            ),
            pull_served: false,
            fully_transmitted: false,
            translated: false,
        }
    }

    #[test]
    fn register_lookup_remove() {
        let mut q = SendQueue::new();
        q.register(pending(1, 4096));
        q.register(pending(2, 100));
        assert_eq!(q.len(), 2);
        assert_eq!(q.get(MessageId(1)).unwrap().len(), 4096);
        assert!(q.get(MessageId(3)).is_none());

        let removed = q.remove(MessageId(1)).unwrap();
        assert_eq!(removed.op, SendOp::from_raw(1, 0));
        assert_eq!(q.len(), 1);
        assert!(q.remove(MessageId(1)).is_none());
    }

    #[test]
    fn iteration_is_in_registration_order() {
        let mut q = SendQueue::new();
        for id in [5u64, 3, 9, 1] {
            q.register(pending(id, 10));
        }
        let ids: Vec<u64> = q.iter().map(|p| p.msg_id.0).collect();
        assert_eq!(ids, vec![5, 3, 9, 1]);
    }

    #[test]
    fn order_survives_interior_removal() {
        let mut q = SendQueue::new();
        for id in [5u64, 3, 9, 1] {
            q.register(pending(id, 10));
        }
        q.remove(MessageId(9)).unwrap();
        q.remove(MessageId(5)).unwrap();
        let ids: Vec<u64> = q.iter().map(|p| p.msg_id.0).collect();
        assert_eq!(ids, vec![3, 1]);
        q.register(pending(7, 10));
        let ids: Vec<u64> = q.iter().map(|p| p.msg_id.0).collect();
        assert_eq!(ids, vec![3, 1, 7]);
    }

    #[test]
    fn get_mut_allows_state_transition() {
        let mut q = SendQueue::new();
        q.register(pending(7, 5000));
        let entry = q.get_mut(MessageId(7)).unwrap();
        assert!(!entry.pull_served);
        entry.pull_served = true;
        assert!(q.get(MessageId(7)).unwrap().pull_served);
    }

    #[test]
    fn empty_message_flags() {
        let p = pending(1, 0);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn steady_register_remove_cycle_does_not_allocate() {
        let mut q = SendQueue::new();
        for id in 0..4u64 {
            q.register(pending(id, 16));
        }
        for id in 0..4u64 {
            q.remove(MessageId(id)).unwrap();
        }
        let allocs = q.alloc_events();
        for id in 4..10_000u64 {
            q.register(pending(id, 16));
            assert!(q.remove(MessageId(id)).is_some());
        }
        assert_eq!(q.alloc_events(), allocs, "steady churn must not allocate");
    }
}
