//! The buffer queue: the ordered index of *unexpected* messages — messages
//! whose pushed data arrived before the matching receive was posted.

use crate::index::{Chain, Slab, SrcTagMap, NIL};
use crate::types::{MessageId, ProcessId, Tag};

/// Key identifying one unexpected message: the sending process plus the
/// sender-chosen message id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UnexpectedKey {
    /// The sending process.
    pub src: ProcessId,
    /// The sender-assigned message id.
    pub msg_id: MessageId,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    key: UnexpectedKey,
    tag: Tag,
    /// Global arrival sequence, used to arbitrate FIFO order across buckets
    /// when a wildcard receive scans for the oldest matching message.
    seq: u64,
    /// Next-younger unexpected message with the same `(src, tag)`, or
    /// [`NIL`].
    next: u32,
}

/// Arrival-ordered index of unexpected messages.
///
/// The payload bytes of unexpected messages are accounted against the
/// [`PushedBuffer`](crate::queues::PushedBuffer) and stored with the
/// per-message assembly state in the engine; this queue only remembers *which*
/// messages are waiting and in what order they arrived, so that a newly
/// posted receive matches the oldest pending message with the right
/// `(source, tag)` — the same non-overtaking rule the receive queue uses.
///
/// Like [`ReceiveQueue`](crate::queues::ReceiveQueue), entries live in a slab
/// threaded into per-`(source, tag)` FIFO chains, making insert/match/remove
/// O(1) amortized (O(chain length) for mid-chain removal, which only happens
/// when a message is dropped) and allocation-free in steady state.
#[derive(Debug, Default)]
pub struct BufferQueue {
    nodes: Slab<Node>,
    buckets: SrcTagMap,
    next_seq: u64,
}

impl BufferQueue {
    /// Creates an empty buffer queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the arrival of an unexpected message.  Duplicate insertions of
    /// the same key are ignored (a message becomes "known" on its first
    /// pushed packet; later fragments do not re-queue it).
    #[inline]
    pub fn insert(&mut self, key: UnexpectedKey, tag: Tag) {
        let src = key.src.as_u64();
        let seq = self.next_seq;
        self.next_seq += 1;
        match self.buckets.get(src, tag.0) {
            Some(chain) => {
                // Duplicate check only walks this message's own (src, tag)
                // chain — the handful of same-source same-tag messages in
                // flight, not every unexpected message.
                let mut cursor = chain.head;
                while cursor != NIL {
                    let node = self.nodes.get(cursor).expect("chain must be intact");
                    if node.key == key {
                        return;
                    }
                    cursor = node.next;
                }
                let slot = self.nodes.insert(Node {
                    key,
                    tag,
                    seq,
                    next: NIL,
                });
                let chain = self
                    .buckets
                    .get_mut(src, tag.0)
                    .expect("bucket disappeared");
                if chain.head == NIL {
                    chain.head = slot;
                    chain.tail = slot;
                } else {
                    let tail = chain.tail;
                    chain.tail = slot;
                    self.nodes
                        .get_mut(tail)
                        .expect("bucket tail must be live")
                        .next = slot;
                }
            }
            None => {
                let slot = self.nodes.insert(Node {
                    key,
                    tag,
                    seq,
                    next: NIL,
                });
                self.buckets.set(
                    src,
                    tag.0,
                    Chain {
                        head: slot,
                        tail: slot,
                    },
                );
            }
        }
    }

    /// Returns (without removing) the oldest unexpected message matching a
    /// posted receive's selector, which may use
    /// [`ANY_SOURCE`](crate::types::ANY_SOURCE) /
    /// [`ANY_TAG`](crate::types::ANY_TAG) wildcards.  The message's concrete
    /// key and tag are returned so the caller can claim it with
    /// [`BufferQueue::remove_with_tag`] once it decides to consume it.
    ///
    /// The exact-selector path is a single O(1) bucket probe; a wildcard
    /// selector scans the (short) set of pending unexpected messages for the
    /// smallest arrival sequence — posting a wildcard receive is not a
    /// per-packet operation, so the scan is off the hot path.
    pub fn peek_unexpected(&self, src: ProcessId, tag: Tag) -> Option<(UnexpectedKey, Tag)> {
        if !src.is_any_source() && !tag.is_any() {
            let chain = self.buckets.get(src.as_u64(), tag.0)?;
            if chain.head == NIL {
                return None;
            }
            let node = self
                .nodes
                .get(chain.head)
                .expect("bucket head must be live");
            return Some((node.key, node.tag));
        }
        let mut best: Option<&Node> = None;
        for (_, node) in self.nodes.iter() {
            let src_ok = src.is_any_source() || node.key.src == src;
            let tag_ok = tag.is_any() || node.tag == tag;
            if src_ok && tag_ok && best.map(|b| node.seq < b.seq).unwrap_or(true) {
                best = Some(node);
            }
        }
        best.map(|node| (node.key, node.tag))
    }

    /// Finds and removes the oldest unexpected message matching `src` and
    /// `tag` (wildcards allowed): a peek-and-claim convenience over
    /// [`BufferQueue::peek_unexpected`] + [`BufferQueue::remove_with_tag`],
    /// so there is exactly one copy of the FIFO-pop logic.  The engine
    /// itself peeks first (it may decide *not* to claim a too-small match).
    #[inline]
    pub fn match_posted(&mut self, src: ProcessId, tag: Tag) -> Option<UnexpectedKey> {
        let (key, msg_tag) = self.peek_unexpected(src, tag)?;
        self.remove_with_tag(key, msg_tag);
        Some(key)
    }

    /// Removes a specific unexpected message whose tag is known (the engine
    /// always knows it from the message state).  O(chain length).
    pub fn remove_with_tag(&mut self, key: UnexpectedKey, tag: Tag) -> bool {
        let src = key.src.as_u64();
        let Some(chain) = self.buckets.get(src, tag.0) else {
            return false;
        };
        let mut prev = NIL;
        let mut cursor = chain.head;
        while cursor != NIL {
            let node = *self.nodes.get(cursor).expect("chain must be intact");
            if node.key == key {
                self.nodes.remove(cursor);
                if prev != NIL {
                    self.nodes.get_mut(prev).unwrap().next = node.next;
                }
                let chain = self.buckets.get_mut(src, tag.0).unwrap();
                if prev == NIL {
                    chain.head = node.next;
                }
                if chain.tail == cursor {
                    chain.tail = prev;
                }
                if chain.head == NIL {
                    chain.tail = NIL;
                }
                return true;
            }
            prev = cursor;
            cursor = node.next;
        }
        false
    }

    /// Removes a specific unexpected message by key alone (e.g. when it is
    /// dropped and its tag is no longer at hand).  O(n); prefer
    /// [`BufferQueue::remove_with_tag`] on hot paths.
    pub fn remove(&mut self, key: UnexpectedKey) -> bool {
        let Some(tag) = self
            .nodes
            .iter()
            .find(|(_, n)| n.key == key)
            .map(|(_, n)| n.tag)
        else {
            return false;
        };
        self.remove_with_tag(key, tag)
    }

    /// `true` if the message is currently queued as unexpected.
    pub fn contains(&self, key: UnexpectedKey) -> bool {
        self.nodes.iter().any(|(_, n)| n.key == key)
    }

    /// Number of unexpected messages queued.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no unexpected messages are queued.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of heap allocations this queue has performed (steady state
    /// must not add any).
    pub fn alloc_events(&self) -> u64 {
        self.nodes.alloc_events() + self.buckets.alloc_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(src: ProcessId, id: u64) -> UnexpectedKey {
        UnexpectedKey {
            src,
            msg_id: MessageId(id),
        }
    }

    #[test]
    fn insert_and_match_in_arrival_order() {
        let mut q = BufferQueue::new();
        let a = ProcessId::new(0, 0);
        q.insert(key(a, 1), Tag(5));
        q.insert(key(a, 2), Tag(5));
        assert_eq!(q.match_posted(a, Tag(5)).unwrap().msg_id, MessageId(1));
        assert_eq!(q.match_posted(a, Tag(5)).unwrap().msg_id, MessageId(2));
        assert!(q.match_posted(a, Tag(5)).is_none());
    }

    #[test]
    fn duplicate_insert_ignored() {
        let mut q = BufferQueue::new();
        let a = ProcessId::new(0, 0);
        q.insert(key(a, 1), Tag(5));
        q.insert(key(a, 1), Tag(5));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn match_respects_source_and_tag() {
        let mut q = BufferQueue::new();
        let a = ProcessId::new(0, 0);
        let b = ProcessId::new(1, 0);
        q.insert(key(a, 1), Tag(5));
        q.insert(key(b, 2), Tag(5));
        q.insert(key(a, 3), Tag(6));
        assert!(q.match_posted(b, Tag(6)).is_none());
        assert_eq!(q.match_posted(b, Tag(5)).unwrap().msg_id, MessageId(2));
        assert_eq!(q.match_posted(a, Tag(6)).unwrap().msg_id, MessageId(3));
    }

    #[test]
    fn remove_and_contains() {
        let mut q = BufferQueue::new();
        let a = ProcessId::new(0, 0);
        q.insert(key(a, 1), Tag(5));
        assert!(q.contains(key(a, 1)));
        assert!(q.remove(key(a, 1)));
        assert!(!q.remove(key(a, 1)));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_unexpected_honours_wildcards_in_arrival_order() {
        use crate::types::{ANY_SOURCE, ANY_TAG};
        let mut q = BufferQueue::new();
        let a = ProcessId::new(0, 0);
        let b = ProcessId::new(1, 0);
        q.insert(key(b, 1), Tag(5));
        q.insert(key(a, 2), Tag(6));
        q.insert(key(a, 3), Tag(5));
        // Exact peek: oldest in its own bucket.
        assert_eq!(q.peek_unexpected(a, Tag(5)).unwrap().0.msg_id, MessageId(3));
        // Any-source peek: oldest with the tag across sources.
        assert_eq!(
            q.peek_unexpected(ANY_SOURCE, Tag(5)).unwrap().0.msg_id,
            MessageId(1)
        );
        // Any-tag peek: oldest from the source.
        assert_eq!(q.peek_unexpected(a, ANY_TAG).unwrap().0, key(a, 2));
        // Fully wild: global oldest, with its concrete tag reported.
        let (k, tag) = q.peek_unexpected(ANY_SOURCE, ANY_TAG).unwrap();
        assert_eq!(k, key(b, 1));
        assert_eq!(tag, Tag(5));
        // Peek does not remove.
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn remove_with_tag_unlinks_any_chain_position() {
        let mut q = BufferQueue::new();
        let a = ProcessId::new(0, 0);
        for id in 1..=4u64 {
            q.insert(key(a, id), Tag(9));
        }
        assert!(q.remove_with_tag(key(a, 2), Tag(9)), "middle");
        assert!(q.remove_with_tag(key(a, 4), Tag(9)), "tail");
        assert!(!q.remove_with_tag(key(a, 2), Tag(9)), "already gone");
        assert_eq!(q.match_posted(a, Tag(9)).unwrap().msg_id, MessageId(1));
        assert_eq!(q.match_posted(a, Tag(9)).unwrap().msg_id, MessageId(3));
        assert!(q.match_posted(a, Tag(9)).is_none());
        // Bucket is reusable after a full drain.
        q.insert(key(a, 5), Tag(9));
        assert_eq!(q.match_posted(a, Tag(9)).unwrap().msg_id, MessageId(5));
    }
}
