//! The buffer queue: the ordered index of *unexpected* messages — messages
//! whose pushed data arrived before the matching receive was posted.

// ppmsg-lint: deny(hot_path_alloc) — steady-state engine path; pooled buffers only.

use crate::index::{Chain, Slab, SrcTagMap, NIL};
use crate::types::{MessageId, ProcessId, Tag};

/// Key identifying one unexpected message: the sending process plus the
/// sender-chosen message id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UnexpectedKey {
    /// The sending process.
    pub src: ProcessId,
    /// The sender-assigned message id.
    pub msg_id: MessageId,
}

/// Intrusive doubly-linked list hooks for one wildcard dimension.
#[derive(Debug, Clone, Copy)]
struct Links {
    prev: u32,
    next: u32,
}

impl Links {
    const UNLINKED: Links = Links {
        prev: NIL,
        next: NIL,
    };
}

/// The three arrival-ordered wildcard lists a node can be threaded into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dim {
    /// All messages from one source (serves `(src, ANY_TAG)` selectors);
    /// excludes reserved-tag messages, which `ANY_TAG` never matches.
    BySrc,
    /// All messages with one concrete tag (serves `(ANY_SOURCE, tag)`
    /// selectors); includes reserved tags — naming a tag is always allowed.
    ByTag,
    /// Every non-reserved message (serves `(ANY_SOURCE, ANY_TAG)`).
    All,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    key: UnexpectedKey,
    tag: Tag,
    /// Next-younger unexpected message with the same `(src, tag)`, or
    /// [`NIL`] — the exact-match FIFO chain, also used for duplicate
    /// detection.
    next: u32,
    by_src: Links,
    by_tag: Links,
    all: Links,
}

/// Arrival-ordered index of unexpected messages.
///
/// The payload bytes of unexpected messages are accounted against the
/// [`PushedBuffer`](crate::queues::PushedBuffer) and stored with the
/// per-message assembly state in the engine; this queue only remembers *which*
/// messages are waiting and in what order they arrived, so that a newly
/// posted receive matches the oldest pending message with the right
/// `(source, tag)` — the same non-overtaking rule the receive queue uses.
///
/// Like [`ReceiveQueue`](crate::queues::ReceiveQueue), entries live in a slab
/// threaded into per-`(source, tag)` FIFO chains, making insert/match/remove
/// O(1) amortized and allocation-free in steady state.  In addition, every
/// node is threaded into arrival-ordered doubly-linked lists per *source*,
/// per *tag*, and globally, so that a **wildcard** selector peeks its answer
/// off one list head in O(1) — the PR-2 linear scan (~2.3 µs at a 1k
/// backlog, ~9 µs at 4k) is gone.  Reserved (collective-space) tags are kept
/// out of the `ANY_TAG`-serving lists entirely: a wildcard receive can never
/// observe collective traffic.
#[derive(Debug, Default)]
pub struct BufferQueue {
    nodes: Slab<Node>,
    buckets: SrcTagMap,
    /// Arrival-ordered list heads per source (key `(src, 0)`), holding only
    /// non-reserved-tag nodes.
    src_lists: SrcTagMap,
    /// Arrival-ordered list heads per concrete tag (key `(0, tag)`).
    tag_lists: SrcTagMap,
    /// Arrival-ordered list over every non-reserved-tag node.
    all_list: Chain,
}

impl BufferQueue {
    /// Creates an empty buffer queue.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn links(node: &Node, dim: Dim) -> Links {
        match dim {
            Dim::BySrc => node.by_src,
            Dim::ByTag => node.by_tag,
            Dim::All => node.all,
        }
    }

    #[inline]
    fn links_mut(node: &mut Node, dim: Dim) -> &mut Links {
        match dim {
            Dim::BySrc => &mut node.by_src,
            Dim::ByTag => &mut node.by_tag,
            Dim::All => &mut node.all,
        }
    }

    /// Appends `slot` (already in the slab, hooks [`Links::UNLINKED`]) to
    /// the tail of the arrival list whose head/tail record is `chain`.
    /// Takes the slab and the chain as **separate borrows** so the caller
    /// pays exactly one map probe ([`SrcTagMap::ensure`]) per dimension.
    fn list_append(nodes: &mut Slab<Node>, chain: &mut Chain, slot: u32, dim: Dim) {
        let tail = chain.tail;
        if tail == NIL {
            chain.head = slot;
        } else {
            Self::links_mut(nodes.get_mut(tail).expect("live list tail"), dim).next = slot;
            Self::links_mut(nodes.get_mut(slot).expect("live node"), dim).prev = tail;
        }
        chain.tail = slot;
    }

    /// Unlinks `slot` from the arrival list whose head/tail record is
    /// `chain`, in O(1) via the stored prev/next hooks (same single-probe
    /// split-borrow pattern as [`BufferQueue::list_append`]).
    fn list_unlink(nodes: &mut Slab<Node>, chain: &mut Chain, slot: u32, dim: Dim) {
        let links = Self::links(nodes.get(slot).expect("live node"), dim);
        if links.prev != NIL {
            Self::links_mut(nodes.get_mut(links.prev).expect("live prev"), dim).next = links.next;
        }
        if links.next != NIL {
            Self::links_mut(nodes.get_mut(links.next).expect("live next"), dim).prev = links.prev;
        }
        if chain.head == slot {
            chain.head = links.next;
        }
        if chain.tail == slot {
            chain.tail = links.prev;
        }
    }

    /// Records the arrival of an unexpected message.  Duplicate insertions of
    /// the same key are ignored (a message becomes "known" on its first
    /// pushed packet; later fragments do not re-queue it).
    #[inline]
    pub fn insert(&mut self, key: UnexpectedKey, tag: Tag) {
        let src = key.src.as_u64();
        match self.buckets.get(src, tag.0) {
            Some(chain) => {
                // Duplicate check only walks this message's own (src, tag)
                // chain — the handful of same-source same-tag messages in
                // flight, not every unexpected message.
                let mut cursor = chain.head;
                while cursor != NIL {
                    let node = self.nodes.get(cursor).expect("chain must be intact");
                    if node.key == key {
                        return;
                    }
                    cursor = node.next;
                }
                let slot = self.insert_node(key, tag);
                let chain = self
                    .buckets
                    .get_mut(src, tag.0)
                    .expect("bucket disappeared");
                if chain.head == NIL {
                    chain.head = slot;
                    chain.tail = slot;
                } else {
                    let tail = chain.tail;
                    chain.tail = slot;
                    self.nodes
                        .get_mut(tail)
                        .expect("bucket tail must be live")
                        .next = slot;
                }
            }
            None => {
                let slot = self.insert_node(key, tag);
                self.buckets.set(
                    src,
                    tag.0,
                    Chain {
                        head: slot,
                        tail: slot,
                    },
                );
            }
        }
    }

    /// Creates the slab node and threads it onto the wildcard lists it
    /// belongs to (reserved tags stay off the `ANY_TAG`-serving lists).
    fn insert_node(&mut self, key: UnexpectedKey, tag: Tag) -> u32 {
        let src = key.src.as_u64();
        let slot = self.nodes.insert(Node {
            key,
            tag,
            next: NIL,
            by_src: Links::UNLINKED,
            by_tag: Links::UNLINKED,
            all: Links::UNLINKED,
        });
        Self::list_append(
            &mut self.nodes,
            self.tag_lists.ensure(0, tag.0),
            slot,
            Dim::ByTag,
        );
        if !tag.is_reserved() {
            Self::list_append(
                &mut self.nodes,
                self.src_lists.ensure(src, 0),
                slot,
                Dim::BySrc,
            );
            Self::list_append(&mut self.nodes, &mut self.all_list, slot, Dim::All);
        }
        slot
    }

    /// Returns (without removing) the oldest unexpected message matching a
    /// posted receive's selector, which may use
    /// [`ANY_SOURCE`](crate::types::ANY_SOURCE) /
    /// [`ANY_TAG`](crate::types::ANY_TAG) wildcards.  The message's concrete
    /// key and tag are returned so the caller can claim it with
    /// [`BufferQueue::remove_with_tag`] once it decides to consume it.
    ///
    /// Every selector shape is a single O(1) probe: the exact pair reads its
    /// bucket head, and each wildcard shape reads the head of its
    /// arrival-ordered list (per source, per tag, or global).  An `ANY_TAG`
    /// selector never observes reserved (collective-space) tags.
    pub fn peek_unexpected(&self, src: ProcessId, tag: Tag) -> Option<(UnexpectedKey, Tag)> {
        let head = match (src.is_any_source(), tag.is_any()) {
            (false, false) => self.buckets.get(src.as_u64(), tag.0)?.head,
            (false, true) => self.src_lists.get(src.as_u64(), 0)?.head,
            (true, false) => self.tag_lists.get(0, tag.0)?.head,
            (true, true) => self.all_list.head,
        };
        if head == NIL {
            return None;
        }
        let node = self.nodes.get(head).expect("list head must be live");
        Some((node.key, node.tag))
    }

    /// Finds and removes the oldest unexpected message matching `src` and
    /// `tag` (wildcards allowed): a peek-and-claim convenience over
    /// [`BufferQueue::peek_unexpected`] + [`BufferQueue::remove_with_tag`],
    /// so there is exactly one copy of the FIFO-pop logic.  The engine
    /// itself peeks first (it may decide *not* to claim a too-small match).
    #[inline]
    pub fn match_posted(&mut self, src: ProcessId, tag: Tag) -> Option<UnexpectedKey> {
        let (key, msg_tag) = self.peek_unexpected(src, tag)?;
        self.remove_with_tag(key, msg_tag);
        Some(key)
    }

    /// Removes a specific unexpected message whose tag is known (the engine
    /// always knows it from the message state).  O(chain length) on the
    /// exact-match chain, O(1) on the wildcard lists.
    pub fn remove_with_tag(&mut self, key: UnexpectedKey, tag: Tag) -> bool {
        let src = key.src.as_u64();
        let Some(chain) = self.buckets.get(src, tag.0) else {
            return false;
        };
        let mut prev = NIL;
        let mut cursor = chain.head;
        while cursor != NIL {
            let node = *self.nodes.get(cursor).expect("chain must be intact");
            if node.key == key {
                Self::list_unlink(
                    &mut self.nodes,
                    self.tag_lists.ensure(0, tag.0),
                    cursor,
                    Dim::ByTag,
                );
                if !tag.is_reserved() {
                    Self::list_unlink(
                        &mut self.nodes,
                        self.src_lists.ensure(src, 0),
                        cursor,
                        Dim::BySrc,
                    );
                    Self::list_unlink(&mut self.nodes, &mut self.all_list, cursor, Dim::All);
                }
                self.nodes.remove(cursor);
                if prev != NIL {
                    self.nodes.get_mut(prev).unwrap().next = node.next;
                }
                let chain = self.buckets.get_mut(src, tag.0).unwrap();
                if prev == NIL {
                    chain.head = node.next;
                }
                if chain.tail == cursor {
                    chain.tail = prev;
                }
                if chain.head == NIL {
                    chain.tail = NIL;
                }
                return true;
            }
            prev = cursor;
            cursor = node.next;
        }
        false
    }

    /// Removes a specific unexpected message by key alone (e.g. when it is
    /// dropped and its tag is no longer at hand).  O(n); prefer
    /// [`BufferQueue::remove_with_tag`] on hot paths.
    pub fn remove(&mut self, key: UnexpectedKey) -> bool {
        let Some(tag) = self
            .nodes
            .iter()
            .find(|(_, n)| n.key == key)
            .map(|(_, n)| n.tag)
        else {
            return false;
        };
        self.remove_with_tag(key, tag)
    }

    /// `true` if the message is currently queued as unexpected.
    pub fn contains(&self, key: UnexpectedKey) -> bool {
        self.nodes.iter().any(|(_, n)| n.key == key)
    }

    /// Number of unexpected messages queued.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no unexpected messages are queued.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of heap allocations this queue has performed (steady state
    /// must not add any).
    pub fn alloc_events(&self) -> u64 {
        self.nodes.alloc_events()
            + self.buckets.alloc_events()
            + self.src_lists.alloc_events()
            + self.tag_lists.alloc_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ANY_SOURCE, ANY_TAG, COLLECTIVE_TAG_BIT};

    fn key(src: ProcessId, id: u64) -> UnexpectedKey {
        UnexpectedKey {
            src,
            msg_id: MessageId(id),
        }
    }

    #[test]
    fn insert_and_match_in_arrival_order() {
        let mut q = BufferQueue::new();
        let a = ProcessId::new(0, 0);
        q.insert(key(a, 1), Tag(5));
        q.insert(key(a, 2), Tag(5));
        assert_eq!(q.match_posted(a, Tag(5)).unwrap().msg_id, MessageId(1));
        assert_eq!(q.match_posted(a, Tag(5)).unwrap().msg_id, MessageId(2));
        assert!(q.match_posted(a, Tag(5)).is_none());
    }

    #[test]
    fn duplicate_insert_ignored() {
        let mut q = BufferQueue::new();
        let a = ProcessId::new(0, 0);
        q.insert(key(a, 1), Tag(5));
        q.insert(key(a, 1), Tag(5));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn match_respects_source_and_tag() {
        let mut q = BufferQueue::new();
        let a = ProcessId::new(0, 0);
        let b = ProcessId::new(1, 0);
        q.insert(key(a, 1), Tag(5));
        q.insert(key(b, 2), Tag(5));
        q.insert(key(a, 3), Tag(6));
        assert!(q.match_posted(b, Tag(6)).is_none());
        assert_eq!(q.match_posted(b, Tag(5)).unwrap().msg_id, MessageId(2));
        assert_eq!(q.match_posted(a, Tag(6)).unwrap().msg_id, MessageId(3));
    }

    #[test]
    fn remove_and_contains() {
        let mut q = BufferQueue::new();
        let a = ProcessId::new(0, 0);
        q.insert(key(a, 1), Tag(5));
        assert!(q.contains(key(a, 1)));
        assert!(q.remove(key(a, 1)));
        assert!(!q.remove(key(a, 1)));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_unexpected_honours_wildcards_in_arrival_order() {
        let mut q = BufferQueue::new();
        let a = ProcessId::new(0, 0);
        let b = ProcessId::new(1, 0);
        q.insert(key(b, 1), Tag(5));
        q.insert(key(a, 2), Tag(6));
        q.insert(key(a, 3), Tag(5));
        // Exact peek: oldest in its own bucket.
        assert_eq!(q.peek_unexpected(a, Tag(5)).unwrap().0.msg_id, MessageId(3));
        // Any-source peek: oldest with the tag across sources.
        assert_eq!(
            q.peek_unexpected(ANY_SOURCE, Tag(5)).unwrap().0.msg_id,
            MessageId(1)
        );
        // Any-tag peek: oldest from the source.
        assert_eq!(q.peek_unexpected(a, ANY_TAG).unwrap().0, key(a, 2));
        // Fully wild: global oldest, with its concrete tag reported.
        let (k, tag) = q.peek_unexpected(ANY_SOURCE, ANY_TAG).unwrap();
        assert_eq!(k, key(b, 1));
        assert_eq!(tag, Tag(5));
        // Peek does not remove.
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn wildcard_lists_survive_interior_removal() {
        let mut q = BufferQueue::new();
        let a = ProcessId::new(0, 0);
        let b = ProcessId::new(1, 0);
        q.insert(key(a, 1), Tag(5));
        q.insert(key(b, 2), Tag(5));
        q.insert(key(a, 3), Tag(6));
        q.insert(key(b, 4), Tag(6));
        // Remove the middle of every list (b/2 sits mid-all, mid-tag-5).
        assert!(q.remove_with_tag(key(b, 2), Tag(5)));
        assert_eq!(q.peek_unexpected(ANY_SOURCE, ANY_TAG).unwrap().0, key(a, 1));
        assert_eq!(q.peek_unexpected(ANY_SOURCE, Tag(6)).unwrap().0, key(a, 3));
        assert_eq!(q.peek_unexpected(b, ANY_TAG).unwrap().0, key(b, 4));
        // Remove a list head, then a tail.
        assert!(q.remove_with_tag(key(a, 1), Tag(5)));
        assert!(q.remove_with_tag(key(b, 4), Tag(6)));
        assert_eq!(q.peek_unexpected(ANY_SOURCE, ANY_TAG).unwrap().0, key(a, 3));
        assert_eq!(q.peek_unexpected(a, ANY_TAG).unwrap().0, key(a, 3));
        assert!(q.peek_unexpected(b, ANY_TAG).is_none());
        // Lists are reusable after a full drain.
        assert!(q.remove_with_tag(key(a, 3), Tag(6)));
        assert!(q.peek_unexpected(ANY_SOURCE, ANY_TAG).is_none());
        q.insert(key(b, 5), Tag(5));
        assert_eq!(q.peek_unexpected(ANY_SOURCE, ANY_TAG).unwrap().0, key(b, 5));
    }

    #[test]
    fn reserved_tags_hidden_from_any_tag_peeks() {
        let mut q = BufferQueue::new();
        let a = ProcessId::new(0, 0);
        let coll = Tag(COLLECTIVE_TAG_BIT | 9);
        q.insert(key(a, 1), coll);
        // Invisible to every ANY_TAG-shaped selector...
        assert!(q.peek_unexpected(a, ANY_TAG).is_none());
        assert!(q.peek_unexpected(ANY_SOURCE, ANY_TAG).is_none());
        // ...but fully matchable by naming the tag.
        assert_eq!(q.peek_unexpected(a, coll).unwrap().0, key(a, 1));
        assert_eq!(q.peek_unexpected(ANY_SOURCE, coll).unwrap().0, key(a, 1));
        assert_eq!(q.match_posted(ANY_SOURCE, coll).unwrap(), key(a, 1));
        assert!(q.is_empty());
    }

    #[test]
    fn wildcard_peek_is_allocation_free_in_steady_state() {
        let mut q = BufferQueue::new();
        let a = ProcessId::new(0, 0);
        for i in 0..64 {
            q.insert(key(a, i), Tag((i % 4) as u32));
        }
        for i in 0..64 {
            assert!(q.remove(key(a, i)));
        }
        let allocs = q.alloc_events();
        for round in 0..10_000u64 {
            q.insert(key(a, round), Tag((round % 4) as u32));
            assert!(q.peek_unexpected(ANY_SOURCE, ANY_TAG).is_some());
            assert_eq!(q.match_posted(a, ANY_TAG).unwrap().msg_id.0, round);
        }
        assert_eq!(q.alloc_events(), allocs, "steady churn must not allocate");
    }

    #[test]
    fn remove_with_tag_unlinks_any_chain_position() {
        let mut q = BufferQueue::new();
        let a = ProcessId::new(0, 0);
        for id in 1..=4u64 {
            q.insert(key(a, id), Tag(9));
        }
        assert!(q.remove_with_tag(key(a, 2), Tag(9)), "middle");
        assert!(q.remove_with_tag(key(a, 4), Tag(9)), "tail");
        assert!(!q.remove_with_tag(key(a, 2), Tag(9)), "already gone");
        assert_eq!(q.match_posted(a, Tag(9)).unwrap().msg_id, MessageId(1));
        assert_eq!(q.match_posted(a, Tag(9)).unwrap().msg_id, MessageId(3));
        assert!(q.match_posted(a, Tag(9)).is_none());
        // Bucket is reusable after a full drain.
        q.insert(key(a, 5), Tag(9));
        assert_eq!(q.match_posted(a, Tag(9)).unwrap().msg_id, MessageId(5));
    }
}
