//! The buffer queue: the ordered index of *unexpected* messages — messages
//! whose pushed data arrived before the matching receive was posted.

use crate::types::{MessageId, ProcessId, Tag};

/// Key identifying one unexpected message: the sending process plus the
/// sender-chosen message id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UnexpectedKey {
    /// The sending process.
    pub src: ProcessId,
    /// The sender-assigned message id.
    pub msg_id: MessageId,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    key: UnexpectedKey,
    tag: Tag,
}

/// Arrival-ordered index of unexpected messages.
///
/// The payload bytes of unexpected messages are accounted against the
/// [`PushedBuffer`](crate::queues::PushedBuffer) and stored with the
/// per-message assembly state in the engine; this queue only remembers *which*
/// messages are waiting and in what order they arrived, so that a newly
/// posted receive matches the oldest pending message with the right
/// `(source, tag)` — the same non-overtaking rule the receive queue uses.
#[derive(Debug, Default)]
pub struct BufferQueue {
    entries: Vec<Entry>,
}

impl BufferQueue {
    /// Creates an empty buffer queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the arrival of an unexpected message.  Duplicate insertions of
    /// the same key are ignored (a message becomes "known" on its first
    /// pushed packet; later fragments do not re-queue it).
    pub fn insert(&mut self, key: UnexpectedKey, tag: Tag) {
        if !self.entries.iter().any(|e| e.key == key) {
            self.entries.push(Entry { key, tag });
        }
    }

    /// Finds and removes the oldest unexpected message from `src` with `tag`.
    pub fn match_posted(&mut self, src: ProcessId, tag: Tag) -> Option<UnexpectedKey> {
        let idx = self
            .entries
            .iter()
            .position(|e| e.key.src == src && e.tag == tag)?;
        Some(self.entries.remove(idx).key)
    }

    /// Removes a specific unexpected message (e.g. when it is dropped).
    pub fn remove(&mut self, key: UnexpectedKey) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.key != key);
        before != self.entries.len()
    }

    /// `true` if the message is currently queued as unexpected.
    pub fn contains(&self, key: UnexpectedKey) -> bool {
        self.entries.iter().any(|e| e.key == key)
    }

    /// Number of unexpected messages queued.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no unexpected messages are queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(src: ProcessId, id: u64) -> UnexpectedKey {
        UnexpectedKey {
            src,
            msg_id: MessageId(id),
        }
    }

    #[test]
    fn insert_and_match_in_arrival_order() {
        let mut q = BufferQueue::new();
        let a = ProcessId::new(0, 0);
        q.insert(key(a, 1), Tag(5));
        q.insert(key(a, 2), Tag(5));
        assert_eq!(q.match_posted(a, Tag(5)).unwrap().msg_id, MessageId(1));
        assert_eq!(q.match_posted(a, Tag(5)).unwrap().msg_id, MessageId(2));
        assert!(q.match_posted(a, Tag(5)).is_none());
    }

    #[test]
    fn duplicate_insert_ignored() {
        let mut q = BufferQueue::new();
        let a = ProcessId::new(0, 0);
        q.insert(key(a, 1), Tag(5));
        q.insert(key(a, 1), Tag(5));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn match_respects_source_and_tag() {
        let mut q = BufferQueue::new();
        let a = ProcessId::new(0, 0);
        let b = ProcessId::new(1, 0);
        q.insert(key(a, 1), Tag(5));
        q.insert(key(b, 2), Tag(5));
        q.insert(key(a, 3), Tag(6));
        assert!(q.match_posted(b, Tag(6)).is_none());
        assert_eq!(q.match_posted(b, Tag(5)).unwrap().msg_id, MessageId(2));
        assert_eq!(q.match_posted(a, Tag(6)).unwrap().msg_id, MessageId(3));
    }

    #[test]
    fn remove_and_contains() {
        let mut q = BufferQueue::new();
        let a = ProcessId::new(0, 0);
        q.insert(key(a, 1), Tag(5));
        assert!(q.contains(key(a, 1)));
        assert!(q.remove(key(a, 1)));
        assert!(!q.remove(key(a, 1)));
        assert!(q.is_empty());
    }
}
