//! The kernel-shared data structures of Fig. 1.
//!
//! Each endpoint (process) shares three structures with the "kernel" side of
//! its backend:
//!
//! * the **send queue** ([`SendQueue`]) registering sends whose remainder is
//!   waiting to be pulled,
//! * the **receive queue** ([`ReceiveQueue`]) registering posted receive
//!   operations so arriving data can be copied straight to its destination,
//! * the **buffer queue and pushed buffer** ([`BufferQueue`],
//!   [`PushedBuffer`]) holding pushed data whose destination is not yet
//!   known.
//!
//! [`Assembly`] is the helper that reassembles a message from its pushed and
//! pulled fragments.

mod assembly;
mod buffer_queue;
mod pushed_buffer;
mod recv_queue;
mod send_queue;

pub(crate) use assembly::merge_interval;
pub use assembly::Assembly;
pub use buffer_queue::{BufferQueue, UnexpectedKey};
pub use pushed_buffer::{PushedBuffer, PushedBufferStats};
pub use recv_queue::{PostedReceive, ReceiveQueue};
pub use send_queue::{chunk_segments, PendingSend, SendPayload, SendQueue};
