//! The receive queue: posted receive operations waiting to be matched with
//! an incoming message.

// ppmsg-lint: deny(hot_path_alloc) — steady-state engine path; pooled buffers only.

use crate::index::{Chain, Slab, SrcTagMap, NIL};
use crate::ops::{RecvOp, TruncationPolicy};
use crate::types::{ProcessId, Tag, ANY_SOURCE, ANY_TAG};

/// One posted (not yet matched) receive operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostedReceive {
    /// Operation handle returned to the application.
    pub op: RecvOp,
    /// The source process this receive matches (may be [`ANY_SOURCE`]).
    pub src: ProcessId,
    /// The tag this receive matches (may be [`ANY_TAG`]).
    pub tag: Tag,
    /// Capacity of the destination buffer in bytes.
    pub capacity: usize,
    /// `true` once the destination zero buffer has been built (address
    /// translation of the destination buffer performed).
    pub translated: bool,
    /// What to do when the arriving message exceeds `capacity`.
    pub policy: TruncationPolicy,
}

impl PostedReceive {
    /// `true` when this receive uses a wildcard source or tag selector.
    #[inline]
    fn is_wildcard(&self) -> bool {
        self.src.is_any_source() || self.tag.is_any()
    }
}

#[derive(Debug)]
struct Node {
    recv: PostedReceive,
    /// Global posting sequence, used to arbitrate FIFO order *across*
    /// buckets when wildcard receives are outstanding.
    seq: u64,
    /// Next-younger receive with the same selector, or [`NIL`].
    next: u32,
}

/// The receive queue shared between a process and its kernel side.
///
/// Receives are matched to incoming messages by `(source, tag)` in posting
/// order, which mirrors MPI's non-overtaking rule for a single communicator.
/// [`ANY_SOURCE`] / [`ANY_TAG`] selectors participate in the same order: an
/// incoming message matches the *oldest* posted receive whose selector
/// accepts it, exactly as a linear scan over the posting order would.
///
/// Internally the queue is a slab of posted receives threaded into per
/// selector FIFO chains indexed by an open-addressed bucket map (the
/// wildcard selectors hash like any other key).  While no wildcard receive
/// is outstanding, `register`, `match_incoming` and `peek_match` are O(1)
/// amortized exactly as before — the exact-match fast path gives nothing up.
/// With wildcards outstanding a match probes at most four buckets (exact,
/// any-source, any-tag, any-any) and pops the head with the smallest posting
/// sequence: still O(1), just with a larger constant.
#[derive(Debug, Default)]
pub struct ReceiveQueue {
    nodes: Slab<Node>,
    buckets: SrcTagMap,
    next_seq: u64,
    /// Number of live wildcard receives; the exact-match fast path is taken
    /// whenever this is zero.
    wildcard_live: usize,
}

impl ReceiveQueue {
    /// Creates an empty receive queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a posted receive (arrow 1b in Fig. 1, receive side).
    ///
    /// Buckets persist after their chain drains (a selector that matched
    /// once will almost certainly match again), so the steady-state cycle is
    /// one probe to append and one probe to pop — no bucket creation or
    /// backward-shift deletion per message.
    #[inline]
    pub fn register(&mut self, recv: PostedReceive) {
        let src = recv.src.as_u64();
        let tag = recv.tag.0;
        if recv.is_wildcard() {
            self.wildcard_live += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.nodes.insert(Node {
            recv,
            seq,
            next: NIL,
        });
        match self.buckets.get_mut(src, tag) {
            Some(chain) if chain.head != NIL => {
                let tail = chain.tail;
                chain.tail = slot;
                self.nodes
                    .get_mut(tail)
                    .expect("bucket tail must be live")
                    .next = slot;
            }
            Some(chain) => {
                chain.head = slot;
                chain.tail = slot;
            }
            None => self.buckets.set(
                src,
                tag,
                Chain {
                    head: slot,
                    tail: slot,
                },
            ),
        }
    }

    /// Pops the head of the `(src key, tag key)` bucket, if any.
    #[inline]
    fn pop_head(&mut self, src: u64, tag: u32) -> Option<PostedReceive> {
        let chain = self.buckets.get_mut(src, tag)?;
        let head = chain.head;
        if head == NIL {
            return None; // drained bucket kept alive for reuse
        }
        let node = self.nodes.remove(head).expect("bucket head must be live");
        if node.next == NIL {
            chain.head = NIL;
            chain.tail = NIL;
        } else {
            chain.head = node.next;
        }
        if node.recv.is_wildcard() {
            self.wildcard_live -= 1;
        }
        Some(node.recv)
    }

    /// Head sequence of the `(src key, tag key)` bucket, if it has one.
    #[inline]
    fn head_seq(&self, src: u64, tag: u32) -> Option<u64> {
        let chain = self.buckets.get(src, tag)?;
        if chain.head == NIL {
            return None;
        }
        Some(self.nodes.get(chain.head).expect("live head").seq)
    }

    /// The bucket keys an incoming `(src, tag)` message can match: the exact
    /// pair, plus the wildcard selectors that accept it.  A **reserved**
    /// (collective-space) tag is never matched by an `ANY_TAG` selector, so
    /// only the first two keys apply to it.
    #[inline]
    fn candidate_keys(src: ProcessId, tag: Tag) -> ([(u64, u32); 4], usize) {
        let keys = [
            (src.as_u64(), tag.0),
            (ANY_SOURCE.as_u64(), tag.0),
            (src.as_u64(), ANY_TAG.0),
            (ANY_SOURCE.as_u64(), ANY_TAG.0),
        ];
        let candidates = if tag.is_reserved() { 2 } else { 4 };
        (keys, candidates)
    }

    /// Finds and removes the oldest posted receive matching an incoming
    /// message from `src` with `tag` (both concrete), honouring wildcard
    /// selectors in global posting order.
    #[inline]
    pub fn match_incoming(&mut self, src: ProcessId, tag: Tag) -> Option<PostedReceive> {
        if self.wildcard_live == 0 {
            // Exact fast path: one bucket probe, as in the PR-1 design.
            return self.pop_head(src.as_u64(), tag.0);
        }
        let (keys, candidates) = Self::candidate_keys(src, tag);
        let mut best: Option<(u64, usize)> = None;
        for (i, &(s, t)) in keys.iter().take(candidates).enumerate() {
            if let Some(seq) = self.head_seq(s, t) {
                if best.map(|(b, _)| seq < b).unwrap_or(true) {
                    best = Some((seq, i));
                }
            }
        }
        let (_, i) = best?;
        self.pop_head(keys[i].0, keys[i].1)
    }

    /// Returns (without removing) the oldest posted receive that would match
    /// an incoming message from `src` with `tag`.
    #[inline]
    pub fn peek_match(&self, src: ProcessId, tag: Tag) -> Option<&PostedReceive> {
        let mut best: Option<(u64, u32)> = None;
        let (keys, candidates) = Self::candidate_keys(src, tag);
        let probes = if self.wildcard_live == 0 {
            1
        } else {
            candidates
        };
        for &(s, t) in keys.iter().take(probes) {
            if let Some(chain) = self.buckets.get(s, t) {
                if chain.head != NIL {
                    let seq = self.nodes.get(chain.head).expect("live head").seq;
                    if best.map(|(b, _)| seq < b).unwrap_or(true) {
                        best = Some((seq, chain.head));
                    }
                }
            }
        }
        best.map(|(_, slot)| &self.nodes.get(slot).expect("live head").recv)
    }

    /// Cancels a posted receive by operation handle, returning it if it was
    /// still pending.
    ///
    /// Cancellation is a cold path (it never runs per packet), so it scans
    /// the slab for the handle and then unlinks the node from its chain.
    pub fn cancel(&mut self, op: RecvOp) -> Option<PostedReceive> {
        let slot = self
            .nodes
            .iter()
            .find(|(_, n)| n.recv.op == op)
            .map(|(slot, _)| slot)?;
        let (src, tag) = {
            let n = self.nodes.get(slot).unwrap();
            (n.recv.src.as_u64(), n.recv.tag.0)
        };
        let chain = self.buckets.get(src, tag).expect("node without bucket");
        let node = if chain.head == slot {
            let node = self.nodes.remove(slot).unwrap();
            let chain = self.buckets.get_mut(src, tag).unwrap();
            if node.next == NIL {
                chain.head = NIL;
                chain.tail = NIL;
            } else {
                chain.head = node.next;
            }
            node
        } else {
            // Walk the chain to find the predecessor.
            let mut prev = chain.head;
            loop {
                let next = self.nodes.get(prev).expect("chain must be intact").next;
                if next == slot {
                    break;
                }
                prev = next;
            }
            let node = self.nodes.remove(slot).unwrap();
            self.nodes.get_mut(prev).unwrap().next = node.next;
            if chain.tail == slot {
                self.buckets.get_mut(src, tag).unwrap().tail = prev;
            }
            node
        };
        if node.recv.is_wildcard() {
            self.wildcard_live -= 1;
        }
        Some(node.recv)
    }

    /// Number of posted receives not yet matched.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no receives are waiting.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over posted receives (slot order; FIFO order is only
    /// guaranteed *within* one selector chain, which together with the
    /// cross-bucket sequence arbitration is all the matching rule requires).
    pub fn iter(&self) -> impl Iterator<Item = &PostedReceive> {
        self.nodes.iter().map(|(_, n)| &n.recv)
    }

    /// Number of heap allocations this queue has performed (steady state
    /// must not add any).
    pub fn alloc_events(&self) -> u64 {
        self.nodes.alloc_events() + self.buckets.alloc_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn posted(handle: u64, src: ProcessId, tag: u32, capacity: usize) -> PostedReceive {
        PostedReceive {
            op: RecvOp::from_raw(handle as u32, 0),
            src,
            tag: Tag(tag),
            capacity,
            translated: false,
            policy: TruncationPolicy::Error,
        }
    }

    fn op(handle: u64) -> RecvOp {
        RecvOp::from_raw(handle as u32, 0)
    }

    #[test]
    fn match_by_source_and_tag() {
        let mut q = ReceiveQueue::new();
        let a = ProcessId::new(0, 0);
        let b = ProcessId::new(0, 1);
        q.register(posted(1, a, 10, 100));
        q.register(posted(2, b, 10, 100));
        q.register(posted(3, a, 20, 100));

        let m = q.match_incoming(b, Tag(10)).unwrap();
        assert_eq!(m.op, op(2));
        assert!(q.match_incoming(b, Tag(10)).is_none());
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn matching_is_fifo_per_source_tag() {
        let mut q = ReceiveQueue::new();
        let a = ProcessId::new(0, 0);
        q.register(posted(1, a, 5, 64));
        q.register(posted(2, a, 5, 128));
        assert_eq!(q.match_incoming(a, Tag(5)).unwrap().op, op(1));
        assert_eq!(q.match_incoming(a, Tag(5)).unwrap().op, op(2));
        assert!(q.match_incoming(a, Tag(5)).is_none());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = ReceiveQueue::new();
        let a = ProcessId::new(2, 1);
        q.register(posted(9, a, 1, 8));
        assert!(q.peek_match(a, Tag(1)).is_some());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn cancel_by_handle() {
        let mut q = ReceiveQueue::new();
        let a = ProcessId::new(0, 0);
        q.register(posted(1, a, 1, 8));
        q.register(posted(2, a, 2, 8));
        assert!(q.cancel(op(1)).is_some());
        assert!(q.cancel(op(1)).is_none());
        assert!(q.match_incoming(a, Tag(1)).is_none());
        assert!(q.match_incoming(a, Tag(2)).is_some());
    }

    #[test]
    fn cancel_middle_and_tail_of_chain() {
        let mut q = ReceiveQueue::new();
        let a = ProcessId::new(0, 0);
        q.register(posted(1, a, 5, 8));
        q.register(posted(2, a, 5, 8));
        q.register(posted(3, a, 5, 8));
        assert!(q.cancel(op(2)).is_some());
        assert!(q.cancel(op(3)).is_some());
        // Chain stays intact: handle 1 still matches, then nothing.
        assert_eq!(q.match_incoming(a, Tag(5)).unwrap().op, op(1));
        assert!(q.match_incoming(a, Tag(5)).is_none());
        // Bucket is usable after a full drain.
        q.register(posted(4, a, 5, 8));
        assert_eq!(q.match_incoming(a, Tag(5)).unwrap().op, op(4));
    }

    #[test]
    fn no_match_for_wrong_tag_or_source() {
        let mut q = ReceiveQueue::new();
        q.register(posted(1, ProcessId::new(0, 0), 7, 16));
        assert!(q.match_incoming(ProcessId::new(0, 0), Tag(8)).is_none());
        assert!(q.match_incoming(ProcessId::new(1, 0), Tag(7)).is_none());
        assert_eq!(q.iter().count(), 1);
    }

    #[test]
    fn wildcard_source_matches_any_peer_in_posting_order() {
        let mut q = ReceiveQueue::new();
        let a = ProcessId::new(0, 0);
        let b = ProcessId::new(1, 0);
        q.register(posted(1, ANY_SOURCE, 5, 8));
        q.register(posted(2, a, 5, 8));
        // The wildcard was posted first, so it wins for either source.
        assert_eq!(q.match_incoming(b, Tag(5)).unwrap().op, op(1));
        assert_eq!(q.match_incoming(a, Tag(5)).unwrap().op, op(2));
        assert!(q.match_incoming(a, Tag(5)).is_none());
    }

    #[test]
    fn exact_receive_beats_younger_wildcard() {
        let mut q = ReceiveQueue::new();
        let a = ProcessId::new(0, 0);
        q.register(posted(1, a, 5, 8));
        q.register(posted(2, ANY_SOURCE, ANY_TAG.0, 8));
        assert_eq!(q.match_incoming(a, Tag(5)).unwrap().op, op(1));
        // The any/any receive takes whatever arrives next.
        assert_eq!(
            q.match_incoming(ProcessId::new(3, 3), Tag(9)).unwrap().op,
            op(2)
        );
    }

    #[test]
    fn wildcard_tag_matches_and_fast_path_recovers() {
        let mut q = ReceiveQueue::new();
        let a = ProcessId::new(0, 0);
        q.register(posted(1, a, ANY_TAG.0, 8));
        assert_eq!(q.match_incoming(a, Tag(42)).unwrap().op, op(1));
        // No wildcards left: the exact fast path is active again and still
        // correct.
        q.register(posted(2, a, 7, 8));
        assert_eq!(q.match_incoming(a, Tag(7)).unwrap().op, op(2));
    }

    #[test]
    fn wildcard_tag_never_matches_reserved_tags() {
        use crate::types::COLLECTIVE_TAG_BIT;
        let mut q = ReceiveQueue::new();
        let a = ProcessId::new(0, 0);
        let reserved = Tag(COLLECTIVE_TAG_BIT | 7);
        q.register(posted(1, a, ANY_TAG.0, 8));
        q.register(posted(2, ANY_SOURCE, ANY_TAG.0, 8));
        // A collective-space message sails past both wildcards...
        assert!(q.match_incoming(a, reserved).is_none());
        assert!(q.peek_match(a, reserved).is_none());
        // ...but a receive naming the reserved tag (even with a wildcard
        // source) matches it as usual.
        q.register(posted(3, ANY_SOURCE, reserved.0, 8));
        assert_eq!(q.peek_match(a, reserved).unwrap().op, op(3));
        assert_eq!(q.match_incoming(a, reserved).unwrap().op, op(3));
        // The plain wildcards are still live for ordinary traffic.
        assert_eq!(q.match_incoming(a, Tag(5)).unwrap().op, op(1));
    }

    #[test]
    fn peek_sees_wildcards() {
        let mut q = ReceiveQueue::new();
        let a = ProcessId::new(0, 0);
        q.register(posted(1, ANY_SOURCE, ANY_TAG.0, 8));
        assert_eq!(q.peek_match(a, Tag(3)).unwrap().op, op(1));
        assert!(q.cancel(op(1)).is_some());
        assert!(q.peek_match(a, Tag(3)).is_none());
    }

    #[test]
    fn steady_post_match_cycle_does_not_allocate() {
        let mut q = ReceiveQueue::new();
        let a = ProcessId::new(0, 0);
        // Warm up: one full cycle sizes every internal structure.
        for i in 0..8 {
            q.register(posted(i, a, i as u32, 16));
        }
        for i in 0..8 {
            assert!(q.match_incoming(a, Tag(i)).is_some());
        }
        let allocs = q.alloc_events();
        for round in 0..10_000u64 {
            q.register(posted(round, a, (round % 8) as u32, 16));
            assert!(q.match_incoming(a, Tag((round % 8) as u32)).is_some());
        }
        assert_eq!(
            q.alloc_events(),
            allocs,
            "steady matching must not allocate"
        );
    }

    #[test]
    fn steady_wildcard_cycle_does_not_allocate() {
        let mut q = ReceiveQueue::new();
        let a = ProcessId::new(0, 0);
        q.register(posted(0, ANY_SOURCE, 0, 16));
        q.match_incoming(a, Tag(0)).unwrap();
        let allocs = q.alloc_events();
        for round in 0..10_000u64 {
            q.register(posted(round, ANY_SOURCE, 0, 16));
            assert!(q.match_incoming(a, Tag(0)).is_some());
        }
        assert_eq!(q.alloc_events(), allocs, "wildcards must not allocate");
    }
}
