//! The receive queue: posted receive operations waiting to be matched with
//! an incoming message.

use crate::index::{Chain, Slab, SrcTagMap, NIL};
use crate::types::{ProcessId, RecvHandle, Tag};

/// One posted (not yet matched) receive operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostedReceive {
    /// Handle returned to the application.
    pub handle: RecvHandle,
    /// The source process this receive matches.
    pub src: ProcessId,
    /// The tag this receive matches.
    pub tag: Tag,
    /// Capacity of the destination buffer in bytes.
    pub capacity: usize,
    /// `true` once the destination zero buffer has been built (address
    /// translation of the destination buffer performed).
    pub translated: bool,
}

#[derive(Debug)]
struct Node {
    recv: PostedReceive,
    /// Next-younger receive with the same `(src, tag)`, or [`NIL`].
    next: u32,
}

/// The receive queue shared between a process and its kernel side.
///
/// Receives are matched to incoming messages by `(source, tag)` in posting
/// order, which mirrors MPI's non-overtaking rule for a single communicator.
///
/// Internally the queue is a slab of posted receives threaded into per
/// `(source, tag)` FIFO chains indexed by an open-addressed bucket map, so
/// `register`, `match_incoming` and `peek_match` are O(1) amortized and
/// allocation-free in steady state (the O(n) `Vec::position` scan of the
/// original implementation is kept alive only as a benchmark baseline in
/// `ppmsg-bench`).
#[derive(Debug, Default)]
pub struct ReceiveQueue {
    nodes: Slab<Node>,
    buckets: SrcTagMap,
}

impl ReceiveQueue {
    /// Creates an empty receive queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a posted receive (arrow 1b in Fig. 1, receive side).
    ///
    /// Buckets persist after their chain drains (a `(src, tag)` pair that
    /// matched once will almost certainly match again), so the steady-state
    /// cycle is one probe to append and one probe to pop — no bucket
    /// creation or backward-shift deletion per message.
    #[inline]
    pub fn register(&mut self, recv: PostedReceive) {
        let src = recv.src.as_u64();
        let tag = recv.tag.0;
        let slot = self.nodes.insert(Node { recv, next: NIL });
        match self.buckets.get_mut(src, tag) {
            Some(chain) if chain.head != NIL => {
                let tail = chain.tail;
                chain.tail = slot;
                self.nodes
                    .get_mut(tail)
                    .expect("bucket tail must be live")
                    .next = slot;
            }
            Some(chain) => {
                chain.head = slot;
                chain.tail = slot;
            }
            None => self.buckets.set(
                src,
                tag,
                Chain {
                    head: slot,
                    tail: slot,
                },
            ),
        }
    }

    /// Finds and removes the oldest posted receive matching `(src, tag)`.
    #[inline]
    pub fn match_incoming(&mut self, src: ProcessId, tag: Tag) -> Option<PostedReceive> {
        let key = src.as_u64();
        let chain = self.buckets.get_mut(key, tag.0)?;
        let head = chain.head;
        if head == NIL {
            return None; // drained bucket kept alive for reuse
        }
        let node = self.nodes.remove(head).expect("bucket head must be live");
        if node.next == NIL {
            chain.head = NIL;
            chain.tail = NIL;
        } else {
            chain.head = node.next;
        }
        Some(node.recv)
    }

    /// Returns (without removing) the oldest posted receive matching
    /// `(src, tag)`.
    #[inline]
    pub fn peek_match(&self, src: ProcessId, tag: Tag) -> Option<&PostedReceive> {
        let chain = self.buckets.get(src.as_u64(), tag.0)?;
        if chain.head == NIL {
            return None;
        }
        Some(
            &self
                .nodes
                .get(chain.head)
                .expect("bucket head must be live")
                .recv,
        )
    }

    /// Cancels a posted receive by handle, returning it if it was still
    /// pending.
    ///
    /// Cancellation is a cold path (it never runs per packet), so it scans
    /// the slab for the handle and then unlinks the node from its chain.
    pub fn cancel(&mut self, handle: RecvHandle) -> Option<PostedReceive> {
        let slot = self
            .nodes
            .iter()
            .find(|(_, n)| n.recv.handle == handle)
            .map(|(slot, _)| slot)?;
        let (src, tag) = {
            let n = self.nodes.get(slot).unwrap();
            (n.recv.src.as_u64(), n.recv.tag.0)
        };
        let chain = self.buckets.get(src, tag).expect("node without bucket");
        if chain.head == slot {
            let node = self.nodes.remove(slot).unwrap();
            let chain = self.buckets.get_mut(src, tag).unwrap();
            if node.next == NIL {
                chain.head = NIL;
                chain.tail = NIL;
            } else {
                chain.head = node.next;
            }
            return Some(node.recv);
        }
        // Walk the chain to find the predecessor.
        let mut prev = chain.head;
        loop {
            let next = self.nodes.get(prev).expect("chain must be intact").next;
            if next == slot {
                break;
            }
            prev = next;
        }
        let node = self.nodes.remove(slot).unwrap();
        self.nodes.get_mut(prev).unwrap().next = node.next;
        if chain.tail == slot {
            self.buckets.get_mut(src, tag).unwrap().tail = prev;
        }
        Some(node.recv)
    }

    /// Number of posted receives not yet matched.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no receives are waiting.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over posted receives (slot order; FIFO order is only
    /// guaranteed *within* one `(source, tag)` chain, which is all the
    /// matching rule requires).
    pub fn iter(&self) -> impl Iterator<Item = &PostedReceive> {
        self.nodes.iter().map(|(_, n)| &n.recv)
    }

    /// Number of heap allocations this queue has performed (steady state
    /// must not add any).
    pub fn alloc_events(&self) -> u64 {
        self.nodes.alloc_events() + self.buckets.alloc_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn posted(handle: u64, src: ProcessId, tag: u32, capacity: usize) -> PostedReceive {
        PostedReceive {
            handle: RecvHandle(handle),
            src,
            tag: Tag(tag),
            capacity,
            translated: false,
        }
    }

    #[test]
    fn match_by_source_and_tag() {
        let mut q = ReceiveQueue::new();
        let a = ProcessId::new(0, 0);
        let b = ProcessId::new(0, 1);
        q.register(posted(1, a, 10, 100));
        q.register(posted(2, b, 10, 100));
        q.register(posted(3, a, 20, 100));

        let m = q.match_incoming(b, Tag(10)).unwrap();
        assert_eq!(m.handle, RecvHandle(2));
        assert!(q.match_incoming(b, Tag(10)).is_none());
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn matching_is_fifo_per_source_tag() {
        let mut q = ReceiveQueue::new();
        let a = ProcessId::new(0, 0);
        q.register(posted(1, a, 5, 64));
        q.register(posted(2, a, 5, 128));
        assert_eq!(q.match_incoming(a, Tag(5)).unwrap().handle, RecvHandle(1));
        assert_eq!(q.match_incoming(a, Tag(5)).unwrap().handle, RecvHandle(2));
        assert!(q.match_incoming(a, Tag(5)).is_none());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = ReceiveQueue::new();
        let a = ProcessId::new(2, 1);
        q.register(posted(9, a, 1, 8));
        assert!(q.peek_match(a, Tag(1)).is_some());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn cancel_by_handle() {
        let mut q = ReceiveQueue::new();
        let a = ProcessId::new(0, 0);
        q.register(posted(1, a, 1, 8));
        q.register(posted(2, a, 2, 8));
        assert!(q.cancel(RecvHandle(1)).is_some());
        assert!(q.cancel(RecvHandle(1)).is_none());
        assert!(q.match_incoming(a, Tag(1)).is_none());
        assert!(q.match_incoming(a, Tag(2)).is_some());
    }

    #[test]
    fn cancel_middle_and_tail_of_chain() {
        let mut q = ReceiveQueue::new();
        let a = ProcessId::new(0, 0);
        q.register(posted(1, a, 5, 8));
        q.register(posted(2, a, 5, 8));
        q.register(posted(3, a, 5, 8));
        assert!(q.cancel(RecvHandle(2)).is_some());
        assert!(q.cancel(RecvHandle(3)).is_some());
        // Chain stays intact: handle 1 still matches, then nothing.
        assert_eq!(q.match_incoming(a, Tag(5)).unwrap().handle, RecvHandle(1));
        assert!(q.match_incoming(a, Tag(5)).is_none());
        // Bucket is usable after a full drain.
        q.register(posted(4, a, 5, 8));
        assert_eq!(q.match_incoming(a, Tag(5)).unwrap().handle, RecvHandle(4));
    }

    #[test]
    fn no_match_for_wrong_tag_or_source() {
        let mut q = ReceiveQueue::new();
        q.register(posted(1, ProcessId::new(0, 0), 7, 16));
        assert!(q.match_incoming(ProcessId::new(0, 0), Tag(8)).is_none());
        assert!(q.match_incoming(ProcessId::new(1, 0), Tag(7)).is_none());
        assert_eq!(q.iter().count(), 1);
    }

    #[test]
    fn steady_post_match_cycle_does_not_allocate() {
        let mut q = ReceiveQueue::new();
        let a = ProcessId::new(0, 0);
        // Warm up: one full cycle sizes every internal structure.
        for i in 0..8 {
            q.register(posted(i, a, i as u32, 16));
        }
        for i in 0..8 {
            assert!(q.match_incoming(a, Tag(i)).is_some());
        }
        let allocs = q.alloc_events();
        for round in 0..10_000u64 {
            q.register(posted(round, a, (round % 8) as u32, 16));
            assert!(q.match_incoming(a, Tag((round % 8) as u32)).is_some());
        }
        assert_eq!(
            q.alloc_events(),
            allocs,
            "steady matching must not allocate"
        );
    }
}
