//! The receive queue: posted receive operations waiting to be matched with
//! an incoming message.

use crate::types::{ProcessId, RecvHandle, Tag};

/// One posted (not yet matched) receive operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostedReceive {
    /// Handle returned to the application.
    pub handle: RecvHandle,
    /// The source process this receive matches.
    pub src: ProcessId,
    /// The tag this receive matches.
    pub tag: Tag,
    /// Capacity of the destination buffer in bytes.
    pub capacity: usize,
    /// `true` once the destination zero buffer has been built (address
    /// translation of the destination buffer performed).
    pub translated: bool,
}

/// The receive queue shared between a process and its kernel side.
///
/// Receives are matched to incoming messages by `(source, tag)` in posting
/// order, which mirrors MPI's non-overtaking rule for a single communicator.
#[derive(Debug, Default)]
pub struct ReceiveQueue {
    posted: Vec<PostedReceive>,
}

impl ReceiveQueue {
    /// Creates an empty receive queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a posted receive (arrow 1b in Fig. 1, receive side).
    pub fn register(&mut self, recv: PostedReceive) {
        self.posted.push(recv);
    }

    /// Finds and removes the oldest posted receive matching `(src, tag)`.
    pub fn match_incoming(&mut self, src: ProcessId, tag: Tag) -> Option<PostedReceive> {
        let idx = self
            .posted
            .iter()
            .position(|r| r.src == src && r.tag == tag)?;
        Some(self.posted.remove(idx))
    }

    /// Returns (without removing) the oldest posted receive matching
    /// `(src, tag)`.
    pub fn peek_match(&self, src: ProcessId, tag: Tag) -> Option<&PostedReceive> {
        self.posted.iter().find(|r| r.src == src && r.tag == tag)
    }

    /// Cancels a posted receive by handle, returning it if it was still
    /// pending.
    pub fn cancel(&mut self, handle: RecvHandle) -> Option<PostedReceive> {
        let idx = self.posted.iter().position(|r| r.handle == handle)?;
        Some(self.posted.remove(idx))
    }

    /// Number of posted receives not yet matched.
    pub fn len(&self) -> usize {
        self.posted.len()
    }

    /// `true` when no receives are waiting.
    pub fn is_empty(&self) -> bool {
        self.posted.is_empty()
    }

    /// Iterates over posted receives in posting order.
    pub fn iter(&self) -> impl Iterator<Item = &PostedReceive> {
        self.posted.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn posted(handle: u64, src: ProcessId, tag: u32, capacity: usize) -> PostedReceive {
        PostedReceive {
            handle: RecvHandle(handle),
            src,
            tag: Tag(tag),
            capacity,
            translated: false,
        }
    }

    #[test]
    fn match_by_source_and_tag() {
        let mut q = ReceiveQueue::new();
        let a = ProcessId::new(0, 0);
        let b = ProcessId::new(0, 1);
        q.register(posted(1, a, 10, 100));
        q.register(posted(2, b, 10, 100));
        q.register(posted(3, a, 20, 100));

        let m = q.match_incoming(b, Tag(10)).unwrap();
        assert_eq!(m.handle, RecvHandle(2));
        assert!(q.match_incoming(b, Tag(10)).is_none());
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn matching_is_fifo_per_source_tag() {
        let mut q = ReceiveQueue::new();
        let a = ProcessId::new(0, 0);
        q.register(posted(1, a, 5, 64));
        q.register(posted(2, a, 5, 128));
        assert_eq!(q.match_incoming(a, Tag(5)).unwrap().handle, RecvHandle(1));
        assert_eq!(q.match_incoming(a, Tag(5)).unwrap().handle, RecvHandle(2));
        assert!(q.match_incoming(a, Tag(5)).is_none());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = ReceiveQueue::new();
        let a = ProcessId::new(2, 1);
        q.register(posted(9, a, 1, 8));
        assert!(q.peek_match(a, Tag(1)).is_some());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn cancel_by_handle() {
        let mut q = ReceiveQueue::new();
        let a = ProcessId::new(0, 0);
        q.register(posted(1, a, 1, 8));
        q.register(posted(2, a, 2, 8));
        assert!(q.cancel(RecvHandle(1)).is_some());
        assert!(q.cancel(RecvHandle(1)).is_none());
        assert!(q.match_incoming(a, Tag(1)).is_none());
        assert!(q.match_incoming(a, Tag(2)).is_some());
    }

    #[test]
    fn no_match_for_wrong_tag_or_source() {
        let mut q = ReceiveQueue::new();
        q.register(posted(1, ProcessId::new(0, 0), 7, 16));
        assert!(q.match_incoming(ProcessId::new(0, 0), Tag(8)).is_none());
        assert!(q.match_incoming(ProcessId::new(1, 0), Tag(7)).is_none());
        assert_eq!(q.iter().count(), 1);
    }
}
