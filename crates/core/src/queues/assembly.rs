//! Reassembly of a message from its pushed and pulled fragments.

use bytes::Bytes;

/// Merges `[start, end)` into a sorted, disjoint interval list in place,
/// returning the number of *newly covered* positions.
///
/// This is the coverage-tracking core shared by [`Assembly`] (engine-owned
/// reassembly buffers) and [`RecvBuf`](crate::ops::RecvBuf) (caller-owned
/// destination buffers).  The list stays sorted and disjoint, so the new
/// interval overlaps (or touches) at most one contiguous run of existing
/// intervals and no temporary list is allocated — this runs once per
/// arriving fragment on the hot path.
pub(crate) fn merge_interval(cov: &mut Vec<(usize, usize)>, start: usize, end: usize) -> usize {
    let i = cov.partition_point(|&(_, e)| e < start);
    if i == cov.len() || cov[i].0 > end {
        // No overlap and no adjacency: plain insertion.
        cov.insert(i, (start, end));
        return end - start;
    }
    let mut existing = 0;
    let mut new_start = start;
    let mut new_end = end;
    let mut j = i;
    while j < cov.len() && cov[j].0 <= end {
        existing += cov[j].1 - cov[j].0;
        new_start = new_start.min(cov[j].0);
        new_end = new_end.max(cov[j].1);
        j += 1;
    }
    cov[i] = (new_start, new_end);
    cov.drain(i + 1..j);
    (new_end - new_start) - existing
}

/// Reassembles one incoming message from fragments arriving at arbitrary
/// offsets (first push, second push, pulled packets).
///
/// Duplicate and overlapping fragments are tolerated — only bytes not already
/// covered count towards completion — which keeps the engine robust if a
/// retransmitted packet slips past the go-back-N receiver.
#[derive(Debug, Clone)]
pub struct Assembly {
    data: Vec<u8>,
    /// Sorted, disjoint list of covered `[start, end)` intervals.
    covered: Vec<(usize, usize)>,
    received: usize,
}

impl Assembly {
    /// Creates an assembly buffer for a message of `total_len` bytes.
    pub fn new(total_len: usize) -> Self {
        Assembly {
            data: vec![0u8; total_len],
            covered: Vec::new(),
            received: 0,
        }
    }

    /// Re-initialises the buffer for a new message of `total_len` bytes,
    /// reusing existing capacity.  Returns `true` when the backing storage
    /// had to grow (i.e. the call allocated).
    pub fn reset(&mut self, total_len: usize) -> bool {
        let grew = self.data.capacity() < total_len;
        self.data.clear();
        self.data.resize(total_len, 0);
        self.covered.clear();
        self.received = 0;
        grew
    }

    /// Total length of the message being assembled.
    #[inline]
    pub fn total_len(&self) -> usize {
        self.data.len()
    }

    /// Number of distinct bytes received so far.
    #[inline]
    pub fn received(&self) -> usize {
        self.received
    }

    /// Number of bytes still missing.
    #[inline]
    pub fn missing(&self) -> usize {
        self.data.len() - self.received
    }

    /// `true` once every byte of the message has been received.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.received == self.data.len()
    }

    /// Offset of the first byte not yet received, or `total_len` if complete.
    pub fn first_gap(&self) -> usize {
        let mut cursor = 0;
        for &(start, end) in &self.covered {
            if start > cursor {
                return cursor;
            }
            cursor = cursor.max(end);
        }
        cursor
    }

    /// Writes a fragment at `offset`, returning the number of *newly covered*
    /// bytes.  Fragments beyond the end of the message are truncated.
    pub fn write_at(&mut self, offset: usize, fragment: &[u8]) -> usize {
        if offset >= self.data.len() || fragment.is_empty() {
            return 0;
        }
        let len = fragment.len().min(self.data.len() - offset);
        self.data[offset..offset + len].copy_from_slice(&fragment[..len]);
        let newly = merge_interval(&mut self.covered, offset, offset + len);
        self.received += newly;
        newly
    }

    /// The sorted, disjoint covered `[start, end)` intervals recorded so far
    /// (used when draining a partially assembled message into a caller-owned
    /// buffer: only genuinely received bytes may be marked covered there).
    pub(crate) fn covered_intervals(&self) -> &[(usize, usize)] {
        &self.covered
    }

    /// Consumes the assembly and returns the message bytes.  The caller is
    /// expected to check [`is_complete`](Assembly::is_complete) first; missing
    /// regions are zero-filled.
    pub fn into_bytes(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Extracts the message bytes, leaving an empty shell that can be
    /// returned to an assembly pool (the interval list keeps its capacity;
    /// the data storage necessarily moves out with the message).
    pub fn take_bytes(&mut self) -> Bytes {
        self.covered.clear();
        self.received = 0;
        Bytes::from(std::mem::take(&mut self.data))
    }

    /// A read-only view of the (possibly still incomplete) message bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_assembly() {
        let mut a = Assembly::new(100);
        assert_eq!(a.write_at(0, &[1u8; 40]), 40);
        assert!(!a.is_complete());
        assert_eq!(a.first_gap(), 40);
        assert_eq!(a.write_at(40, &[2u8; 60]), 60);
        assert!(a.is_complete());
        let bytes = a.into_bytes();
        assert_eq!(&bytes[..40], &[1u8; 40][..]);
        assert_eq!(&bytes[40..], &[2u8; 60][..]);
    }

    #[test]
    fn out_of_order_assembly() {
        let mut a = Assembly::new(10);
        assert_eq!(a.write_at(6, &[6, 7, 8, 9]), 4);
        assert_eq!(a.first_gap(), 0);
        assert_eq!(a.write_at(0, &[0, 1, 2, 3, 4, 5]), 6);
        assert!(a.is_complete());
        assert_eq!(a.as_slice(), &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn duplicates_do_not_double_count() {
        let mut a = Assembly::new(100);
        assert_eq!(a.write_at(0, &[1u8; 50]), 50);
        assert_eq!(a.write_at(0, &[1u8; 50]), 0);
        assert_eq!(a.write_at(25, &[2u8; 50]), 25);
        assert_eq!(a.received(), 75);
        assert_eq!(a.missing(), 25);
    }

    #[test]
    fn fragment_past_end_is_truncated() {
        let mut a = Assembly::new(10);
        assert_eq!(a.write_at(5, &[9u8; 100]), 5);
        assert!(!a.is_complete());
        assert_eq!(a.write_at(20, &[9u8; 10]), 0);
    }

    #[test]
    fn zero_length_message_is_immediately_complete() {
        let a = Assembly::new(0);
        assert!(a.is_complete());
        assert_eq!(a.first_gap(), 0);
    }

    #[test]
    fn empty_fragment_is_noop() {
        let mut a = Assembly::new(10);
        assert_eq!(a.write_at(3, &[]), 0);
        assert_eq!(a.received(), 0);
    }

    #[test]
    fn overlapping_middle_fragment() {
        let mut a = Assembly::new(30);
        a.write_at(0, &[1u8; 10]);
        a.write_at(20, &[3u8; 10]);
        // Overlaps both existing intervals.
        assert_eq!(a.write_at(5, &[2u8; 20]), 10);
        assert!(a.is_complete());
    }
}
