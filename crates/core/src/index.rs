//! Index structures for the allocation-free hot path.
//!
//! The protocol engine's steady state must not touch the heap (§5 of the
//! paper measures microsecond-scale latencies; a single `malloc` is visible
//! at that scale).  Three building blocks make that possible:
//!
//! * [`Slab`] — a `Vec<Option<T>>` arena with an intrusive free list.  Slots
//!   are reused after removal, so a post/complete cycle allocates only until
//!   the arena has grown to the peak working-set size.
//! * [`U64Index`] — an open-addressed `u64 → u32` hash index (fibonacci
//!   hashing, backward-shift deletion — no tombstones, so endless key churn
//!   never degrades the table).  Used for message-id and peer-id lookup
//!   without tuple hashing or per-probe allocation.
//! * [`SrcTagMap`] — an open-addressed map from `(source, tag)` to the
//!   head/tail of an intrusive FIFO chain threaded through a [`Slab`].  This
//!   is what turns receive matching and unexpected-message lookup from O(n)
//!   scans into O(1) amortized bucket operations.
//!
//! Every structure counts the allocations it performs ([`Slab::alloc_events`]
//! &c.), which is how
//! [`EndpointStats::steady_allocs`](crate::engine::EndpointStats::steady_allocs)
//! detects a hot path that regressed into allocating.

/// Sentinel index meaning "no slot" in intrusive links.
pub const NIL: u32 = u32::MAX;

/// A slot arena: `Vec<Option<T>>` plus a free list of vacated slots.
///
/// `insert` returns a dense `u32` slot id that stays valid until `remove`.
/// Removed slots are recycled in LIFO order, keeping the working set compact
/// and cache-warm.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
    len: usize,
    alloc_events: u64,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// Creates an empty arena without allocating.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
            alloc_events: 0,
        }
    }

    /// Number of occupied slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no slot is occupied.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Stores `value`, returning its slot id.
    #[inline]
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        if let Some(slot) = self.free.pop() {
            debug_assert!(self.slots[slot as usize].is_none());
            self.slots[slot as usize] = Some(value);
            return slot;
        }
        if self.slots.len() == self.slots.capacity() {
            self.alloc_events += 1;
        }
        let slot = self.slots.len() as u32;
        assert!(slot != NIL, "slab overflow");
        self.slots.push(Some(value));
        slot
    }

    /// Removes and returns the value in `slot`, recycling the slot.
    #[inline]
    pub fn remove(&mut self, slot: u32) -> Option<T> {
        let value = self.slots.get_mut(slot as usize)?.take()?;
        self.len -= 1;
        if self.free.len() == self.free.capacity() {
            self.alloc_events += 1;
        }
        self.free.push(slot);
        Some(value)
    }

    /// Borrows the value in `slot`.
    #[inline]
    pub fn get(&self, slot: u32) -> Option<&T> {
        self.slots.get(slot as usize)?.as_ref()
    }

    /// Mutably borrows the value in `slot`.
    #[inline]
    pub fn get_mut(&mut self, slot: u32) -> Option<&mut T> {
        self.slots.get_mut(slot as usize)?.as_mut()
    }

    /// Iterates over `(slot, value)` pairs in slot order (not insertion
    /// order).
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (i as u32, v)))
    }

    /// Number of heap allocations this arena has performed.
    #[inline]
    pub fn alloc_events(&self) -> u64 {
        self.alloc_events
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Empty,
    Occupied,
}

/// Multiplicative (fibonacci) hash spreading `key` over `2^bits` buckets.
#[inline]
fn fib_hash(key: u64, mask: u64) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & mask as usize
}

#[derive(Debug, Clone, Copy)]
struct U64Entry {
    key: u64,
    value: u32,
    state: SlotState,
}

/// An open-addressed `u64 → u32` hash index with backward-shift deletion.
///
/// Steady-state insert/lookup/remove never allocate; the table doubles when
/// three quarters full (counted in [`U64Index::alloc_events`]).  Deletion
/// shifts displaced entries back instead of leaving tombstones, so endless
/// churn of fresh keys (monotonically increasing message ids!) never degrades
/// the table or forces rehashes.
#[derive(Debug, Clone, Default)]
pub struct U64Index {
    entries: Vec<U64Entry>,
    live: usize,
    alloc_events: u64,
}

impl U64Index {
    /// Creates an empty index without allocating.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no entry is live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    fn grow(&mut self) {
        let new_cap = (self.entries.len() * 2).max(8);
        self.alloc_events += 1;
        let old = std::mem::replace(
            &mut self.entries,
            vec![
                U64Entry {
                    key: 0,
                    value: 0,
                    state: SlotState::Empty,
                };
                new_cap
            ],
        );
        self.live = 0;
        for e in old {
            if e.state == SlotState::Occupied {
                self.insert(e.key, e.value);
            }
        }
    }

    /// Inserts or updates the mapping `key → value`.
    #[inline]
    pub fn insert(&mut self, key: u64, value: u32) {
        if !self.entries.is_empty() {
            let mask = self.entries.len() as u64 - 1;
            let mut i = fib_hash(key, mask);
            loop {
                match self.entries[i].state {
                    SlotState::Empty => {
                        // New entry: grow first if the table is at the load
                        // threshold (updates-in-place above never rehash).
                        if self.live * 4 >= self.entries.len() * 3 {
                            break;
                        }
                        self.entries[i] = U64Entry {
                            key,
                            value,
                            state: SlotState::Occupied,
                        };
                        self.live += 1;
                        return;
                    }
                    SlotState::Occupied if self.entries[i].key == key => {
                        self.entries[i].value = value;
                        return;
                    }
                    SlotState::Occupied => {}
                }
                i = (i + 1) & mask as usize;
            }
        }
        self.grow();
        self.insert(key, value);
    }

    /// Looks up `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u32> {
        if self.entries.is_empty() {
            return None;
        }
        let mask = self.entries.len() as u64 - 1;
        let mut i = fib_hash(key, mask);
        loop {
            match self.entries[i].state {
                SlotState::Empty => return None,
                SlotState::Occupied if self.entries[i].key == key => {
                    return Some(self.entries[i].value)
                }
                _ => {}
            }
            i = (i + 1) & mask as usize;
        }
    }

    /// Removes `key`, returning its value.
    #[inline]
    pub fn remove(&mut self, key: u64) -> Option<u32> {
        if self.entries.is_empty() {
            return None;
        }
        let cap = self.entries.len();
        let mask = cap as u64 - 1;
        let mut i = fib_hash(key, mask);
        loop {
            match self.entries[i].state {
                SlotState::Empty => return None,
                SlotState::Occupied if self.entries[i].key == key => {
                    let value = self.entries[i].value;
                    // Backward-shift deletion: pull displaced entries of the
                    // probe run back so no tombstone is needed.
                    let mut hole = i;
                    let mut j = i;
                    loop {
                        j = (j + 1) & mask as usize;
                        if self.entries[j].state == SlotState::Empty {
                            break;
                        }
                        let ideal = fib_hash(self.entries[j].key, mask);
                        // Move entry j into the hole iff its ideal slot lies
                        // cyclically at or before the hole (i.e. the hole is
                        // inside its probe run).
                        if (j + cap - ideal) % cap >= (j + cap - hole) % cap {
                            self.entries[hole] = self.entries[j];
                            hole = j;
                        }
                    }
                    self.entries[hole].state = SlotState::Empty;
                    self.live -= 1;
                    return Some(value);
                }
                SlotState::Occupied => {}
            }
            i = (i + 1) & mask as usize;
        }
    }

    /// Number of heap allocations (initial table + rehashes) performed.
    #[inline]
    pub fn alloc_events(&self) -> u64 {
        self.alloc_events
    }
}

/// Head and tail of one `(source, tag)` FIFO chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chain {
    /// Slot id of the oldest element, or [`NIL`].
    pub head: u32,
    /// Slot id of the newest element, or [`NIL`].
    pub tail: u32,
}

impl Default for Chain {
    /// An empty chain (both ends [`NIL`]).
    fn default() -> Self {
        Chain {
            head: NIL,
            tail: NIL,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct SrcTagEntry {
    src: u64,
    tag: u32,
    chain: Chain,
    state: SlotState,
}

/// An open-addressed map from `(source, tag)` to a FIFO [`Chain`] threaded
/// through a caller-owned [`Slab`].
///
/// This is the O(1) tag-matching core: posting appends to the chain and
/// matching pops its head.  The full `(src, tag)` key is stored, so hash
/// collisions cannot cause a false match.  Buckets are never deleted —
/// queues keep a drained bucket (`head == NIL`) alive because its
/// `(source, tag)` pair will almost certainly be used again, so the map only
/// ever grows to the number of distinct pairs seen.
#[derive(Debug, Clone, Default)]
pub struct SrcTagMap {
    entries: Vec<SrcTagEntry>,
    live: usize,
    alloc_events: u64,
}

#[inline]
fn src_tag_hash(src: u64, tag: u32) -> u64 {
    // Mix the tag into the high half so peers differing only in tag don't
    // cluster.
    src ^ ((tag as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93) << 1)
}

impl SrcTagMap {
    /// Creates an empty map without allocating.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live buckets (distinct `(src, tag)` pairs with a non-empty
    /// chain).
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no bucket is live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    fn grow(&mut self) {
        let new_cap = (self.entries.len() * 2).max(8);
        self.alloc_events += 1;
        let old = std::mem::replace(
            &mut self.entries,
            vec![
                SrcTagEntry {
                    src: 0,
                    tag: 0,
                    chain: Chain {
                        head: NIL,
                        tail: NIL
                    },
                    state: SlotState::Empty,
                };
                new_cap
            ],
        );
        self.live = 0;
        for e in old {
            if e.state == SlotState::Occupied {
                self.set(e.src, e.tag, e.chain);
            }
        }
    }

    /// Returns the chain for `(src, tag)`, if present.
    #[inline]
    pub fn get(&self, src: u64, tag: u32) -> Option<Chain> {
        if self.entries.is_empty() {
            return None;
        }
        let mask = self.entries.len() as u64 - 1;
        let mut i = fib_hash(src_tag_hash(src, tag), mask);
        loop {
            let e = &self.entries[i];
            match e.state {
                SlotState::Empty => return None,
                SlotState::Occupied if e.src == src && e.tag == tag => return Some(e.chain),
                _ => {}
            }
            i = (i + 1) & mask as usize;
        }
    }

    /// Mutable access to the chain for `(src, tag)`, probing once.
    #[inline]
    pub fn get_mut(&mut self, src: u64, tag: u32) -> Option<&mut Chain> {
        if self.entries.is_empty() {
            return None;
        }
        let mask = self.entries.len() as u64 - 1;
        let mut i = fib_hash(src_tag_hash(src, tag), mask);
        loop {
            match self.entries[i].state {
                SlotState::Empty => return None,
                SlotState::Occupied if self.entries[i].src == src && self.entries[i].tag == tag => {
                    return Some(&mut self.entries[i].chain)
                }
                SlotState::Occupied => {}
            }
            i = (i + 1) & mask as usize;
        }
    }

    /// Returns a mutable reference to the chain for `(src, tag)`, inserting
    /// an empty chain first if the pair is new — the single-probe
    /// ensure-and-borrow the per-message list maintenance paths need
    /// (a `get` + `set` + `get_mut` sequence would probe three times).
    #[inline]
    pub fn ensure(&mut self, src: u64, tag: u32) -> &mut Chain {
        loop {
            if !self.entries.is_empty() {
                let mask = self.entries.len() as u64 - 1;
                let mut i = fib_hash(src_tag_hash(src, tag), mask);
                let found = loop {
                    match self.entries[i].state {
                        SlotState::Empty => {
                            // New bucket: grow first at the load threshold.
                            if self.live * 4 >= self.entries.len() * 3 {
                                break None;
                            }
                            self.entries[i] = SrcTagEntry {
                                src,
                                tag,
                                chain: Chain::default(),
                                state: SlotState::Occupied,
                            };
                            self.live += 1;
                            break Some(i);
                        }
                        SlotState::Occupied
                            if self.entries[i].src == src && self.entries[i].tag == tag =>
                        {
                            break Some(i)
                        }
                        SlotState::Occupied => {}
                    }
                    i = (i + 1) & mask as usize;
                };
                if let Some(i) = found {
                    return &mut self.entries[i].chain;
                }
            }
            self.grow();
        }
    }

    /// Inserts or replaces the chain for `(src, tag)`.
    #[inline]
    pub fn set(&mut self, src: u64, tag: u32, chain: Chain) {
        if !self.entries.is_empty() {
            let mask = self.entries.len() as u64 - 1;
            let mut i = fib_hash(src_tag_hash(src, tag), mask);
            loop {
                match self.entries[i].state {
                    SlotState::Empty => {
                        // New bucket: grow first at the load threshold
                        // (updates-in-place above never rehash).
                        if self.live * 4 >= self.entries.len() * 3 {
                            break;
                        }
                        self.entries[i] = SrcTagEntry {
                            src,
                            tag,
                            chain,
                            state: SlotState::Occupied,
                        };
                        self.live += 1;
                        return;
                    }
                    SlotState::Occupied
                        if self.entries[i].src == src && self.entries[i].tag == tag =>
                    {
                        self.entries[i].chain = chain;
                        return;
                    }
                    SlotState::Occupied => {}
                }
                i = (i + 1) & mask as usize;
            }
        }
        self.grow();
        self.set(src, tag, chain);
    }

    /// Number of heap allocations (initial table + rehashes) performed.
    #[inline]
    pub fn alloc_events(&self) -> u64 {
        self.alloc_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_insert_remove_reuses_slots() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.remove(a), Some("a"));
        let c = slab.insert("c");
        assert_eq!(c, a, "vacated slot is recycled");
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.get(c), Some(&"c"));
        assert_eq!(slab.remove(a), Some("c"));
        assert_eq!(slab.remove(a), None);
    }

    #[test]
    fn slab_iterates_occupied_only() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        let _b = slab.insert(2);
        slab.remove(a);
        let seen: Vec<i32> = slab.iter().map(|(_, v)| *v).collect();
        assert_eq!(seen, vec![2]);
    }

    #[test]
    fn u64_index_basics() {
        let mut idx = U64Index::new();
        assert_eq!(idx.get(1), None);
        for k in 0..100u64 {
            idx.insert(k * 7, k as u32);
        }
        assert_eq!(idx.len(), 100);
        for k in 0..100u64 {
            assert_eq!(idx.get(k * 7), Some(k as u32));
        }
        assert_eq!(idx.remove(7), Some(1));
        assert_eq!(idx.get(7), None);
        assert_eq!(idx.remove(7), None);
        idx.insert(7, 99);
        assert_eq!(idx.get(7), Some(99));
    }

    #[test]
    fn u64_index_update_in_place() {
        let mut idx = U64Index::new();
        idx.insert(5, 1);
        idx.insert(5, 2);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.get(5), Some(2));
    }

    #[test]
    fn u64_index_steady_state_does_not_allocate() {
        let mut idx = U64Index::new();
        for k in 0..4u64 {
            idx.insert(k, k as u32);
        }
        let allocs = idx.alloc_events();
        for round in 0..10_000u64 {
            idx.insert(round % 4, round as u32);
            idx.remove(round % 4);
            idx.insert(round % 4, round as u32);
        }
        assert_eq!(idx.alloc_events(), allocs, "steady churn must not allocate");
    }

    #[test]
    fn u64_index_churn_still_finds_keys() {
        let mut idx = U64Index::new();
        // Heavy insert/remove cycling exercises backward-shift deletion.
        for round in 0..1000u64 {
            idx.insert(round, round as u32);
            if round >= 10 {
                assert_eq!(idx.remove(round - 10), Some((round - 10) as u32));
            }
        }
        assert_eq!(idx.len(), 10);
        for k in 990..1000u64 {
            assert_eq!(idx.get(k), Some(k as u32));
        }
    }

    #[test]
    fn src_tag_map_distinguishes_full_keys() {
        let mut m = SrcTagMap::new();
        m.set(1, 10, Chain { head: 1, tail: 1 });
        m.set(1, 11, Chain { head: 2, tail: 2 });
        m.set(2, 10, Chain { head: 3, tail: 3 });
        assert_eq!(m.get(1, 10).unwrap().head, 1);
        assert_eq!(m.get(1, 11).unwrap().head, 2);
        assert_eq!(m.get(2, 10).unwrap().head, 3);
        assert_eq!(m.get(2, 11), None);
        m.get_mut(1, 10).unwrap().head = 9;
        assert_eq!(m.get(1, 10).unwrap().head, 9);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn src_tag_map_survives_growth() {
        let mut m = SrcTagMap::new();
        for i in 0..500u32 {
            m.set(i as u64, i, Chain { head: i, tail: i });
        }
        for i in 0..500u32 {
            assert_eq!(m.get(i as u64, i).unwrap().head, i, "key {i}");
        }
        assert_eq!(m.get(500, 500), None);
        assert_eq!(m.len(), 500);
    }

    #[test]
    fn ensure_creates_then_borrows_in_place() {
        let mut m = SrcTagMap::new();
        assert_eq!(*m.ensure(7, 3), Chain::default(), "created empty");
        m.ensure(7, 3).head = 42;
        assert_eq!(m.get(7, 3).unwrap().head, 42, "same bucket on re-ensure");
        assert_eq!(m.len(), 1);
        // Survives growth past the load threshold.
        for i in 0..500u32 {
            m.ensure(i as u64, i).tail = i;
        }
        for i in 0..500u32 {
            assert_eq!(m.get(i as u64, i).unwrap().tail, i, "key {i}");
        }
        assert_eq!(m.get(7, 3).unwrap().head, 42);
    }

    #[test]
    fn set_at_load_threshold_updates_in_place_without_rehash() {
        let mut m = SrcTagMap::new();
        // Fill to exactly the load threshold (8-slot table, 6 live).
        for i in 0..6u32 {
            m.set(i as u64, i, Chain { head: i, tail: i });
        }
        let allocs = m.alloc_events();
        for _ in 0..100 {
            m.set(0, 0, Chain { head: 42, tail: 42 });
        }
        assert_eq!(m.alloc_events(), allocs, "updates must not rehash");
        assert_eq!(m.get(0, 0).unwrap().head, 42);
    }
}
