//! Trace exporters: chrome://tracing JSON and a plain-text dump.
//!
//! Both render a [`TraceSnapshot`] — they never touch live rings, so
//! exporting is safe from a panic hook or a wedge report.  The chrome format
//! is the Trace Event JSON array understood by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev): instants (`"ph":"i"`) for point
//! events and complete spans (`"ph":"X"`) for kinds whose `c` argument is a
//! duration ([`EventKind::is_span`](super::EventKind::is_span)).  Timestamps
//! are microseconds, so virtual-clock traces read directly in sim time.

// ppmsg-lint: deny(hot_path_alloc) — keep exporters off the alloc-heavy std conveniences too;
// they share this module's lint regime (write!-into-String only).

use super::recorder::{snapshot, TraceSnapshot};
use std::fmt::Write as _;
use std::path::Path;

fn push_json_escaped(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders `snap` as a chrome://tracing JSON array (load the file as-is in
/// `chrome://tracing` or Perfetto).  One metadata record names each thread;
/// event arguments are emitted raw as `args.{a,b,c}` plus `args.dropped` on
/// the first event of a ring that overwrote history.
pub fn chrome_trace(snap: &TraceSnapshot) -> String {
    let mut out = String::with_capacity(64 + snap.len() * 96);
    out.push_str("[\n");
    let mut first = true;
    let emit_sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
    };
    for ring in &snap.rings {
        emit_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"name\":\"",
            ring.tid
        );
        push_json_escaped(&mut out, &ring.name);
        out.push_str("\"}}");
        for (i, e) in ring.events.iter().enumerate() {
            emit_sep(&mut out, &mut first);
            let ts_us = e.ts_ns as f64 / 1000.0;
            if e.kind.is_span() {
                // Span events carry their duration in `c` (ns); draw the
                // span ending at the recording instant.
                let dur_us = e.c as f64 / 1000.0;
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":0,\"tid\":{},\"args\":{{\"a\":{},\"b\":{}",
                    e.kind.name(),
                    (ts_us - dur_us).max(0.0),
                    dur_us,
                    ring.tid,
                    e.a,
                    e.b,
                );
            } else {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\"pid\":0,\"tid\":{},\"args\":{{\"a\":{},\"b\":{},\"c\":{}",
                    e.kind.name(),
                    ts_us,
                    ring.tid,
                    e.a,
                    e.b,
                    e.c,
                );
            }
            if i == 0 && ring.dropped > 0 {
                let _ = write!(out, ",\"dropped\":{}", ring.dropped);
            }
            out.push_str("}}");
        }
    }
    out.push_str("\n]\n");
    out
}

/// Renders `snap` as a human-readable log, all threads merged and sorted by
/// timestamp: `ts_us tid name a b c`.
pub fn text_dump(snap: &TraceSnapshot) -> String {
    let merged = snap.merged();
    let mut out = String::with_capacity(64 + merged.len() * 64);
    let _ = writeln!(out, "# flight recorder: {} events", merged.len());
    for ring in &snap.rings {
        let _ = writeln!(
            out,
            "# tid {} ({}): {} events, {} overwritten",
            ring.tid,
            ring.name,
            ring.events.len(),
            ring.dropped
        );
    }
    for (tid, e) in merged {
        let _ = writeln!(
            out,
            "{:>14.3}us t{:<3} {:<16} a={} b={} c={}",
            e.ts_ns as f64 / 1000.0,
            tid,
            e.kind.name(),
            e.a,
            e.b,
            e.c,
        );
    }
    out
}

/// Snapshots every ring and writes the chrome trace to `path`.  Convenience
/// for failure hooks (chaos seeds, wedge reports).
pub fn dump_chrome_trace(path: &Path) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace(&snapshot()))
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::super::event::{Event, EventKind};
    use super::super::recorder::RingSnapshot;
    use super::*;

    fn sample_snapshot() -> TraceSnapshot {
        let mut snap = TraceSnapshot::default();
        let events = vec![
            Event {
                ts_ns: 2_000,
                kind: EventKind::FrameTx,
                a: 4,
                b: 0,
                c: 7,
            },
            Event {
                ts_ns: 5_000,
                kind: EventKind::EngineLock,
                a: 0,
                b: 1,
                c: 3_000,
            },
        ];
        snap.rings.push(RingSnapshot {
            tid: 0,
            name: String::from("main \"thread\""),
            dropped: 2,
            events,
        });
        snap
    }

    #[test]
    fn chrome_trace_is_valid_shape() {
        let json = chrome_trace(&sample_snapshot());
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"name\":\"frame_tx\""));
        assert!(json.contains("\"ph\":\"i\""));
        // The span event draws a duration.
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":3.000"));
        // ts of the span = (5000 - 3000) ns = 2 us.
        assert!(json.contains("\"ts\":2.000,\"dur\""));
        // Thread name metadata, with the quote escaped.
        assert!(json.contains("main \\\"thread\\\""));
        assert!(json.contains("\"dropped\":2"));
        // Balanced braces — cheap structural sanity without a JSON parser.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn text_dump_merges_and_labels() {
        let txt = text_dump(&sample_snapshot());
        assert!(txt.contains("frame_tx"));
        assert!(txt.contains("engine_lock"));
        assert!(txt.contains("2 overwritten"));
        let tx_pos = txt.find("frame_tx").unwrap();
        let lock_pos = txt.find("engine_lock").unwrap();
        assert!(tx_pos < lock_pos, "sorted by timestamp");
    }

    #[test]
    fn empty_snapshot_exports_cleanly() {
        let empty = TraceSnapshot::default();
        let json = chrome_trace(&empty);
        assert!(json.contains('[') && json.contains(']'));
        let txt = text_dump(&empty);
        assert!(txt.contains("0 events"));
    }
}
