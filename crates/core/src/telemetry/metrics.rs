//! The metrics plane: lock-free counters and log-bucketed histograms.
//!
//! Both types are recordable from any number of threads concurrently (relaxed
//! atomic adds — a sample is never lost), snapshot-able without stopping
//! traffic, and mergeable the way [`EndpointStats::merge`](crate::EndpointStats::merge)
//! is: sum the parts, get the whole.  With the
//! `telemetry` feature off both compile to zero-sized no-ops.
//!
//! [`LogHistogram`] buckets by power of two: bucket 0 holds the value 0 and
//! bucket `i` (1..=64) holds values in `[2^(i-1), 2^i - 1]`.  That gives
//! full-range coverage (ns to hours, bytes to TiB) in 65 words with a
//! recording cost of one `leading_zeros` and one relaxed `fetch_add`.
//!
//! The atomics come from `ppmsg_check::sync::atomic`, so under
//! `--cfg ppmsg_check` a model run can exhaustively interleave concurrent
//! `record` / `snapshot` pairs (see `crates/core/tests/model_telemetry.rs`);
//! in ordinary builds they are plain `std` atomics.

// ppmsg-lint: deny(hot_path_alloc) — counters/histograms are bumped on the steady-state path.

#[cfg(feature = "telemetry")]
use ppmsg_check::sync::atomic::{AtomicU64, Ordering};
use std::fmt;

/// Number of histogram buckets: the zero bucket plus one per power of two.
pub const HIST_BUCKETS: usize = 65;

/// The bucket `value` lands in: 0 for 0, else `64 - leading_zeros`.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive `(low, high)` value bounds of bucket `i`.
///
/// # Panics
/// If `i >= HIST_BUCKETS`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < HIST_BUCKETS);
    match i {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (i - 1), (1 << i) - 1),
    }
}

/// A monotonically increasing event count, recordable from any thread.
/// Zero-sized with the `telemetry` feature off.
#[derive(Debug, Default)]
pub struct Counter {
    #[cfg(feature = "telemetry")]
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter {
            #[cfg(feature = "telemetry")]
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "telemetry"))]
        let _ = n;
        #[cfg(feature = "telemetry")]
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds 1 and returns the *previous* count — a sampling ticket (e.g.
    /// `tick() % 64 == 0` measures one interaction in 64).  Always 0 with
    /// the feature off.
    #[inline]
    pub fn tick(&self) -> u64 {
        #[cfg(feature = "telemetry")]
        {
            self.value.fetch_add(1, Ordering::Relaxed)
        }
        #[cfg(not(feature = "telemetry"))]
        0
    }

    /// The current count (0 with the feature off).
    pub fn get(&self) -> u64 {
        #[cfg(feature = "telemetry")]
        {
            self.value.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "telemetry"))]
        0
    }
}

/// A lock-free log-bucketed histogram of `u64` samples (latencies in ns,
/// sizes in bytes, queue depths).  See the [module docs](self) for the
/// bucketing scheme.  Zero-sized with the `telemetry` feature off.
#[derive(Debug)]
pub struct LogHistogram {
    #[cfg(feature = "telemetry")]
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        #[cfg(feature = "telemetry")]
        {
            LogHistogram {
                buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            }
        }
        #[cfg(not(feature = "telemetry"))]
        LogHistogram {}
    }

    /// Records one sample.  A relaxed add — concurrent recorders never lose
    /// a sample.
    #[inline]
    pub fn record(&self, value: u64) {
        #[cfg(not(feature = "telemetry"))]
        let _ = value;
        #[cfg(feature = "telemetry")]
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the bucket counts without stopping recorders.  Buckets are read
    /// independently (relaxed), so a snapshot racing a `record` may or may
    /// not include that sample — but every sample lands in exactly one later
    /// snapshot, and counts never decrease.
    pub fn snapshot(&self) -> HistogramSnapshot {
        #[cfg(feature = "telemetry")]
        {
            let mut out = HistogramSnapshot::default();
            for (slot, bucket) in out.buckets.iter_mut().zip(self.buckets.iter()) {
                *slot = bucket.load(Ordering::Relaxed);
            }
            out
        }
        #[cfg(not(feature = "telemetry"))]
        HistogramSnapshot::default()
    }
}

/// A point-in-time copy of a [`LogHistogram`]'s buckets: plain data, mergeable
/// and queryable.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Sample count per bucket; see [`bucket_bounds`] for value ranges.
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Total samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Adds `other`'s buckets into `self` — same shape as
    /// [`EndpointStats::merge`](crate::EndpointStats::merge): merging shard
    /// snapshots yields the engine-wide distribution.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`), or 0 if empty.  `quantile_bound(1.0)` bounds the
    /// maximum sample.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bounds(i).1;
            }
        }
        bucket_bounds(HIST_BUCKETS - 1).1
    }
}

impl fmt::Display for HistogramSnapshot {
    /// Compact one-line summary: `n=… p50≤… p99≤… max≤…`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} p50<={} p99<={} max<={}",
            self.count(),
            self.quantile_bound(0.50),
            self.quantile_bound(0.99),
            self.quantile_bound(1.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_matches_bounds() {
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_of(lo), i);
            assert_eq!(bucket_of(hi), i);
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn record_snapshot_quantiles() {
        let h = LogHistogram::new();
        for v in [0u64, 1, 1, 7, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 6);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 2);
        assert_eq!(s.buckets[3], 1); // 7 in [4,7]
        assert_eq!(s.quantile_bound(0.0), 0);
        assert!(s.quantile_bound(1.0) >= 1_000_000);
        // p50: the 3rd of 6 samples is one of the two 1s → bound 1.
        assert_eq!(s.quantile_bound(0.5), 1);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn merge_is_bucketwise_sum() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        a.record(5);
        b.record(5);
        b.record(100);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 3);
        assert_eq!(m.buckets[bucket_of(5)], 2);
        assert_eq!(m.buckets[bucket_of(100)], 1);
    }

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        #[cfg(feature = "telemetry")]
        assert_eq!(c.get(), 5);
        #[cfg(not(feature = "telemetry"))]
        assert_eq!(c.get(), 0);
    }
}
