//! The trace event taxonomy: fixed-size POD records the flight recorder
//! stores.
//!
//! Every event is 32 bytes — a nanosecond timestamp, a kind byte, and three
//! integer arguments whose meaning depends on the kind (documented per
//! variant on [`EventKind`]).  Events carry no strings and no heap data so
//! recording them never allocates; names and argument labels are attached at
//! export time ([`super::export`]).

// ppmsg-lint: deny(hot_path_alloc) — events are recorded inside the steady-state send/recv path.

/// What happened.  Argument meanings are given per variant as `a` / `b` / `c`
/// (two 32-bit and one 64-bit payload word; unused arguments are 0).
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// An operation was posted. `a` = op slot with bit 31 set for sends,
    /// `b` = tag (low 32 bits), `c` = message length in bytes.
    OpPosted = 0,
    /// A posted receive matched an arrival. `a` = recv op slot, `b` = tag,
    /// `c` = matched message length.
    OpMatched = 1,
    /// An operation completed. `a` = op slot with bit 31 set for sends,
    /// `b` = 1 on error/truncation, `c` = transferred length.
    OpCompleted = 2,
    /// An ARQ frame was handed to the wire. `a` = sequence number (data) or
    /// cumulative-ack point (ack/sack), `b` = frame kind
    /// ([`frame_kind`] codes), `c` = destination peer id.
    FrameTx = 3,
    /// An ARQ frame arrived. `a` = sequence / ack point, `b` = frame kind,
    /// `c` = source peer id.
    FrameRx = 4,
    /// A data frame was retransmitted. `a` = sequence number, `b` = 1 for a
    /// SACK-triggered fast retransmit, 0 for an RTO expiry, `c` = peer id if
    /// known (0 inside the channel layer).
    FrameRetransmit = 5,
    /// A SACK revealed a receive-window hole. `a` = first missing sequence,
    /// `b` = number of frames selectively acked beyond it.
    SackHole = 6,
    /// A timer was armed. `a` = timer generation, `b` = delay in
    /// microseconds, `c` = peer id (engine timers) or wheel slot (the
    /// facade's sleep wheel).
    TimerArm = 7,
    /// A timer fired. `a` = timer generation, `c` = peer id (engine) or
    /// wheel slot (facade).
    TimerFire = 8,
    /// A timer fired after its generation was superseded (lazy cancellation).
    /// `a` = stale generation, `c` = peer id (engine) or wheel slot (facade).
    TimerStale = 9,
    /// A channel exhausted its retransmission budget and failed.
    /// `a` = retry limit, `c` = peer id.
    ChannelFail = 10,
    /// One reactor poll batch was processed. `a` = frames received,
    /// `b` = frames sent, `c` = engine-lock hold in nanoseconds (drawn as a
    /// duration span by the chrome exporter).
    ReactorBatch = 11,
    /// A task was spawned onto the executor. `c` = live-task count after
    /// the spawn.
    ExecutorSpawn = 12,
    /// A worker stole from a sibling. `a` = thief worker, `b` = victim
    /// worker, `c` = tasks stolen.
    ExecutorSteal = 13,
    /// A worker found no work and parked. `a` = worker index.
    ExecutorPark = 14,
    /// An engine (shard) lock was held. `a` = context ([`lock_ctx`] codes),
    /// `b` = shard index, `c` = hold time in nanoseconds (drawn as a
    /// duration span by the chrome exporter).
    EngineLock = 15,
}

/// Number of distinct [`EventKind`]s.
pub const KIND_COUNT: usize = 16;

/// `b`-argument codes for [`EventKind::FrameTx`] / [`EventKind::FrameRx`].
pub mod frame_kind {
    /// A data frame.
    pub const DATA: u32 = 0;
    /// A cumulative acknowledgement.
    pub const ACK: u32 = 1;
    /// A selective acknowledgement.
    pub const SACK: u32 = 2;
}

/// `a`-argument codes for [`EventKind::EngineLock`]: which path held the lock.
pub mod lock_ctx {
    /// A sharded-engine interaction (intranode post / packet / timer).
    pub const SHARD: u32 = 0;
    /// A UDP endpoint engine call.
    pub const UDP: u32 = 1;
    /// A reactor user-thread engine call.
    pub const REACTOR_USER: u32 = 2;
    /// The reactor loop processing one receive batch.
    pub const REACTOR_BATCH: u32 = 3;
}

/// Bit set in op-slot arguments (`a` of [`EventKind::OpPosted`] /
/// [`EventKind::OpCompleted`]) to mark a send operation.
pub const OP_SEND_BIT: u32 = 1 << 31;

impl EventKind {
    /// Stable lower-snake name used by both exporters.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::OpPosted => "op_posted",
            EventKind::OpMatched => "op_matched",
            EventKind::OpCompleted => "op_completed",
            EventKind::FrameTx => "frame_tx",
            EventKind::FrameRx => "frame_rx",
            EventKind::FrameRetransmit => "frame_retransmit",
            EventKind::SackHole => "sack_hole",
            EventKind::TimerArm => "timer_arm",
            EventKind::TimerFire => "timer_fire",
            EventKind::TimerStale => "timer_stale",
            EventKind::ChannelFail => "channel_fail",
            EventKind::ReactorBatch => "reactor_batch",
            EventKind::ExecutorSpawn => "executor_spawn",
            EventKind::ExecutorSteal => "executor_steal",
            EventKind::ExecutorPark => "executor_park",
            EventKind::EngineLock => "engine_lock",
        }
    }

    /// Inverse of `kind as u8`; `None` for out-of-range bytes (a torn ring
    /// slot read during an unquiesced snapshot).
    pub fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            0 => EventKind::OpPosted,
            1 => EventKind::OpMatched,
            2 => EventKind::OpCompleted,
            3 => EventKind::FrameTx,
            4 => EventKind::FrameRx,
            5 => EventKind::FrameRetransmit,
            6 => EventKind::SackHole,
            7 => EventKind::TimerArm,
            8 => EventKind::TimerFire,
            9 => EventKind::TimerStale,
            10 => EventKind::ChannelFail,
            11 => EventKind::ReactorBatch,
            12 => EventKind::ExecutorSpawn,
            13 => EventKind::ExecutorSteal,
            14 => EventKind::ExecutorPark,
            15 => EventKind::EngineLock,
            _ => return None,
        })
    }

    /// `true` for kinds whose `c` argument is a duration in nanoseconds
    /// (exported as a chrome `"X"` span instead of an instant).
    pub fn is_span(self) -> bool {
        matches!(self, EventKind::ReactorBatch | EventKind::EngineLock)
    }
}

/// One decoded trace event, as returned by a recorder snapshot.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds on the recording thread's trace clock (see
    /// [`super::clock`]): deterministic virtual time on sim threads,
    /// monotonic-since-anchor on host threads.
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// First kind-specific argument.
    pub a: u32,
    /// Second kind-specific argument.
    pub b: u32,
    /// Third (wide) kind-specific argument.
    pub c: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trips_through_u8() {
        for v in 0..KIND_COUNT as u8 {
            let kind = EventKind::from_u8(v).expect("in-range kind");
            assert_eq!(kind as u8, v);
            assert!(!kind.name().is_empty());
        }
        assert_eq!(EventKind::from_u8(KIND_COUNT as u8), None);
        assert_eq!(EventKind::from_u8(255), None);
    }

    #[test]
    fn event_is_compact() {
        assert!(
            std::mem::size_of::<Event>() <= 32,
            "events must stay POD-small"
        );
    }
}
