//! Flight recorder + metrics plane: always-on observability for every
//! backend.
//!
//! Three pieces, all feature-gated behind `telemetry` (on by default):
//!
//! * **Flight recorder** ([`recorder`]) — per-thread fixed-capacity rings of
//!   compact 32-byte POD trace [`Event`]s covering the whole stack: op
//!   posted/matched/completed, frame tx/rx/retransmit, SACK holes, timer
//!   arm/fire/stale, channel failures, reactor batches, executor
//!   spawn/steal/park, engine-lock holds.  Recording is lock-free and
//!   allocation-free on the steady path (proven by `tests/zero_alloc.rs`).
//! * **Metrics plane** ([`metrics`]) — lock-free [`Counter`]s and
//!   log-bucketed [`LogHistogram`]s, snapshot-able without stopping traffic
//!   and mergeable across shards like
//!   [`EndpointStats::merge`](crate::EndpointStats::merge).
//! * **Exporters** ([`export`]) — a chrome://tracing JSON dump and a
//!   plain-text dump of any [`TraceSnapshot`].  The chaos harness dumps a
//!   trace next to its replay instructions when a seed fails; the wedge
//!   detector prints the stalled channel's counters.
//!
//! ## Time
//!
//! Event timestamps go through [`clock`], the one sanctioned time source in
//! `ppmsg_core`: simulators stamp events with their deterministic virtual
//! clock ([`clock::set_virtual_us`]), host backends latch one monotonic read
//! per batch ([`clock::hold`]).  The `ppmsg-lint` `virtual_clock` and
//! `telemetry_clock` rules enforce that nothing else in the engine or this
//! module reads a wall clock.
//!
//! ## Cost
//!
//! With the feature **on** (default): one relaxed load plus a ring write per
//! event (~tens of ns), zero allocation; the recorder-overhead bench
//! (`telemetry_overhead`, gated <10% in CI) keeps it honest.  Recording can
//! also be switched off at runtime ([`recorder::set_enabled`]), leaving a
//! single relaxed load per call site.  With the feature **off**
//! (`--no-default-features`): [`event()`] is an empty `#[inline]` fn, metric
//! types are zero-sized, and the whole plane compiles to nothing.

// ppmsg-lint: deny(hot_path_alloc) — this module is called from the steady-state send/recv path.

pub mod clock;
pub mod event;
pub mod export;
pub mod metrics;
pub mod recorder;

pub use event::{frame_kind, lock_ctx, Event, EventKind, KIND_COUNT, OP_SEND_BIT};
pub use metrics::{
    bucket_bounds, bucket_of, Counter, HistogramSnapshot, LogHistogram, HIST_BUCKETS,
};
pub use recorder::{event, snapshot, RingSnapshot, TraceSnapshot};
