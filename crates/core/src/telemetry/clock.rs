//! Trace time source: one abstraction over virtual (simulated) and wall
//! (host) clocks.
//!
//! The engine is sans-I/O and never reads a clock; the `ppmsg-lint`
//! `virtual_clock` rule enforces that by banning `Instant::now` /
//! `SystemTime::now` in protocol files.  Trace events still need timestamps,
//! so this module owns the *only* sanctioned clock reads in `ppmsg_core` and
//! lets each backend pick the time base its thread stamps events with:
//!
//! * **Sim backends** ([`ChaosCluster`](https://docs.rs/) and friends) call
//!   [`set_virtual_us`] whenever their virtual clock advances.  Events become
//!   deterministic — the same seed produces byte-identical trace timestamps.
//! * **Host backends** (reactor, intranode, UDP) call [`hold`] at batch
//!   boundaries.  One monotonic clock read is amortized over every event the
//!   batch records, keeping per-event cost to a thread-local load.
//! * **Unmanaged threads** (unit tests poking a bare `Endpoint`) fall back
//!   to reading the monotonic clock per event.
//!
//! The mode is thread-local: a chaos router thread can be virtual while a
//! reactor loop in the same process stays on wall time.  All stamps are
//! nanoseconds; wall stamps are relative to a process-wide anchor taken on
//! first use, virtual stamps are the simulator's microsecond clock times
//! 1000.

// ppmsg-lint: deny(hot_path_alloc) — event stamping runs inside the steady-state send/recv path.

#[cfg(feature = "telemetry")]
use std::cell::Cell;
#[cfg(feature = "telemetry")]
use std::sync::OnceLock;
#[cfg(feature = "telemetry")]
use std::time::Instant;

/// Thread-local time base for trace stamps.
#[cfg(feature = "telemetry")]
#[derive(Copy, Clone)]
enum Source {
    /// Read the monotonic clock on every stamp (unmanaged threads).
    Wall,
    /// A [`hold`] boundary was crossed but nothing has stamped yet: the
    /// first stamp latches one monotonic read ([`Held`](Source::Held)).
    /// Batches that record no events never touch the clock.
    Pending,
    /// Monotonic nanoseconds latched by the first stamp after a [`hold`];
    /// reused until the next hold.
    Held(u64),
    /// Virtual nanoseconds owned by a simulator ([`set_virtual_us`]).
    Virtual(u64),
}

#[cfg(feature = "telemetry")]
thread_local! {
    static SOURCE: Cell<Source> = const { Cell::new(Source::Wall) };
}

#[cfg(feature = "telemetry")]
fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    // The process-wide zero point for wall stamps.  The only clock reads in
    // `ppmsg_core` live in this module, behind the time-source abstraction.
    *ANCHOR.get_or_init(Instant::now) // ppmsg-lint: allow(virtual_clock)
}

/// Monotonic nanoseconds since the process-wide trace anchor.  Always reads
/// the real clock, regardless of the thread's trace time base — use it for
/// *duration* measurements (lock hold, batch processing) on host threads.
/// Returns 0 with the `telemetry` feature off.
#[inline]
pub fn mono_ns() -> u64 {
    #[cfg(feature = "telemetry")]
    {
        let start = anchor();
        Instant::now().duration_since(start).as_nanos() as u64 // ppmsg-lint: allow(virtual_clock)
    }
    #[cfg(not(feature = "telemetry"))]
    0
}

/// The current thread's trace timestamp in nanoseconds: virtual time if a
/// simulator owns this thread, the held stamp between [`hold`] calls on host
/// threads, or a fresh monotonic read otherwise.
#[inline]
pub fn now_ns() -> u64 {
    #[cfg(feature = "telemetry")]
    {
        match SOURCE.with(Cell::get) {
            Source::Wall => mono_ns(),
            Source::Pending => SOURCE.with(|s| {
                let ns = mono_ns();
                s.set(Source::Held(ns));
                ns
            }),
            Source::Held(ns) | Source::Virtual(ns) => ns,
        }
    }
    #[cfg(not(feature = "telemetry"))]
    0
}

/// Opens a new stamp batch: the *first* event recorded after this call
/// latches one monotonic clock read which every later event in the batch
/// reuses.  Host backends call this once per batch (reactor poll iteration,
/// intranode post, executor task); the latch is lazy, so a batch that
/// records nothing — the common case with sampling, or with the recorder
/// disabled — costs a thread-local store and never touches the clock.
/// No-op on a thread owned by a virtual clock.
#[inline]
pub fn hold() {
    #[cfg(feature = "telemetry")]
    SOURCE.with(|s| {
        if !matches!(s.get(), Source::Virtual(_)) {
            s.set(Source::Pending);
        }
    });
}

/// Hands this thread's trace stamps to a virtual clock at `now_us`
/// microseconds.  Simulators call this every time their clock advances (and
/// on entry to user-facing calls) so events are stamped deterministically.
/// The thread stays virtual until [`set_wall`].
#[inline]
pub fn set_virtual_us(now_us: u64) {
    #[cfg(not(feature = "telemetry"))]
    let _ = now_us;
    #[cfg(feature = "telemetry")]
    SOURCE.with(|s| s.set(Source::Virtual(now_us.saturating_mul(1000))));
}

/// Returns this thread's trace stamps to the monotonic wall clock.
#[inline]
pub fn set_wall() {
    #[cfg(feature = "telemetry")]
    SOURCE.with(|s| s.set(Source::Wall));
}

/// `true` if this thread's stamps come from a simulator's virtual clock.
#[inline]
pub fn is_virtual() -> bool {
    #[cfg(feature = "telemetry")]
    {
        SOURCE.with(|s| matches!(s.get(), Source::Virtual(_)))
    }
    #[cfg(not(feature = "telemetry"))]
    false
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;

    #[test]
    fn virtual_stamps_are_exact_and_sticky() {
        set_virtual_us(42);
        assert_eq!(now_ns(), 42_000);
        assert!(is_virtual());
        hold(); // must not displace the virtual clock
        assert_eq!(now_ns(), 42_000);
        set_virtual_us(43);
        assert_eq!(now_ns(), 43_000);
        set_wall();
        assert!(!is_virtual());
    }

    #[test]
    fn held_stamps_are_stable_between_holds() {
        set_wall();
        hold();
        let a = now_ns();
        let b = now_ns();
        assert_eq!(a, b, "held stamp must not advance between holds");
        hold();
        assert!(now_ns() >= a);
        set_wall();
        let w1 = now_ns();
        let w2 = now_ns();
        assert!(w2 >= w1, "wall stamps are monotonic");
    }
}
