//! The flight recorder: per-thread fixed-capacity rings of trace events.
//!
//! Every thread that records gets its own preallocated ring (registered in a
//! process-wide registry on first use), so the hot path is: one relaxed
//! enabled-check, one thread-local lookup, four relaxed stores, one release
//! store — no locks, no allocation, no cross-thread traffic.  Rings overwrite
//! their oldest events when full, keeping the most recent
//! [`ring_capacity`]() events per thread — exactly what a post-mortem wants.
//!
//! ## Snapshot consistency
//!
//! [`snapshot`] reads other threads' rings while they may still be writing.
//! The single writer publishes each slot with a release store of the ring
//! head, so every event *below* the observed head is fully written; the only
//! hazard is a writer lapping the reader mid-snapshot (capacity or more
//! events recorded during the copy), which can tear a slot.  Torn slots are
//! detected by their out-of-range kind byte and dropped.  Snapshots taken at
//! quiescence (a failed chaos seed, a wedge report, test teardown) are exact.

// ppmsg-lint: deny(hot_path_alloc) — `event` is called from the steady-state send/recv path.

#[cfg(feature = "telemetry")]
use super::clock;
use super::event::{Event, EventKind};

#[cfg(feature = "telemetry")]
use std::cell::OnceCell;
#[cfg(feature = "telemetry")]
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
#[cfg(feature = "telemetry")]
use std::sync::{Arc, Mutex, OnceLock};

/// Events retained per thread.  2^14 events × 32 bytes = 512 KiB per
/// recording thread.  Must stay a power of two: the ring indexes with a
/// mask, not a division, to keep the per-event cost at a few nanoseconds.
pub const DEFAULT_RING_CAPACITY: usize = 16 * 1024;

#[cfg(feature = "telemetry")]
const _: () = assert!(DEFAULT_RING_CAPACITY.is_power_of_two());

#[cfg(feature = "telemetry")]
struct Slot {
    ts: AtomicU64,
    ab: AtomicU64,
    c: AtomicU64,
    kind: AtomicU64,
}

#[cfg(feature = "telemetry")]
struct Ring {
    tid: u32,
    name: String,
    /// Total events ever recorded; `head % cap` is the next slot.  Written
    /// only by the owning thread, released after the slot words.
    head: AtomicU64,
    /// Events below this head index are logically discarded ([`reset`]).
    trim: AtomicU64,
    slots: Box<[Slot]>,
}

#[cfg(feature = "telemetry")]
impl Ring {
    fn push(&self, ts: u64, kind: EventKind, a: u32, b: u32, c: u64) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head & (DEFAULT_RING_CAPACITY as u64 - 1)) as usize];
        // Tear-detection: readers drop slots whose kind byte is out of range,
        // so park an invalid kind in the slot while its words are in flux.
        slot.kind.store(u64::MAX, Ordering::Relaxed);
        slot.ts.store(ts, Ordering::Relaxed);
        slot.ab
            .store(((a as u64) << 32) | b as u64, Ordering::Relaxed);
        slot.c.store(c, Ordering::Relaxed);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        self.head.store(head + 1, Ordering::Release);
    }
}

#[cfg(feature = "telemetry")]
static ENABLED: AtomicBool = AtomicBool::new(true);
#[cfg(feature = "telemetry")]
static NEXT_TID: AtomicU32 = AtomicU32::new(0);

#[cfg(feature = "telemetry")]
fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

#[cfg(feature = "telemetry")]
thread_local! {
    static RING: OnceCell<Arc<Ring>> = const { OnceCell::new() };
}

#[cfg(feature = "telemetry")]
fn register_current_thread() -> Arc<Ring> {
    // One-time per thread: allocations here land outside the measured steady
    // state (first event during warmup).
    let name = std::thread::current()
        .name()
        .unwrap_or("unnamed")
        .to_owned();
    let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    let mut slots = Vec::with_capacity(DEFAULT_RING_CAPACITY);
    for _ in 0..DEFAULT_RING_CAPACITY {
        slots.push(Slot {
            ts: AtomicU64::new(0),
            ab: AtomicU64::new(0),
            c: AtomicU64::new(0),
            kind: AtomicU64::new(u64::MAX),
        });
    }
    let ring = Arc::new(Ring {
        tid,
        name,
        head: AtomicU64::new(0),
        trim: AtomicU64::new(0),
        slots: slots.into_boxed_slice(),
    });
    registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(Arc::clone(&ring));
    ring
}

/// Records one trace event on the calling thread's ring, stamped with the
/// thread's trace clock (see [`super::clock`]).  Zero-allocation after the
/// thread's first event; a single relaxed load when recording is
/// [disabled](set_enabled); nothing at all with the `telemetry` feature off.
#[inline]
pub fn event(kind: EventKind, a: u32, b: u32, c: u64) {
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = (kind, a, b, c);
    }
    #[cfg(feature = "telemetry")]
    {
        if !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        let ts = clock::now_ns();
        // `try_with` so events fired during TLS teardown are dropped instead
        // of panicking.
        let _ = RING.try_with(|cell| {
            cell.get_or_init(register_current_thread)
                .push(ts, kind, a, b, c);
        });
    }
}

/// Turns recording on or off process-wide.  Off, [`event`] costs one relaxed
/// load.  Returns the previous state.
pub fn set_enabled(on: bool) -> bool {
    #[cfg(feature = "telemetry")]
    {
        ENABLED.swap(on, Ordering::Relaxed)
    }
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = on;
        false
    }
}

/// `true` if recording is enabled (always `false` with the feature off).
pub fn enabled() -> bool {
    #[cfg(feature = "telemetry")]
    {
        ENABLED.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "telemetry"))]
    false
}

/// Forces the calling thread's ring to exist without recording anything.
/// Call during warmup to move the one-time ring allocation out of an
/// allocation-measured section.
pub fn touch_current_thread() {
    #[cfg(feature = "telemetry")]
    let _ = RING.try_with(|cell| {
        cell.get_or_init(register_current_thread);
    });
}

/// One thread's decoded ring contents, oldest first.
#[derive(Debug, Clone)]
pub struct RingSnapshot {
    /// Recorder-assigned dense thread id (stable across snapshots).
    pub tid: u32,
    /// OS thread name at registration, `"unnamed"` if none.
    pub name: String,
    /// Events overwritten before this snapshot could see them.
    pub dropped: u64,
    /// The retained events, oldest first.
    pub events: Vec<Event>,
}

/// A point-in-time copy of every thread's ring. Produce one with
/// [`snapshot`], render it with [`super::export`].
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// One entry per thread that has recorded at least one event.
    pub rings: Vec<RingSnapshot>,
}

impl TraceSnapshot {
    /// Total events across all rings.
    pub fn len(&self) -> usize {
        self.rings.iter().map(|r| r.events.len()).sum()
    }

    /// `true` if no thread recorded anything.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All events merged across threads as `(tid, event)`, sorted by
    /// timestamp (ties broken by tid then ring order).
    pub fn merged(&self) -> Vec<(u32, Event)> {
        let mut all = Vec::with_capacity(self.len());
        for ring in &self.rings {
            for event in &ring.events {
                all.push((ring.tid, *event));
            }
        }
        all.sort_by_key(|(tid, e)| (e.ts_ns, *tid));
        all
    }

    /// `true` if any ring holds an event of `kind`.
    pub fn has_kind(&self, kind: EventKind) -> bool {
        self.rings
            .iter()
            .any(|r| r.events.iter().any(|e| e.kind == kind))
    }
}

/// Copies every registered ring without stopping writers.  See the module
/// docs for the (weak, detectable) consistency story; snapshots of quiesced
/// rings are exact.  Empty with the `telemetry` feature off.
pub fn snapshot() -> TraceSnapshot {
    #[cfg(not(feature = "telemetry"))]
    {
        TraceSnapshot::default()
    }
    #[cfg(feature = "telemetry")]
    {
        let rings: Vec<Arc<Ring>> = registry()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(Arc::clone)
            .collect();
        let mut out = TraceSnapshot::default();
        for ring in rings {
            let head = ring.head.load(Ordering::Acquire);
            let trim = ring.trim.load(Ordering::Acquire);
            let cap = ring.slots.len() as u64;
            let start = head.saturating_sub(cap).max(trim);
            if head == start {
                continue;
            }
            let mut events = Vec::with_capacity((head - start) as usize);
            for idx in start..head {
                let slot = &ring.slots[(idx % cap) as usize];
                let kind_raw = slot.kind.load(Ordering::Relaxed);
                let Some(kind) = u8::try_from(kind_raw).ok().and_then(EventKind::from_u8) else {
                    continue; // torn slot (writer lapped us mid-copy)
                };
                let ab = slot.ab.load(Ordering::Relaxed);
                events.push(Event {
                    ts_ns: slot.ts.load(Ordering::Relaxed),
                    kind,
                    a: (ab >> 32) as u32,
                    b: ab as u32,
                    c: slot.c.load(Ordering::Relaxed),
                });
            }
            out.rings.push(RingSnapshot {
                tid: ring.tid,
                name: ring.name.clone(),
                dropped: start - trim,
                events,
            });
        }
        out.rings.sort_by_key(|r| r.tid);
        out
    }
}

/// Logically clears every ring (events recorded so far disappear from future
/// snapshots; writers are untouched).  Tests use this to scope assertions to
/// one scenario.
pub fn reset() {
    #[cfg(feature = "telemetry")]
    for ring in registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
    {
        ring.trim
            .store(ring.head.load(Ordering::Acquire), Ordering::Release);
    }
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;

    // Recorder state is process-global and tests share threads, so scope
    // every assertion to events this test just recorded via reset() +
    // distinctive arguments.

    #[test]
    fn records_and_snapshots_in_order() {
        reset();
        clock::set_virtual_us(7);
        event(EventKind::FrameTx, 1, 0, 99);
        event(EventKind::FrameRx, 2, 1, 99);
        clock::set_wall();
        let snap = snapshot();
        let mine: Vec<&Event> = snap
            .rings
            .iter()
            .flat_map(|r| r.events.iter())
            .filter(|e| e.c == 99)
            .collect();
        assert_eq!(mine.len(), 2);
        assert_eq!(mine[0].kind, EventKind::FrameTx);
        assert_eq!(mine[0].ts_ns, 7_000);
        assert_eq!(mine[0].a, 1);
        assert_eq!(mine[1].kind, EventKind::FrameRx);
        assert_eq!(mine[1].b, 1);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        reset();
        for i in 0..(DEFAULT_RING_CAPACITY as u64 + 10) {
            event(EventKind::TimerArm, 0, 0, i | (1 << 60));
        }
        let snap = snapshot();
        let ring = snap
            .rings
            .iter()
            .find(|r| r.events.iter().any(|e| e.c & (1 << 60) != 0))
            .expect("ring with this test's events");
        assert!(ring.events.len() <= DEFAULT_RING_CAPACITY);
        assert!(ring.dropped >= 10, "oldest events counted as dropped");
        let last = ring.events.last().unwrap();
        assert_eq!(last.c, (DEFAULT_RING_CAPACITY as u64 + 9) | (1 << 60));
    }

    #[test]
    fn disabled_recording_drops_events() {
        reset();
        let was = set_enabled(false);
        event(EventKind::ChannelFail, 0, 0, 0xDEAD);
        set_enabled(was);
        let snap = snapshot();
        assert!(!snap
            .rings
            .iter()
            .any(|r| r.events.iter().any(|e| e.c == 0xDEAD)));
    }

    #[test]
    fn reset_hides_prior_events() {
        event(EventKind::SackHole, 5, 5, 0xBEEF);
        reset();
        let snap = snapshot();
        assert!(!snap
            .rings
            .iter()
            .any(|r| r.events.iter().any(|e| e.c == 0xBEEF)));
    }
}
