//! Error type shared by the protocol engine and its backends.

use crate::types::{ProcessId, Tag};
use std::fmt;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the protocol engine.
///
/// The engine is written so that misuse is reported rather than panicking:
/// a malformed packet, an oversized receive, or a peer the configuration
/// forbids all map to a variant here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A packet's fixed-size header was cut short on the wire.  All decode
    /// errors are field-carrying (no `String`) so the per-packet decode path
    /// never allocates just to reject garbage.
    TruncatedHeader {
        /// Bytes a full header requires.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// A packet's payload was shorter than its header declared.
    TruncatedPayload {
        /// Payload bytes the header declared.
        need: usize,
        /// Payload bytes actually present.
        have: usize,
    },
    /// A packet was constructed with a payload whose length contradicts its
    /// header.
    PayloadLenMismatch {
        /// Payload length the header declares.
        declared: usize,
        /// Length of the payload actually supplied.
        actual: usize,
    },
    /// A go-back-N frame was too short to carry its sequencing header.
    TruncatedFrame {
        /// Bytes actually available (a frame header needs 9).
        have: usize,
    },
    /// A go-back-N frame carried an unrecognised kind byte.
    UnknownFrameKind {
        /// The unrecognised kind byte.
        byte: u8,
    },
    /// A SACK frame declared more bitmap words than the wire format allows
    /// (see [`MAX_SACK_WORDS`](crate::reliability::MAX_SACK_WORDS)).
    SackTooWide {
        /// The declared word count.
        words: u8,
    },
    /// A packet carried an unrecognised kind byte.
    UnknownPacketKind {
        /// The unrecognised kind byte.
        byte: u8,
    },
    /// A receive was posted with a buffer smaller than the arriving message.
    ReceiveTooSmall {
        /// Number of bytes the posted receive can hold.
        posted: usize,
        /// Number of bytes the sender is transferring.
        incoming: usize,
    },
    /// The pushed buffer cannot accept more unexpected data and the packet
    /// was dropped (the sender's go-back-N logic will retransmit it).
    PushedBufferOverflow {
        /// Bytes that were attempted to be stored.
        needed: usize,
        /// Bytes currently free in the pushed buffer.
        available: usize,
    },
    /// A pull request referenced a message this endpoint never registered.
    UnknownMessage {
        /// The peer that issued the request.
        peer: ProcessId,
        /// The raw message id from the request.
        msg_id: u64,
    },
    /// A send or receive was posted through the transport front-end with a
    /// tag in the reserved (collective) half of the tag space — see
    /// [`crate::types::COLLECTIVE_TAG_BIT`].
    ReservedTag {
        /// The offending tag.
        tag: Tag,
    },
    /// A collective operation was invoked in a way that violates its
    /// group-uniform contract (bad root rank, wrong contribution size,
    /// a non-member endpoint, a length-changing combine, ...).
    CollectiveMisuse {
        /// What contract was broken.
        what: &'static str,
    },
    /// A send or receive handle was used after it completed.
    StaleHandle,
    /// The engine was asked to send to itself.
    SelfSend {
        /// The offending process id.
        process: ProcessId,
    },
    /// No matching receive could ever complete (e.g. duplicate posting for
    /// the same `(source, tag)` pair when the configuration forbids it).
    MatchingConflict {
        /// Source whose match conflicted.
        source: ProcessId,
        /// Tag whose match conflicted.
        tag: Tag,
    },
    /// The go-back-N window is exhausted; the caller must retry after
    /// acknowledgements drain the window.
    WindowFull,
    /// The go-back-N channel to `peer` exceeded its retry budget and was
    /// declared dead.  Operations pending against the peer complete with
    /// this error instead of waiting forever.
    ChannelFailed {
        /// The unreachable peer.
        peer: ProcessId,
    },
    /// A configuration value is outside its legal range.
    InvalidConfig {
        /// Description of the invalid field.
        what: String,
    },
    /// An [`ANY_SOURCE`](crate::types::ANY_SOURCE) receive was posted on a
    /// sharded engine with more than one shard.  Matching state is
    /// partitioned by peer, so a wildcard that could match *any* peer has no
    /// home shard; post to a specific source, or configure one shard when
    /// wildcard receives are required.
    ShardedWildcard {
        /// Number of shards the engine runs.
        shards: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::TruncatedHeader { need, have } => write!(
                f,
                "malformed packet: truncated header ({have} bytes available, {need} required)"
            ),
            Error::TruncatedPayload { need, have } => write!(
                f,
                "malformed packet: truncated payload ({have} bytes present, {need} expected)"
            ),
            Error::PayloadLenMismatch { declared, actual } => write!(
                f,
                "malformed packet: payload length {actual} does not match header payload_len {declared}"
            ),
            Error::TruncatedFrame { have } => {
                write!(f, "malformed frame: {have} bytes is too short")
            }
            Error::UnknownFrameKind { byte } => {
                write!(f, "malformed frame: unknown frame kind {byte}")
            }
            Error::SackTooWide { words } => {
                write!(f, "malformed SACK frame: {words} bitmap words exceeds the maximum")
            }
            Error::UnknownPacketKind { byte } => {
                write!(f, "malformed packet: unknown packet kind {byte}")
            }
            Error::ReceiveTooSmall { posted, incoming } => write!(
                f,
                "posted receive of {posted} bytes is smaller than incoming message of {incoming} bytes"
            ),
            Error::PushedBufferOverflow { needed, available } => write!(
                f,
                "pushed buffer overflow: needed {needed} bytes, only {available} free"
            ),
            Error::UnknownMessage { peer, msg_id } => {
                write!(f, "unknown message {msg_id} referenced by {peer}")
            }
            Error::ReservedTag { tag } => write!(
                f,
                "{tag} lies in the reserved collective tag space (high bit set)"
            ),
            Error::CollectiveMisuse { what } => write!(f, "collective misuse: {what}"),
            Error::StaleHandle => write!(f, "operation handle already completed"),
            Error::SelfSend { process } => write!(f, "process {process} attempted to send to itself"),
            Error::MatchingConflict { source, tag } => {
                write!(f, "conflicting receive posted for source {source}, {tag}")
            }
            Error::WindowFull => write!(f, "go-back-N window full"),
            Error::ChannelFailed { peer } => {
                write!(f, "channel to {peer} failed after exhausting retries")
            }
            Error::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            Error::ShardedWildcard { shards } => write!(
                f,
                "ANY_SOURCE receive cannot be matched on a {shards}-shard engine \
                 (matching state is partitioned by peer)"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::PushedBufferOverflow {
            needed: 4096,
            available: 128,
        };
        let text = e.to_string();
        assert!(text.contains("4096"));
        assert!(text.contains("128"));

        let e = Error::ReceiveTooSmall {
            posted: 16,
            incoming: 64,
        };
        assert!(e.to_string().contains("16"));

        let e = Error::SelfSend {
            process: ProcessId::new(1, 1),
        };
        assert!(e.to_string().contains("p1.1"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&Error::StaleHandle);
    }
}
