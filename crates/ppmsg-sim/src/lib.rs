//! # ppmsg-sim — Push-Pull Messaging on the simulated SMP cluster
//!
//! This crate binds the sans-I/O protocol engine of `ppmsg-core` to the
//! discrete-event substrate of `simsmp` and `simnet`, reproducing the system
//! the paper evaluated: two quad Pentium Pro nodes connected by 100 Mbit/s
//! Fast Ethernet, with the protocol's four pipeline stages (transmission
//! thread invocation, data pumping, reception-handler invocation, reception
//! processing) charged against simulated processors, the memory system, the
//! NIC, and the wire.
//!
//! [`cluster::SimCluster`] is the simulation runtime: processes run small
//! scripts (compute / send / receive / time-stamp), every protocol
//! [`Action`](ppmsg_core::Action) is converted into simulated time, and the
//! clock advances event by event.
//!
//! [`experiments`] contains one harness per table/figure of the paper; the
//! `ppmsg-bench` crate and the repository's examples simply call into it.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod cluster;
pub mod experiments;
pub mod loopback;

pub use chaos::{
    seed_start_from_env, seeds_from_env, sweep, ChaosCluster, ChaosConfig, ChaosEndpoint,
    ChaosReport, ChaosStats, PartitionConfig, SeedFailure, TraceKind, TraceRecord,
};
pub use cluster::{ClusterConfig, Op, ProcessScript, RunReport, SimCluster};
pub use experiments::{
    bandwidth_sweep, btp1_sweep, btp2_sweep, early_late_test, fig3_intranode, fig4_internode,
    headline_numbers, BandwidthPoint, EarlyLateVariant, FigurePoint, HeadlineNumbers,
};
pub use loopback::{LoopbackCluster, LoopbackEndpoint};
