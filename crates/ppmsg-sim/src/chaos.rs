//! A deterministic, fault-injecting sibling of the loopback cluster.
//!
//! [`ChaosCluster`] routes the same protocol engines as
//! [`LoopbackCluster`](crate::loopback::LoopbackCluster), but every internode
//! frame crosses a **seeded fault plane**: per-link drop / duplicate /
//! reorder / delay decisions and partition-and-heal windows, all drawn from
//! RNG streams derived from one master seed ([`ChaosConfig::seed`]).  Unlike
//! the loopback router, the chaos router honors `SetTimer` / `CancelTimer`
//! through a **virtual clock**: timers become events on the same
//! deterministic event queue as frame deliveries, so go-back-N
//! retransmission actually fires and loss is recoverable — the queue is
//! drained to quiescence inside every post, fast-forwarding virtual time
//! through retransmission timeouts, which keeps the synchronous loopback
//! programming model intact.
//!
//! Reproducibility is the point: the same seed replays the same event
//! sequence byte for byte ([`ChaosCluster::trace_hash`], and full
//! [`TraceRecord`]s with [`ChaosConfig::record_trace`]).  A run that stops
//! making progress is converted into a **seed-labeled panic** by two
//! detectors: an event budget ([`ChaosConfig::max_events`]) and a wedge check
//! at quiescence (a channel with unacknowledged frames, no pending timer,
//! and no declared failure can never recover).  The [`sweep`] runner executes
//! a scenario across many seeds, catches those panics, and reports every
//! failing seed with replay instructions.

use ppmsg_core::reliability::{Frame, GbnStats};
use ppmsg_core::telemetry;
use ppmsg_core::wire::Packet;
use ppmsg_core::{
    Action, Completion, CompletionQueue, Endpoint, EndpointConfig, EndpointStats, OpId, ProcessId,
    ProtocolConfig, RawTransport, RecvBuf, RecvOp, Result, SendOp, Tag, TimerId, TruncationPolicy,
    U64Index,
};
use simnet::fault::{
    derive_seed, DelayModel, DuplicateModel, FrameFate, LinkFaults, PartitionSchedule, ReorderModel,
};
use simnet::loss::LossModel;

use bytes::{Bytes, BytesMut};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::{Arc, Mutex};
use std::task::Waker;

/// Scheduled partition behaviour of the fault plane.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionConfig {
    /// Probability that a given node pair has a partition schedule at all.
    pub pair_p: f64,
    /// Healthy-gap duration range in microseconds (inclusive).
    pub gap_us: (u64, u64),
    /// Blocked-window duration range in microseconds (inclusive).  Keep the
    /// upper bound well below `rto_us * max_retries` or scheduled partitions
    /// turn into channel failures.
    pub len_us: (u64, u64),
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            pair_p: 0.25,
            gap_us: (2_000, 100_000),
            len_us: (10_000, 120_000),
        }
    }
}

/// Configuration of one chaos run.  `seed` determines every fault decision;
/// everything else shapes the fault distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Master seed: all per-link RNG streams derive from it.
    pub seed: u64,
    /// Per-frame drop probability on internode links.
    pub drop_p: f64,
    /// Per-frame duplication probability on internode links.
    pub duplicate_p: f64,
    /// Per-frame reorder (hold-back) probability on internode links.
    pub reorder_p: f64,
    /// Maximum hold-back of a reordered frame, in microseconds.
    pub reorder_hold_us: u64,
    /// Base internode wire latency in microseconds.
    pub base_latency_us: u64,
    /// Uniform latency jitter added on top of the base, in microseconds.
    pub jitter_us: u64,
    /// Latency of intranode (shared-memory) packets, which cross no fault
    /// plane — shared memory does not lose data.
    pub intranode_latency_us: u64,
    /// Seeded partition-and-heal windows; `None` disables scheduled
    /// partitions (manual [`ChaosCluster::partition`] still works).
    pub partition: Option<PartitionConfig>,
    /// Event budget: a run consuming more events than this panics with the
    /// seed, converting livelock into a failing test instead of a timeout.
    pub max_events: u64,
    /// Record a full [`TraceRecord`] per event (for byte-for-byte replay
    /// assertions).  The rolling [`ChaosCluster::trace_hash`] is always kept.
    pub record_trace: bool,
    /// Injected retransmission bug for the harness's own regression test:
    /// every channel skips the timer re-arm after a timeout.  Never enable
    /// outside tests of the harness itself.
    pub sabotage_skip_rearm: bool,
}

impl ChaosConfig {
    /// All fault types enabled at moderate rates — the configuration the
    /// multi-seed sweeps run with.
    pub fn new(seed: u64) -> Self {
        ChaosConfig {
            seed,
            drop_p: 0.08,
            duplicate_p: 0.05,
            reorder_p: 0.10,
            reorder_hold_us: 150,
            base_latency_us: 30,
            jitter_us: 40,
            intranode_latency_us: 1,
            partition: Some(PartitionConfig::default()),
            max_events: 200_000,
            record_trace: false,
            sabotage_skip_rearm: false,
        }
    }

    /// Faultless variant (still virtual-clocked): useful to isolate whether
    /// a failure needs faults at all.
    pub fn lossless(seed: u64) -> Self {
        ChaosConfig {
            drop_p: 0.0,
            duplicate_p: 0.0,
            reorder_p: 0.0,
            jitter_us: 0,
            partition: None,
            ..ChaosConfig::new(seed)
        }
    }

    /// Sets the drop probability, consuming and returning the configuration.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_p = p;
        self
    }

    /// Enables full trace recording, consuming and returning the
    /// configuration.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Replaces the partition behaviour, consuming and returning the
    /// configuration.
    pub fn with_partition(mut self, partition: Option<PartitionConfig>) -> Self {
        self.partition = partition;
        self
    }
}

/// What one trace entry describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// An intranode protocol packet was delivered.
    Packet,
    /// An internode go-back-N frame was delivered.
    Frame,
    /// A retransmission timer fired.
    Timer,
}

/// One event of a recorded run: enough to compare two runs byte for byte
/// (the payload hash covers the full wire encoding of the packet or frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time of the event in microseconds.
    pub at_us: u64,
    /// Event kind.
    pub kind: TraceKind,
    /// Originating process (for timers: the process whose timer fired).
    pub src: ProcessId,
    /// Receiving process.
    pub dst: ProcessId,
    /// FNV-1a hash of the event payload: the encoded packet/frame bytes, or
    /// the timer generation.
    pub payload_hash: u64,
}

/// Counters of the fault plane itself (the per-endpoint protocol counters
/// live in [`EndpointStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Events dispatched from the virtual clock's queue.
    pub events: u64,
    /// Frames dropped by the loss model.
    pub frames_dropped: u64,
    /// Frames delivered twice by the duplication model.
    pub frames_duplicated: u64,
    /// Frames held back by the reorder model.
    pub frames_held: u64,
    /// Frames dropped because their node pair was partitioned.
    pub partition_drops: u64,
    /// Packets and frames addressed to a process that was never added.
    pub unroutable_drops: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_mix(hash: u64, byte: u8) -> u64 {
    (hash ^ byte as u64).wrapping_mul(FNV_PRIME)
}

fn fnv_bytes(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash = fnv_mix(hash, b);
    }
    hash
}

fn fnv_u64(mut hash: u64, value: u64) -> u64 {
    for b in value.to_le_bytes() {
        hash = fnv_mix(hash, b);
    }
    hash
}

enum Ev {
    Packet {
        src: ProcessId,
        dst: ProcessId,
        packet: Packet,
    },
    Frame {
        src: ProcessId,
        dst: ProcessId,
        frame: Frame,
    },
    Timer {
        dst: ProcessId,
        timer: TimerId,
    },
}

/// Heap entry ordered by `(at_us, seq)`; `seq` is the scheduling order, so
/// simultaneous events dispatch deterministically.
struct Pending {
    at_us: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.at_us == other.at_us && self.seq == other.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at_us, self.seq).cmp(&(other.at_us, other.seq))
    }
}

struct Proc {
    id: ProcessId,
    engine: Endpoint,
    done: CompletionQueue,
}

struct ChaosRouter {
    cfg: ChaosConfig,
    procs: Vec<Proc>,
    index: U64Index,
    /// Virtual clock in microseconds; advances to each event's timestamp.
    now_us: u64,
    /// Scheduling order tiebreaker for simultaneous events.
    next_seq: u64,
    queue: BinaryHeap<Reverse<Pending>>,
    /// Directed per-link fault models, created lazily from the master seed.
    links: HashMap<(u64, u64), LinkFaults>,
    /// Seeded partition schedules per unordered node pair (`None` when the
    /// pair drew no schedule).
    partitions: HashMap<(u32, u32), Option<PartitionSchedule>>,
    /// Manually partitioned node pairs ([`ChaosCluster::partition`]).
    manual_partitions: HashSet<(u32, u32)>,
    stats: ChaosStats,
    trace_hash: u64,
    trace: Vec<TraceRecord>,
    /// Scratch for trace hashing (frame/packet encodings).
    encode_scratch: BytesMut,
    actions: Vec<Action>,
    comps: Vec<Completion>,
    pending_wakes: Vec<Waker>,
}

impl ChaosRouter {
    fn idx(&self, id: ProcessId) -> Option<usize> {
        self.index.get(id.as_u64()).map(|i| i as usize)
    }

    fn schedule(&mut self, at_us: u64, ev: Ev) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse(Pending { at_us, seq, ev }));
    }

    fn pair_key(a: u32, b: u32) -> (u32, u32) {
        (a.min(b), a.max(b))
    }

    /// `true` while the node pair of `src`/`dst` is partitioned (manually or
    /// by the seeded schedule) at the current virtual time.
    fn partitioned(&mut self, src: ProcessId, dst: ProcessId) -> bool {
        let key = Self::pair_key(src.node.0, dst.node.0);
        if self.manual_partitions.contains(&key) {
            return true;
        }
        let Some(partition_cfg) = self.cfg.partition.clone() else {
            return false;
        };
        let master = self.cfg.seed;
        let now = self.now_us;
        let schedule = self.partitions.entry(key).or_insert_with(|| {
            let pair_seed = derive_seed(
                derive_seed(master ^ 0x7061_7274_6974_696f, key.0 as u64),
                key.1 as u64,
            );
            // Uniform draw in [0, 1) from the pair's derived seed decides
            // whether this pair has a schedule at all.
            let draw = (derive_seed(pair_seed, 1) >> 11) as f64 / (1u64 << 53) as f64;
            (draw < partition_cfg.pair_p).then(|| {
                PartitionSchedule::new(
                    derive_seed(pair_seed, 2),
                    partition_cfg.gap_us,
                    partition_cfg.len_us,
                )
            })
        });
        schedule.as_mut().map(|s| s.blocked(now)).unwrap_or(false)
    }

    fn link(&mut self, src: ProcessId, dst: ProcessId) -> &mut LinkFaults {
        let key = (src.as_u64(), dst.as_u64());
        let cfg = &self.cfg;
        self.links.entry(key).or_insert_with(|| {
            let link_seed = derive_seed(derive_seed(cfg.seed, key.0), key.1);
            LinkFaults {
                loss: LossModel::bernoulli(cfg.drop_p, derive_seed(link_seed, 1)),
                duplicate: DuplicateModel::new(cfg.duplicate_p, derive_seed(link_seed, 2)),
                reorder: ReorderModel::new(
                    cfg.reorder_p,
                    cfg.reorder_hold_us,
                    derive_seed(link_seed, 3),
                ),
                delay: DelayModel::new(
                    cfg.base_latency_us,
                    cfg.jitter_us,
                    derive_seed(link_seed, 4),
                ),
            }
        })
    }

    /// Drains one engine's outputs, scheduling frame deliveries through the
    /// fault plane and timers on the virtual clock.
    fn collect(&mut self, idx: usize) {
        let mut actions = std::mem::take(&mut self.actions);
        let mut comps = std::mem::take(&mut self.comps);
        let id;
        let mut woken;
        {
            let proc = &mut self.procs[idx];
            id = proc.id;
            proc.engine.drain_actions_into(&mut actions);
            proc.engine.drain_completions_into(&mut comps);
            woken = proc.done.publish(&mut comps);
        }
        if !woken.is_empty() {
            self.pending_wakes.append(&mut woken);
            self.procs[idx].done.recycle_woken(woken);
        }
        self.comps = comps;
        for action in actions.drain(..) {
            match action {
                Action::Transmit { dst, packet, .. } => {
                    if self.idx(dst).is_none() {
                        self.stats.unroutable_drops += 1;
                        continue;
                    }
                    // Intranode shared memory is reliable: fixed latency, no
                    // fault plane.
                    let at = self.now_us + self.cfg.intranode_latency_us;
                    self.schedule(
                        at,
                        Ev::Packet {
                            src: id,
                            dst,
                            packet,
                        },
                    );
                }
                Action::TransmitFrame { dst, frame, .. } => {
                    if self.idx(dst).is_none() {
                        self.stats.unroutable_drops += 1;
                        continue;
                    }
                    if self.partitioned(id, dst) {
                        self.stats.partition_drops += 1;
                        continue;
                    }
                    match self.link(id, dst).decide() {
                        FrameFate::Dropped => self.stats.frames_dropped += 1,
                        FrameFate::Deliver {
                            delay_us,
                            duplicate_delay_us,
                        } => {
                            if delay_us > self.cfg.base_latency_us + self.cfg.jitter_us {
                                self.stats.frames_held += 1;
                            }
                            let at = self.now_us + delay_us;
                            if let Some(dup_delay) = duplicate_delay_us {
                                self.stats.frames_duplicated += 1;
                                let dup_at = self.now_us + dup_delay;
                                self.schedule(
                                    dup_at,
                                    Ev::Frame {
                                        src: id,
                                        dst,
                                        frame: frame.clone(),
                                    },
                                );
                            }
                            self.schedule(
                                at,
                                Ev::Frame {
                                    src: id,
                                    dst,
                                    frame,
                                },
                            );
                        }
                    }
                }
                Action::SetTimer { timer, delay_us } => {
                    let at = self.now_us + delay_us;
                    self.schedule(at, Ev::Timer { dst: id, timer });
                }
                // Timer cancellation is lazy: the queued event still fires,
                // and the channel's generation check makes the stale
                // `on_timeout` a no-op.  Cost-model hints have no substrate
                // to charge, and drop/failure notifications are already
                // counted in the engine's own stats.
                Action::CancelTimer { .. }
                | Action::Translate { .. }
                | Action::Copy { .. }
                | Action::PacketDropped { .. }
                | Action::ChannelFailed { .. } => {}
            }
        }
        self.actions = actions;
    }

    fn record(&mut self, kind: TraceKind, src: ProcessId, dst: ProcessId, payload_hash: u64) {
        let record = TraceRecord {
            at_us: self.now_us,
            kind,
            src,
            dst,
            payload_hash,
        };
        let mut h = self.trace_hash;
        h = fnv_u64(h, record.at_us);
        h = fnv_mix(h, kind as u8);
        h = fnv_u64(h, src.as_u64());
        h = fnv_u64(h, dst.as_u64());
        h = fnv_u64(h, payload_hash);
        self.trace_hash = h;
        if self.cfg.record_trace {
            self.trace.push(record);
        }
    }

    /// Dispatches queued events in virtual-time order until the queue is
    /// empty, then runs the wedge check.  Panics (seed-labeled) when the
    /// event budget is exceeded or a channel is wedged.
    fn run(&mut self) {
        while let Some(Reverse(pending)) = self.queue.pop() {
            debug_assert!(pending.at_us >= self.now_us, "virtual time went backwards");
            self.now_us = pending.at_us;
            // Every trace event this dispatch emits is stamped with the
            // virtual clock, so a replayed seed produces identical traces.
            telemetry::clock::set_virtual_us(self.now_us);
            self.stats.events += 1;
            if self.stats.events > self.cfg.max_events {
                let trace = self.dump_failure_trace();
                panic!(
                    "chaos seed {}: exceeded the {}-event budget at t={}us — the run is not \
                     converging; replay with `ChaosConfig::new({})` (raise `max_events` only if \
                     the workload legitimately needs more); flight recorder dump: {}",
                    self.cfg.seed, self.cfg.max_events, self.now_us, self.cfg.seed, trace
                );
            }
            match pending.ev {
                Ev::Packet { src, dst, packet } => {
                    let mut scratch = std::mem::take(&mut self.encode_scratch);
                    scratch.clear();
                    packet.encode_into(&mut scratch);
                    let hash = fnv_bytes(FNV_OFFSET, &scratch);
                    self.encode_scratch = scratch;
                    self.record(TraceKind::Packet, src, dst, hash);
                    let d = self.idx(dst).expect("destination checked at schedule time");
                    self.procs[d].engine.handle_packet(src, packet);
                    self.collect(d);
                }
                Ev::Frame { src, dst, frame } => {
                    let mut scratch = std::mem::take(&mut self.encode_scratch);
                    scratch.clear();
                    frame.encode_into(&mut scratch);
                    let hash = fnv_bytes(FNV_OFFSET, &scratch);
                    self.encode_scratch = scratch;
                    self.record(TraceKind::Frame, src, dst, hash);
                    let d = self.idx(dst).expect("destination checked at schedule time");
                    self.procs[d].engine.handle_frame(src, frame);
                    self.collect(d);
                }
                Ev::Timer { dst, timer } => {
                    let hash = fnv_u64(FNV_OFFSET, timer.generation);
                    self.record(TraceKind::Timer, dst, dst, hash);
                    let d = self.idx(dst).expect("timer owner is registered");
                    self.procs[d].engine.handle_timer(timer);
                    self.collect(d);
                }
            }
        }
        self.wedge_check();
    }

    /// At quiescence (empty event queue — so no timer can fire), any channel
    /// still holding unacknowledged frames without having failed can never
    /// recover: its retransmission timer was lost.  That is a protocol bug
    /// (exactly what [`ChaosConfig::sabotage_skip_rearm`] injects), not a
    /// fault-plane outcome — fail the seed loudly.
    fn wedge_check(&self) {
        for proc in &self.procs {
            let mut wedged: Option<(ProcessId, &'static str, GbnStats)> = None;
            proc.engine.each_channel(|peer, channel| {
                if !channel.idle() && !channel.failed() && wedged.is_none() {
                    wedged = Some((peer, channel.mode().label(), channel.stats()));
                }
            });
            if let Some((peer, mode, stats)) = wedged {
                let trace = self.dump_failure_trace();
                panic!(
                    "chaos seed {}: endpoint {} wedged towards {} at t={}us — unacknowledged \
                     frames on a {} channel with no retransmission timer pending and no channel \
                     failure; replay with `ChaosConfig::new({})` (see README \"Chaos testing\"); \
                     stalled channel stats: {:?}; flight recorder dump: {}",
                    self.cfg.seed, proc.id, peer, self.now_us, mode, self.cfg.seed, stats, trace
                );
            }
        }
    }

    /// Writes the flight recorder's chrome://tracing dump for a failing
    /// seed — to `$CHAOS_TRACE_DIR` when set, the OS temp directory
    /// otherwise — and returns the path (or the error, best effort: the
    /// panic it decorates must fire regardless).
    fn dump_failure_trace(&self) -> String {
        let dir = std::env::var_os("CHAOS_TRACE_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(std::env::temp_dir);
        let _ = std::fs::create_dir_all(&dir); // best effort; the write below reports any error
        let path = dir.join(format!("ppmsg-chaos-seed-{}.trace.json", self.cfg.seed));
        match telemetry::export::dump_chrome_trace(&path) {
            Ok(()) => path.display().to_string(),
            Err(e) => format!("<failed to write {}: {e}>", path.display()),
        }
    }
}

/// A deterministic fault-injecting cluster of protocol endpoints sharing one
/// virtual-clocked router.  See the module documentation.
#[derive(Clone)]
pub struct ChaosCluster {
    router: Arc<Mutex<ChaosRouter>>,
    protocol: ProtocolConfig,
}

impl ChaosCluster {
    /// Creates an empty cluster; every endpoint uses `protocol` and every
    /// fault decision derives from `chaos.seed`.
    pub fn new(protocol: ProtocolConfig, chaos: ChaosConfig) -> Self {
        ChaosCluster {
            router: Arc::new(Mutex::new(ChaosRouter {
                cfg: chaos,
                procs: Vec::new(),
                index: U64Index::new(),
                now_us: 0,
                next_seq: 0,
                queue: BinaryHeap::new(),
                links: HashMap::new(),
                partitions: HashMap::new(),
                manual_partitions: HashSet::new(),
                stats: ChaosStats::default(),
                trace_hash: FNV_OFFSET,
                trace: Vec::new(),
                encode_scratch: BytesMut::new(),
                actions: Vec::new(),
                comps: Vec::new(),
                pending_wakes: Vec::new(),
            })),
            protocol,
        }
    }

    /// Adds a process to the cluster and returns its endpoint handle.
    ///
    /// # Panics
    ///
    /// Panics if the process was already added.
    pub fn add_endpoint(&self, id: ProcessId) -> ChaosEndpoint {
        self.add_endpoint_with(id, &EndpointConfig::new())
    }

    /// Adds a process with per-endpoint configuration overrides (same
    /// contract as
    /// [`LoopbackCluster::add_endpoint_with`](crate::loopback::LoopbackCluster::add_endpoint_with)).
    ///
    /// # Panics
    ///
    /// Panics if the process was already added or the resulting protocol
    /// configuration is invalid.
    pub fn add_endpoint_with(&self, id: ProcessId, config: &EndpointConfig) -> ChaosEndpoint {
        let mut router = self.router.lock().unwrap();
        assert!(
            router.index.get(id.as_u64()).is_none(),
            "endpoint {id} added twice"
        );
        let mut done = CompletionQueue::new();
        config.apply_retention(&mut done);
        let mut engine = Endpoint::new(id, config.apply_protocol(self.protocol.clone()));
        if router.cfg.sabotage_skip_rearm {
            engine.sabotage_skip_rearm();
        }
        let idx = router.procs.len() as u32;
        router.index.insert(id.as_u64(), idx);
        router.procs.push(Proc { id, engine, done });
        ChaosEndpoint {
            router: self.router.clone(),
            id,
        }
    }

    /// Manually partitions the node pair of `a` and `b`: every internode
    /// frame between the two nodes is dropped, in both directions, until
    /// [`ChaosCluster::heal`].  Frames already in flight still deliver.
    pub fn partition(&self, a: ProcessId, b: ProcessId) {
        let key = ChaosRouter::pair_key(a.node.0, b.node.0);
        self.router.lock().unwrap().manual_partitions.insert(key);
    }

    /// Heals a manual partition created by [`ChaosCluster::partition`].
    pub fn heal(&self, a: ProcessId, b: ProcessId) {
        let key = ChaosRouter::pair_key(a.node.0, b.node.0);
        self.router.lock().unwrap().manual_partitions.remove(&key);
    }

    /// Counters of the fault plane: events dispatched, faults injected,
    /// unroutable traffic.
    pub fn chaos_stats(&self) -> ChaosStats {
        self.router.lock().unwrap().stats
    }

    /// Rolling FNV-1a hash over every dispatched event (time, kind,
    /// endpoints, and the full wire encoding of the packet or frame).  Two
    /// runs of the same seed and workload must report the same hash.
    pub fn trace_hash(&self) -> u64 {
        self.router.lock().unwrap().trace_hash
    }

    /// Takes the recorded trace (empty unless [`ChaosConfig::record_trace`]
    /// was set).
    pub fn take_trace(&self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.router.lock().unwrap().trace)
    }

    /// The current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.router.lock().unwrap().now_us
    }
}

/// One process's handle onto a [`ChaosCluster`].  Every post drains the
/// virtual clock to quiescence before returning, so — like the loopback
/// cluster — anything that can complete has completed by the time a post
/// returns, go-back-N recovery included.
#[derive(Clone)]
pub struct ChaosEndpoint {
    router: Arc<Mutex<ChaosRouter>>,
    id: ProcessId,
}

impl ChaosEndpoint {
    /// This endpoint's process id.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    fn with_engine<R>(&self, f: impl FnOnce(&mut Endpoint) -> R) -> R {
        let mut router = self.router.lock().unwrap();
        // The posting thread joins the router's virtual clock for the
        // duration of the interaction, so post-side trace events carry
        // deterministic timestamps too.
        telemetry::clock::set_virtual_us(router.now_us);
        let idx = router.idx(self.id).expect("endpoint registered");
        let result = f(&mut router.procs[idx].engine);
        router.collect(idx);
        router.run();
        let wakes = if router.pending_wakes.is_empty() {
            Vec::new()
        } else {
            std::mem::take(&mut router.pending_wakes)
        };
        drop(router);
        // Hand the thread's trace clock back: the same test thread may go
        // on to drive a wall-clocked host backend.
        telemetry::clock::set_wall();
        ppmsg_core::ops::wake_all(wakes, |drained| {
            let mut router = self.router.lock().unwrap();
            if drained.capacity() > router.pending_wakes.capacity() {
                router.pending_wakes = drained;
            }
        });
        result
    }

    /// Posts a send; the transfer — retransmissions and all — is driven to
    /// quiescence through the fault plane before this returns.
    pub fn post_send(&self, peer: ProcessId, tag: Tag, data: impl Into<Bytes>) -> Result<SendOp> {
        let data = data.into();
        self.with_engine(|e| e.post_send(peer, tag, data))
    }

    /// Posts a vectored send; see
    /// [`Endpoint::post_send_vectored`](ppmsg_core::Endpoint::post_send_vectored).
    pub fn post_send_vectored(
        &self,
        peer: ProcessId,
        tag: Tag,
        segments: &[Bytes],
    ) -> Result<SendOp> {
        self.with_engine(|e| e.post_send_vectored(peer, tag, segments))
    }

    /// Posts an engine-buffered receive (wildcards allowed).
    pub fn post_recv(
        &self,
        src: ProcessId,
        tag: Tag,
        capacity: usize,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        self.with_engine(|e| e.post_recv_with(src, tag, capacity, policy))
    }

    /// Posts a caller-buffered receive (wildcards allowed).
    pub fn post_recv_into(
        &self,
        src: ProcessId,
        tag: Tag,
        buf: RecvBuf,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        self.with_engine(|e| e.post_recv_into(src, tag, buf, policy))
    }

    /// Cancels a still-unmatched receive.
    pub fn cancel(&self, op: RecvOp) -> bool {
        self.with_engine(|e| e.cancel(op))
    }

    /// Cancels a posted send whose remainder has not been pulled yet.
    pub fn cancel_send(&self, op: SendOp) -> bool {
        self.with_engine(|e| e.cancel_send(op))
    }

    /// Takes the completion of `op` if the operation has finished.
    pub fn take_completion(&self, op: OpId) -> Option<Completion> {
        let mut router = self.router.lock().unwrap();
        let idx = router.idx(self.id).expect("endpoint registered");
        router.procs[idx].done.take(op)
    }

    /// Protocol statistics of this endpoint (including the new
    /// [`EndpointStats::packets_dropped`] / [`EndpointStats::channels_failed`]
    /// counters and the completion queue's eviction counter).
    pub fn stats(&self) -> EndpointStats {
        let router = self.router.lock().unwrap();
        let idx = router.idx(self.id).expect("endpoint registered");
        let mut stats = router.procs[idx].engine.stats();
        stats.completions_evicted = router.procs[idx].done.evicted();
        stats
    }
}

/// The chaos binding's backend contract, mirroring the loopback binding:
/// every post drives the virtual clock to quiescence synchronously.
impl RawTransport for ChaosEndpoint {
    fn local_id(&self) -> ProcessId {
        self.id()
    }

    fn post_send(&self, peer: ProcessId, tag: Tag, data: Bytes) -> Result<SendOp> {
        ChaosEndpoint::post_send(self, peer, tag, data)
    }

    fn post_send_vectored(&self, peer: ProcessId, tag: Tag, segments: &[Bytes]) -> Result<SendOp> {
        ChaosEndpoint::post_send_vectored(self, peer, tag, segments)
    }

    fn post_recv(
        &self,
        src: ProcessId,
        tag: Tag,
        capacity: usize,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        ChaosEndpoint::post_recv(self, src, tag, capacity, policy)
    }

    fn post_recv_into(
        &self,
        src: ProcessId,
        tag: Tag,
        buf: RecvBuf,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        ChaosEndpoint::post_recv_into(self, src, tag, buf, policy)
    }

    fn cancel_recv(&self, op: RecvOp) -> bool {
        ChaosEndpoint::cancel(self, op)
    }

    fn cancel_send(&self, op: SendOp) -> bool {
        ChaosEndpoint::cancel_send(self, op)
    }

    fn with_completions(&self, f: &mut dyn FnMut(&mut CompletionQueue)) {
        let mut router = self.router.lock().unwrap();
        let idx = router.idx(self.id).expect("endpoint registered");
        f(&mut router.procs[idx].done);
    }

    fn stats(&self) -> EndpointStats {
        ChaosEndpoint::stats(self)
    }
}

// ---------------------------------------------------------------------------
// Multi-seed sweep runner
// ---------------------------------------------------------------------------

/// One failing seed of a sweep.
#[derive(Debug, Clone)]
pub struct SeedFailure {
    /// The master seed that failed.
    pub seed: u64,
    /// The panic message of the failure.
    pub message: String,
}

/// Result of a [`sweep`]: how many seeds ran and which failed.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// Number of seeds executed.
    pub seeds_run: u64,
    /// Every failing seed, in seed order.
    pub failures: Vec<SeedFailure>,
}

impl ChaosReport {
    /// Renders the report with replay instructions for every failing seed.
    pub fn render(&self, suite: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "chaos sweep `{suite}`: {} seeds, {} failing",
            self.seeds_run,
            self.failures.len()
        );
        for failure in &self.failures {
            let _ = writeln!(
                out,
                "  seed {} FAILED — replay with `ChaosConfig::new({})` (or run the suite with \
                 CHAOS_SEED_START={} CHAOS_SEEDS=1): {}",
                failure.seed, failure.seed, failure.seed, failure.message
            );
        }
        out
    }

    /// Appends the rendered report to the file named by the `CHAOS_REPORT`
    /// environment variable, when set (the CI chaos job uploads it as an
    /// artifact).  Errors writing the report are ignored — the report is
    /// advisory; the panic in [`ChaosReport::assert_clean`] is the gate.
    pub fn publish(&self, suite: &str) {
        if let Ok(path) = std::env::var("CHAOS_REPORT") {
            use std::io::Write as _;
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = file.write_all(self.render(suite).as_bytes());
            }
        }
    }

    /// Prints the report and panics if any seed failed.
    pub fn assert_clean(&self, suite: &str) {
        self.publish(suite);
        println!("{}", self.render(suite));
        assert!(
            self.failures.is_empty(),
            "chaos sweep `{suite}`: {} of {} seeds failed — failing seeds: {:?}",
            self.failures.len(),
            self.seeds_run,
            self.failures.iter().map(|f| f.seed).collect::<Vec<_>>()
        );
    }
}

/// Number of seeds a sweep should run: the `CHAOS_SEEDS` environment
/// variable when set, else `default`.  The CI chaos job bounds sweeps with
/// `CHAOS_SEEDS=256`; full-size sweeps stay local.
pub fn seeds_from_env(default: u64) -> u64 {
    std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// First seed of a sweep: the `CHAOS_SEED_START` environment variable when
/// set, else `default` — the replay knob for a single failing seed.
pub fn seed_start_from_env(default: u64) -> u64 {
    std::env::var("CHAOS_SEED_START")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Runs `scenario` once per seed in `seeds`, catching seed-labeled panics
/// and collecting them into a [`ChaosReport`].  The default panic hook is
/// suppressed for the duration of the sweep so expected failures (e.g. the
/// harness's own sabotage regression test) do not spam stderr; the report
/// carries every message.
pub fn sweep(seeds: std::ops::Range<u64>, scenario: impl Fn(u64)) -> ChaosReport {
    type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;
    struct HookGuard(Option<PanicHook>);
    impl Drop for HookGuard {
        fn drop(&mut self) {
            if let Some(prev) = self.0.take() {
                std::panic::set_hook(prev);
            }
        }
    }
    let guard = HookGuard(Some(std::panic::take_hook()));
    std::panic::set_hook(Box::new(|_| {}));

    let mut report = ChaosReport::default();
    for seed in seeds {
        report.seeds_run += 1;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| scenario(seed)));
        if let Err(payload) = outcome {
            let message = payload
                .downcast_ref::<&'static str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            report.failures.push(SeedFailure { seed, message });
        }
    }
    drop(guard);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppmsg_core::{Status, ANY_SOURCE, ANY_TAG};

    fn payload(len: usize) -> Bytes {
        Bytes::from((0..len).map(|i| (i % 251) as u8).collect::<Vec<u8>>())
    }

    fn internode_pair(cfg: ChaosConfig) -> (ChaosCluster, ChaosEndpoint, ChaosEndpoint) {
        let cluster = ChaosCluster::new(
            ProtocolConfig::paper_internode().with_pushed_buffer(1 << 20),
            cfg,
        );
        let a = cluster.add_endpoint(ProcessId::new(0, 0));
        let b = cluster.add_endpoint(ProcessId::new(1, 0));
        (cluster, a, b)
    }

    #[test]
    fn transfer_survives_the_fault_plane() {
        let (cluster, a, b) = internode_pair(ChaosConfig::new(42));
        let data = payload(10_000);
        let recv = b
            .post_recv(a.id(), Tag(1), 10_000, TruncationPolicy::Error)
            .unwrap();
        let send = a.post_send(b.id(), Tag(1), data.clone()).unwrap();
        let done = b.take_completion(OpId::Recv(recv)).expect("delivered");
        assert_eq!(done.status, Status::Ok);
        assert_eq!(done.data.unwrap(), data);
        assert!(a.take_completion(OpId::Send(send)).is_some());
        assert!(cluster.chaos_stats().events > 0);
    }

    #[test]
    fn retransmission_recovers_from_drops() {
        // Heavy loss, no partitions: recovery must come from timers firing
        // on the virtual clock.
        let cfg = ChaosConfig::new(7).with_drop(0.4).with_partition(None);
        let (cluster, a, b) = internode_pair(cfg);
        let data = payload(6_000);
        let recv = b
            .post_recv(a.id(), Tag(3), 6_000, TruncationPolicy::Error)
            .unwrap();
        a.post_send(b.id(), Tag(3), data.clone()).unwrap();
        let done = b.take_completion(OpId::Recv(recv)).expect("recovered");
        assert_eq!(done.data.unwrap(), data);
        let stats = cluster.chaos_stats();
        assert!(stats.frames_dropped > 0, "40% loss must drop something");
        let gbn = a.with_engine(|e| e.channel_stats(ProcessId::new(1, 0)).unwrap());
        assert!(gbn.retransmissions > 0, "recovery must use retransmission");
    }

    #[test]
    fn same_seed_produces_identical_traces() {
        let run = || {
            let (cluster, a, b) = internode_pair(ChaosConfig::new(99).with_trace());
            let recv = b
                .post_recv(ANY_SOURCE, ANY_TAG, 4096, TruncationPolicy::Error)
                .unwrap();
            a.post_send(b.id(), Tag(5), payload(4096)).unwrap();
            b.take_completion(OpId::Recv(recv)).expect("delivered");
            (cluster.trace_hash(), cluster.take_trace())
        };
        let (hash1, trace1) = run();
        let (hash2, trace2) = run();
        assert_eq!(hash1, hash2, "same seed must hash identically");
        assert_eq!(trace1, trace2, "same seed must replay byte for byte");
        assert!(!trace1.is_empty());
    }

    #[test]
    fn different_seeds_diverge() {
        let run = |seed| {
            let (cluster, a, b) = internode_pair(ChaosConfig::new(seed));
            let recv = b
                .post_recv(a.id(), Tag(5), 4096, TruncationPolicy::Error)
                .unwrap();
            a.post_send(b.id(), Tag(5), payload(4096)).unwrap();
            b.take_completion(OpId::Recv(recv)).expect("delivered");
            cluster.trace_hash()
        };
        assert_ne!(run(1), run(2), "seeds must actually steer the fault plane");
    }

    #[test]
    fn permanent_partition_fails_cleanly() {
        // Block the pair before any traffic: the sender must exhaust its
        // retries and complete the send with ChannelFailed — no hang.
        let cfg = ChaosConfig::lossless(3);
        let (cluster, a, b) = internode_pair(cfg);
        cluster.partition(a.id(), b.id());
        let send = a.post_send(b.id(), Tag(9), payload(50_000)).unwrap();
        let done = a
            .take_completion(OpId::Send(send))
            .expect("send must complete, not hang");
        assert_eq!(
            done.status,
            Status::Error(ppmsg_core::Error::ChannelFailed { peer: b.id() }),
        );
        let stats = a.stats();
        assert_eq!(stats.channels_failed, 1);
        assert!(cluster.chaos_stats().partition_drops > 0);
    }

    #[test]
    fn unroutable_traffic_is_counted_and_fails() {
        let cfg = ChaosConfig::lossless(4);
        let (cluster, a, _b) = internode_pair(cfg);
        let ghost = ProcessId::new(9, 0);
        // Large enough to register and await a pull (an eager send completes
        // `Ok` the moment it is handed to the transport).
        let send = a.post_send(ghost, Tag(1), payload(50_000)).unwrap();
        // The virtual clock runs the retry budget down: the send fails
        // cleanly instead of pending forever (contrast with loopback, which
        // can only count the misroute).
        let done = a.take_completion(OpId::Send(send)).expect("failed cleanly");
        assert!(matches!(done.status, Status::Error(_)));
        assert!(cluster.chaos_stats().unroutable_drops > 0);
    }

    #[test]
    fn sweep_reports_failing_seeds() {
        let report = sweep(0..10, |seed| {
            if seed == 3 || seed == 7 {
                panic!("chaos seed {seed}: injected test failure");
            }
        });
        assert_eq!(report.seeds_run, 10);
        let seeds: Vec<u64> = report.failures.iter().map(|f| f.seed).collect();
        assert_eq!(seeds, vec![3, 7]);
        assert!(report.render("unit").contains("seed 3 FAILED"));
    }
}
