//! Experiment harness: one function per table/figure of the paper.
//!
//! Every function builds a [`SimCluster`] for the paper's testbed, runs the
//! relevant ping-pong workload, and returns plain data rows so callers
//! (benches, examples, EXPERIMENTS.md generation) can print or compare them.

use crate::cluster::{ClusterConfig, Op, ProcessScript, SimCluster};
use ppmsg_core::{BtpPolicy, OptFlags, ProcessId, ProtocolConfig, ProtocolMode, Tag};
use simsmp::stats::LatencyStats;
use simsmp::time::SimDuration;

/// Number of ping-pong iterations per measured point.  The paper uses 1000;
/// the default here is smaller so the full figure sweep stays fast, and the
/// benches crank it up.
pub const DEFAULT_ITERS: usize = 60;

/// One latency point of a figure: a message size and the measured
/// single-trip mean latency for each protocol/optimisation series.
#[derive(Debug, Clone, PartialEq)]
pub struct FigurePoint {
    /// Message size in bytes.
    pub size: usize,
    /// `(series label, single-trip mean latency in microseconds)` pairs.
    pub series: Vec<(String, f64)>,
}

impl FigurePoint {
    /// The latency of a named series, if present.
    pub fn get(&self, label: &str) -> Option<f64> {
        self.series
            .iter()
            .find(|(l, _)| l == label)
            .map(|&(_, v)| v)
    }

    /// Renders the point as a CSV row (`size,v1,v2,...`).
    pub fn csv_row(&self) -> String {
        let mut s = self.size.to_string();
        for (_, v) in &self.series {
            s.push_str(&format!(",{v:.2}"));
        }
        s
    }
}

/// One bandwidth point: message size and achieved bandwidth in MB/s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthPoint {
    /// Message size in bytes.
    pub size: usize,
    /// Achieved bandwidth in MB/s.
    pub mb_per_s: f64,
}

/// The headline numbers of the abstract / §5 / §6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadlineNumbers {
    /// Intranode single-trip latency of a 10-byte message, µs (paper: 7.5).
    pub intranode_latency_us: f64,
    /// Intranode peak bandwidth, MB/s (paper: 350.9).
    pub intranode_peak_bw_mb_s: f64,
    /// Internode single-trip latency of a 4-byte message, µs (paper: 34.9).
    pub internode_latency_us: f64,
    /// Internode peak bandwidth, MB/s (paper: 12.1).
    pub internode_peak_bw_mb_s: f64,
    /// Address-translation overhead hidden by masking for a long (32 KiB)
    /// buffer, µs (paper: ≈12–13 µs for long messages).
    pub translation_overhead_us: f64,
}

/// Which of the two Fig. 6 variants to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EarlyLateVariant {
    /// Receiver posts its receive before the sender sends
    /// (x = 500 000, y = 100 000 NOPs).
    Early,
    /// Receiver posts its receive well after the sender sends
    /// (x = 100 000, y = 300 000 NOPs).
    Late,
}

impl EarlyLateVariant {
    /// The `(x, y)` NOP counts from §5.3.
    pub fn nops(self) -> (u64, u64) {
        match self {
            EarlyLateVariant::Early => (500_000, 100_000),
            EarlyLateVariant::Late => (100_000, 300_000),
        }
    }

    /// The label used in Fig. 6.
    pub fn label(self) -> &'static str {
        match self {
            EarlyLateVariant::Early => "early",
            EarlyLateVariant::Late => "late",
        }
    }
}

// ---------------------------------------------------------------------------
// Workload builders.
// ---------------------------------------------------------------------------

fn pingpong_scripts(
    a: ProcessId,
    b: ProcessId,
    len: usize,
    reply_len: usize,
    iters: usize,
    compute_x: u64,
    compute_y: u64,
) -> Vec<ProcessScript> {
    let mut ping = Vec::new();
    let mut pong = Vec::new();
    // Barrier: a trivial 4-byte exchange, as in the paper.
    ping.push(Op::Send {
        peer: b,
        tag: Tag(99),
        len: 4,
    });
    ping.push(Op::Recv {
        peer: b,
        tag: Tag(98),
        len: 4,
    });
    pong.push(Op::Recv {
        peer: a,
        tag: Tag(99),
        len: 4,
    });
    pong.push(Op::Send {
        peer: a,
        tag: Tag(98),
        len: 4,
    });
    for i in 0..iters {
        ping.push(Op::MarkTime(i));
        if compute_x > 0 {
            ping.push(Op::Compute(compute_x));
        }
        ping.push(Op::Send {
            peer: b,
            tag: Tag(1),
            len,
        });
        if compute_y > 0 {
            ping.push(Op::Compute(compute_y));
        }
        ping.push(Op::Recv {
            peer: b,
            tag: Tag(2),
            len: reply_len,
        });

        if compute_y > 0 {
            pong.push(Op::Compute(compute_y));
        }
        pong.push(Op::Recv {
            peer: a,
            tag: Tag(1),
            len,
        });
        if compute_x > 0 {
            pong.push(Op::Compute(compute_x));
        }
        pong.push(Op::Send {
            peer: a,
            tag: Tag(2),
            len: reply_len,
        });
    }
    ping.push(Op::MarkTime(iters));
    vec![
        ProcessScript {
            process: a,
            ops: ping,
        },
        ProcessScript {
            process: b,
            ops: pong,
        },
    ]
}

/// Runs a ping-pong and returns per-iteration round-trip times.
#[allow(clippy::too_many_arguments)]
fn run_pingpong(
    protocol: ProtocolConfig,
    intranode: bool,
    len: usize,
    reply_len: usize,
    iters: usize,
    compute_x: u64,
    compute_y: u64,
) -> Vec<SimDuration> {
    let a = ProcessId::new(0, 0);
    let b = if intranode {
        ProcessId::new(0, 1)
    } else {
        ProcessId::new(1, 0)
    };
    let cfg = ClusterConfig::paper_testbed(protocol);
    let mut cluster = SimCluster::new(cfg);
    for s in pingpong_scripts(a, b, len, reply_len, iters, compute_x, compute_y) {
        cluster.add_process(s);
    }
    let report = cluster.run();
    assert!(cluster.all_finished(), "simulation did not finish");
    let marks = report.marks_of(a);
    marks.windows(2).map(|w| w[1].since(w[0])).collect()
}

/// Single-trip mean latency (µs) of a plain ping-pong, using the paper's
/// trimmed mean over iterations.
fn single_trip_us(protocol: ProtocolConfig, intranode: bool, len: usize, iters: usize) -> f64 {
    let rtts = run_pingpong(protocol, intranode, len, len, iters, 0, 0);
    let mut stats = LatencyStats::new();
    for rtt in rtts {
        stats.record(SimDuration(rtt.as_nanos() / 2));
    }
    stats.trimmed_mean().as_micros_f64()
}

/// Mean time (µs) to send a `len`-byte message one way and get a 4-byte
/// acknowledgement back — the paper's bandwidth-test primitive.
fn send_plus_ack_us(protocol: ProtocolConfig, intranode: bool, len: usize, iters: usize) -> f64 {
    let rtts = run_pingpong(protocol, intranode, len, 4, iters, 0, 0);
    let mut stats = LatencyStats::new();
    for rtt in rtts {
        stats.record(rtt);
    }
    stats.trimmed_mean().as_micros_f64()
}

/// Full loop-body latency (µs) of the compute-then-communicate ping-pong of
/// Fig. 5 (used by the early/late receiver tests).
fn loop_latency_us(
    protocol: ProtocolConfig,
    len: usize,
    iters: usize,
    compute_x: u64,
    compute_y: u64,
) -> f64 {
    let rtts = run_pingpong(protocol, false, len, len, iters, compute_x, compute_y);
    let mut stats = LatencyStats::new();
    for rtt in rtts {
        stats.record(rtt);
    }
    stats.trimmed_mean().as_micros_f64()
}

// ---------------------------------------------------------------------------
// E1 / Fig. 3 — intranode latency.
// ---------------------------------------------------------------------------

/// Reproduces Fig. 3: intranode single-trip latency vs message size for
/// Push-Zero, Push-Pull (BTP = 16) and Push-All, with a 12 KiB pushed buffer.
pub fn fig3_intranode(sizes: &[usize], iters: usize) -> Vec<FigurePoint> {
    // The intranode evaluation predates the internode-only masking /
    // overlapping techniques: zero buffer and parallel pull are on, the
    // other two off.
    let opts = OptFlags {
        zero_buffer: true,
        translation_masking: false,
        push_ack_overlap: false,
        parallel_pull: true,
    };
    sizes
        .iter()
        .map(|&size| {
            let mut series = Vec::new();
            for mode in ProtocolMode::ALL {
                let protocol = ProtocolConfig::paper_intranode()
                    .with_mode(mode)
                    .with_opts(opts)
                    .with_pushed_buffer(12 * 1024);
                let us = single_trip_us(protocol, true, size, iters);
                series.push((mode.label().to_string(), us));
            }
            FigurePoint { size, series }
        })
        .collect()
}

/// The message sizes on Fig. 3's x-axis.
pub fn fig3_sizes() -> Vec<usize> {
    vec![10, 1000, 3000, 4000, 5000, 8192]
}

// ---------------------------------------------------------------------------
// E5 / Fig. 4 — internode latency under the optimisation ablation.
// ---------------------------------------------------------------------------

/// Reproduces Fig. 4: internode single-trip latency vs message size for the
/// four optimisation combinations (none / mask only / overlap only / full),
/// with `BTP(1) = 80`, `BTP(2) = 680`.
pub fn fig4_internode(sizes: &[usize], iters: usize) -> Vec<FigurePoint> {
    let variants = [
        OptFlags::baseline(),
        OptFlags::mask_only(),
        OptFlags::overlap_only(),
        OptFlags::full(),
    ];
    sizes
        .iter()
        .map(|&size| {
            let mut series = Vec::new();
            for opts in variants {
                let protocol = ProtocolConfig::paper_internode().with_opts(opts);
                let us = single_trip_us(protocol, false, size, iters);
                series.push((opts.figure4_label().to_string(), us));
            }
            FigurePoint { size, series }
        })
        .collect()
}

/// The message sizes on Fig. 4's x-axis.
pub fn fig4_sizes() -> Vec<usize> {
    vec![4, 200, 400, 600, 760, 800, 1000, 1200, 1400]
}

// ---------------------------------------------------------------------------
// E3/E4 — BTP tuning (§5.2, tests 1 and 2).
// ---------------------------------------------------------------------------

/// §5.2 test 1: vary `BTP(2)` with `BTP(1) = 0` (overlap-only optimisation)
/// and measure the internode single-trip latency of a `msg_len`-byte message.
/// The paper's knee is at `BTP(2) ≈ 680`.
pub fn btp2_sweep(btp2_values: &[usize], msg_len: usize, iters: usize) -> Vec<(usize, f64)> {
    btp2_values
        .iter()
        .map(|&btp2| {
            let protocol = ProtocolConfig::paper_internode()
                .with_opts(OptFlags::overlap_only())
                .with_internode_btp(BtpPolicy::split(0, btp2));
            (btp2, single_trip_us(protocol, false, msg_len, iters))
        })
        .collect()
}

/// §5.2 test 2: fix `BTP(2) = 680` and vary `BTP(1)`.  The paper's minimum is
/// at `BTP(1) ≈ 80`.
pub fn btp1_sweep(btp1_values: &[usize], msg_len: usize, iters: usize) -> Vec<(usize, f64)> {
    btp1_values
        .iter()
        .map(|&btp1| {
            let protocol = ProtocolConfig::paper_internode()
                .with_opts(OptFlags::full())
                .with_internode_btp(BtpPolicy::split(btp1, 680));
            (btp1, single_trip_us(protocol, false, msg_len, iters))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// E7/E8 / Fig. 6 — early and late receiver tests.
// ---------------------------------------------------------------------------

/// Reproduces one panel of Fig. 6: the compute-then-communicate ping-pong
/// with the receiver forced to be early or late, for all three messaging
/// mechanisms with full optimisation and a 4 KiB pushed buffer.
pub fn early_late_test(
    variant: EarlyLateVariant,
    sizes: &[usize],
    iters: usize,
) -> Vec<FigurePoint> {
    let (x, y) = variant.nops();
    sizes
        .iter()
        .map(|&size| {
            let mut series = Vec::new();
            for mode in ProtocolMode::ALL {
                let protocol = ProtocolConfig::paper_internode()
                    .with_mode(mode)
                    .with_opts(OptFlags::full())
                    .with_pushed_buffer(4 * 1024);
                let us = loop_latency_us(protocol, size, iters, x, y);
                series.push((format!("{}/{}", mode.label(), variant.label()), us));
            }
            FigurePoint { size, series }
        })
        .collect()
}

/// The message sizes on Fig. 6's x-axis.
pub fn fig6_sizes() -> Vec<usize> {
    vec![4, 1024, 2048, 3072, 4096, 5120, 6144, 7168, 8192]
}

// ---------------------------------------------------------------------------
// E2/E6 — bandwidth and headline numbers.
// ---------------------------------------------------------------------------

/// Bandwidth sweep following the paper's method: time the transfer of the
/// message plus a 4-byte acknowledgement, subtract the 4-byte single-trip
/// latency, and divide the byte count by the remainder.
pub fn bandwidth_sweep(intranode: bool, sizes: &[usize], iters: usize) -> Vec<BandwidthPoint> {
    let protocol = if intranode {
        ProtocolConfig::paper_intranode()
    } else {
        ProtocolConfig::paper_internode()
    };
    let base_us = single_trip_us(protocol.clone(), intranode, 4, iters);
    sizes
        .iter()
        .map(|&size| {
            // Time for the message one way plus a 4-byte acknowledgement
            // back, minus the 4-byte single-trip latency (the paper's
            // definition).
            let rtt_us = send_plus_ack_us(protocol.clone(), intranode, size, iters);
            let transfer_us = (rtt_us - base_us).max(0.001);
            BandwidthPoint {
                size,
                mb_per_s: size as f64 / transfer_us,
            }
        })
        .collect()
}

/// Computes the headline numbers of the abstract for direct comparison with
/// the paper (7.5 µs / 350.9 MB/s intranode, 34.9 µs / 12.1 MB/s internode,
/// ≈12–13 µs translation overhead).
pub fn headline_numbers(iters: usize) -> HeadlineNumbers {
    let intranode_latency_us = single_trip_us(ProtocolConfig::paper_intranode(), true, 10, iters);
    let internode_latency_us = single_trip_us(ProtocolConfig::paper_internode(), false, 4, iters);
    let intranode_bw = bandwidth_sweep(true, &[2048, 4000, 8192], iters)
        .into_iter()
        .map(|p| p.mb_per_s)
        .fold(0.0f64, f64::max);
    let internode_bw = bandwidth_sweep(false, &[8192, 16384, 32768], iters)
        .into_iter()
        .map(|p| p.mb_per_s)
        .fold(0.0f64, f64::max);
    let hw = simsmp::HwConfig::pentium_pro_1999();
    HeadlineNumbers {
        intranode_latency_us,
        intranode_peak_bw_mb_s: intranode_bw,
        internode_latency_us,
        internode_peak_bw_mb_s: internode_bw,
        translation_overhead_us: hw.translation_cost(32 * 1024).as_micros_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ITERS: usize = 12;

    #[test]
    fn fig3_shapes_hold() {
        let points = fig3_intranode(&[10, 1000, 8192], ITERS);
        assert_eq!(points.len(), 3);
        // Latency grows with message size for every mechanism.
        for mode in ["push-zero", "push-pull", "push-all"] {
            let small = points[0].get(mode).unwrap();
            let large = points[2].get(mode).unwrap();
            assert!(large > small, "{mode}: {small} !< {large}");
        }
        // Push-Zero pays the synchronisation penalty for tiny messages:
        // it must not beat Push-Pull at 10 bytes.
        let p10 = &points[0];
        assert!(
            p10.get("push-zero").unwrap() >= p10.get("push-pull").unwrap() * 0.99,
            "push-zero should not win for tiny messages"
        );
        // Intranode latencies stay well under the internode scale.
        assert!(p10.get("push-pull").unwrap() < 30.0);
    }

    #[test]
    fn fig4_full_optimisation_wins_for_large_messages() {
        let points = fig4_internode(&[4, 1400], ITERS);
        let small = &points[0];
        let large = &points[1];
        // Below 760 bytes everything is pushed; the four variants must be
        // close to each other (within a handful of microseconds).
        let small_vals: Vec<f64> = small.series.iter().map(|&(_, v)| v).collect();
        let spread = small_vals.iter().cloned().fold(f64::MIN, f64::max)
            - small_vals.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            spread < 15.0,
            "small-message spread {spread:.1} us too wide"
        );
        // At 1400 bytes the fully optimised variant beats the unoptimised one.
        let no_opt = large.get("no optimization").unwrap();
        let full = large.get("full optimization").unwrap();
        assert!(
            full < no_opt,
            "full optimisation ({full:.1} us) must beat no optimisation ({no_opt:.1} us)"
        );
        // And each individual technique also helps.
        assert!(large.get("mask only").unwrap() <= no_opt);
        assert!(large.get("overlap only").unwrap() <= no_opt);
    }

    #[test]
    fn late_receiver_push_all_collapses() {
        let points = early_late_test(EarlyLateVariant::Late, &[4096], 6);
        let p = &points[0];
        let push_all = p.get("push-all/late").unwrap();
        let push_pull = p.get("push-pull/late").unwrap();
        // Push-All overwhelms the 4 KiB pushed buffer and needs go-back-N
        // recovery: its latency must be dramatically worse than Push-Pull's.
        assert!(
            push_all > push_pull * 2.0,
            "push-all ({push_all:.0} us) should collapse vs push-pull ({push_pull:.0} us)"
        );
    }

    #[test]
    fn early_receiver_no_collapse() {
        let points = early_late_test(EarlyLateVariant::Early, &[4096], 6);
        let p = &points[0];
        let push_all = p.get("push-all/early").unwrap();
        let push_pull = p.get("push-pull/early").unwrap();
        // With an early receiver all mechanisms copy directly; they stay
        // within a modest factor of each other.
        assert!(
            push_all < push_pull * 1.2,
            "early receiver: push-all {push_all:.0} vs push-pull {push_pull:.0}"
        );
    }

    #[test]
    fn headline_numbers_in_paper_ballpark() {
        let h = headline_numbers(ITERS);
        assert!(
            (3.0..25.0).contains(&h.intranode_latency_us),
            "intranode latency {:.1} us",
            h.intranode_latency_us
        );
        assert!(
            (20.0..60.0).contains(&h.internode_latency_us),
            "internode latency {:.1} us",
            h.internode_latency_us
        );
        assert!(
            h.intranode_peak_bw_mb_s > 100.0,
            "intranode bandwidth {:.1} MB/s",
            h.intranode_peak_bw_mb_s
        );
        assert!(
            (6.0..12.6).contains(&h.internode_peak_bw_mb_s),
            "internode bandwidth {:.1} MB/s",
            h.internode_peak_bw_mb_s
        );
    }

    #[test]
    fn btp_sweeps_produce_data() {
        let sweep2 = btp2_sweep(&[0, 680, 1360], 1400, 8);
        assert_eq!(sweep2.len(), 3);
        assert!(sweep2.iter().all(|&(_, us)| us > 0.0));
        let sweep1 = btp1_sweep(&[0, 80, 400], 1400, 8);
        assert_eq!(sweep1.len(), 3);
        assert!(sweep1.iter().all(|&(_, us)| us > 0.0));
    }

    #[test]
    fn figure_point_helpers() {
        let p = FigurePoint {
            size: 100,
            series: vec![("a".into(), 1.5), ("b".into(), 2.5)],
        };
        assert_eq!(p.get("a"), Some(1.5));
        assert_eq!(p.get("c"), None);
        assert_eq!(p.csv_row(), "100,1.50,2.50");
    }
}
