//! A deterministic, in-memory binding of the operations API onto a cluster
//! of protocol engines — the "sim cluster" [`RawTransport`] backend of the
//! facade crate's `Endpoint` front-end.
//!
//! Unlike [`SimCluster`](crate::cluster::SimCluster), which models time and
//! hardware and drives processes from scripts, the loopback cluster pumps
//! the same engines **synchronously with zero latency**: every post routes
//! the resulting packets (intranode) and go-back-N frames (internode) to
//! their destination engines immediately, in order and without loss, until
//! the whole cluster is quiescent.  That makes it the ideal substrate for
//! examples, integration tests, and benchmarks that care about protocol
//! behaviour — completions, wildcards, cancellation, truncation — rather
//! than timing.
//!
//! Because delivery is lossless and in-order, retransmission timers can
//! never usefully fire and are simply discarded.

use ppmsg_core::reliability::Frame;
use ppmsg_core::wire::Packet;
use ppmsg_core::{
    Action, Completion, CompletionQueue, Endpoint, EndpointConfig, EndpointStats, OpId, ProcessId,
    ProtocolConfig, RawTransport, RecvBuf, RecvOp, Result, SendOp, Tag, TruncationPolicy, U64Index,
};

use bytes::Bytes;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::task::Waker;

enum Item {
    Packet(Packet),
    Frame(Frame),
}

struct Proc {
    id: ProcessId,
    engine: Endpoint,
    /// Completions drained from the engine, op-indexed and awaiting the
    /// application (with the wakers of async tasks awaiting them).
    done: CompletionQueue,
}

struct Router {
    procs: Vec<Proc>,
    index: U64Index,
    work: VecDeque<(ProcessId, ProcessId, Item)>,
    actions: Vec<Action>,
    comps: Vec<Completion>,
    /// Packets and frames addressed to a process that was never added to the
    /// cluster.  They are dropped (there is no engine to deliver them to),
    /// but the drop is counted so a misrouted test fails loudly instead of
    /// hanging on a completion that can never arrive.
    unroutable: u64,
    /// Wakers collected while routing; invoked by the endpoint that holds
    /// the router lock **after** releasing it (a waker is arbitrary executor
    /// code and may poll — and so re-enter the router — inline).
    pending_wakes: Vec<Waker>,
    /// Interaction counter doubling as the cluster's virtual trace clock:
    /// the loopback substrate has no time model, so trace events are
    /// stamped with the (deterministic) interaction ordinal instead.
    steps: u64,
}

impl Router {
    fn idx(&self, id: ProcessId) -> Option<usize> {
        self.index.get(id.as_u64()).map(|i| i as usize)
    }

    /// Drains `procs[idx]`'s engine outputs into the work queue and its
    /// completion list, then routes queued traffic until the cluster is
    /// quiescent.
    fn pump_from(&mut self, idx: usize) {
        self.collect(idx);
        while let Some((src, dst, item)) = self.work.pop_front() {
            let Some(d) = self.idx(dst) else {
                // Peer not added: the traffic is dropped, visibly.
                self.unroutable += 1;
                continue;
            };
            match item {
                Item::Packet(packet) => self.procs[d].engine.handle_packet(src, packet),
                Item::Frame(frame) => self.procs[d].engine.handle_frame(src, frame),
            }
            self.collect(d);
        }
    }

    /// Moves one engine's pending actions into the work queue and its
    /// completions into the endpoint's completion queue, deferring the
    /// wakers of awaiting tasks into [`Router::pending_wakes`].
    fn collect(&mut self, idx: usize) {
        let mut actions = std::mem::take(&mut self.actions);
        let mut comps = std::mem::take(&mut self.comps);
        let id;
        let mut woken;
        {
            let proc = &mut self.procs[idx];
            id = proc.id;
            proc.engine.drain_actions_into(&mut actions);
            proc.engine.drain_completions_into(&mut comps);
            woken = proc.done.publish(&mut comps);
        }
        if !woken.is_empty() {
            self.pending_wakes.append(&mut woken);
            self.procs[idx].done.recycle_woken(woken);
        }
        self.comps = comps;
        for action in actions.drain(..) {
            match action {
                Action::Transmit { dst, packet, .. } => {
                    self.work.push_back((id, dst, Item::Packet(packet)));
                }
                Action::TransmitFrame { dst, frame, .. } => {
                    self.work.push_back((id, dst, Item::Frame(frame)));
                }
                // Zero-latency lossless delivery: cost-model hints have no
                // substrate to charge and timers can never usefully fire.
                Action::Translate { .. }
                | Action::Copy { .. }
                | Action::SetTimer { .. }
                | Action::CancelTimer { .. }
                | Action::PacketDropped { .. }
                | Action::ChannelFailed { .. } => {}
            }
        }
        self.actions = actions;
    }
}

/// A zero-latency in-memory cluster of protocol endpoints sharing one
/// synchronous router.  Endpoints may live on the same simulated node
/// (intranode packet path) or different nodes (internode go-back-N path).
#[derive(Clone)]
pub struct LoopbackCluster {
    router: Arc<Mutex<Router>>,
    protocol: ProtocolConfig,
}

impl LoopbackCluster {
    /// Creates an empty cluster; every endpoint uses `protocol`.
    pub fn new(protocol: ProtocolConfig) -> Self {
        LoopbackCluster {
            router: Arc::new(Mutex::new(Router {
                procs: Vec::new(),
                index: U64Index::new(),
                work: VecDeque::new(),
                actions: Vec::new(),
                comps: Vec::new(),
                unroutable: 0,
                pending_wakes: Vec::new(),
                steps: 0,
            })),
            protocol,
        }
    }

    /// Number of packets and frames addressed to a process that was never
    /// added to the cluster.  Any non-zero value means a test (or example)
    /// is sending into the void — assert this is `0` to catch misroutes.
    pub fn unroutable_drops(&self) -> u64 {
        self.router.lock().unwrap().unroutable
    }

    /// Adds a process to the cluster and returns its endpoint handle.
    ///
    /// # Panics
    ///
    /// Panics if the process was already added.
    pub fn add_endpoint(&self, id: ProcessId) -> LoopbackEndpoint {
        self.add_endpoint_with(id, &EndpointConfig::new())
    }

    /// Adds a process with per-endpoint configuration overrides: the
    /// completion-retention cap, go-back-N window, and BTP eager threshold
    /// from `config` replace the cluster-wide defaults for this endpoint
    /// only.
    ///
    /// Only the protocol-and-queue overrides (retention cap, window, eager
    /// threshold) apply here; the config's default *truncation policy* is a
    /// front-end concern — wrap the returned endpoint in the facade's
    /// `Endpoint::with_config(raw, config)` to honor it.
    ///
    /// # Panics
    ///
    /// Panics if the process was already added or the resulting protocol
    /// configuration is invalid.
    pub fn add_endpoint_with(&self, id: ProcessId, config: &EndpointConfig) -> LoopbackEndpoint {
        let mut router = self.router.lock().unwrap();
        assert!(
            router.index.get(id.as_u64()).is_none(),
            "endpoint {id} added twice"
        );
        let mut done = CompletionQueue::new();
        config.apply_retention(&mut done);
        let idx = router.procs.len() as u32;
        router.index.insert(id.as_u64(), idx);
        router.procs.push(Proc {
            id,
            engine: Endpoint::new(id, config.apply_protocol(self.protocol.clone())),
            done,
        });
        LoopbackEndpoint {
            router: self.router.clone(),
            id,
        }
    }
}

/// One process's handle onto a [`LoopbackCluster`].
#[derive(Clone)]
pub struct LoopbackEndpoint {
    router: Arc<Mutex<Router>>,
    id: ProcessId,
}

impl LoopbackEndpoint {
    /// This endpoint's process id.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    fn with_engine<R>(&self, f: impl FnOnce(&mut Endpoint) -> R) -> R {
        let mut router = self.router.lock().unwrap();
        // Stamp this interaction's trace events with the deterministic
        // interaction ordinal (the loopback cluster models no time).
        router.steps += 1;
        ppmsg_core::telemetry::clock::set_virtual_us(router.steps);
        let idx = router.idx(self.id).expect("endpoint registered");
        let result = f(&mut router.procs[idx].engine);
        router.pump_from(idx);
        // Wake awaiting tasks only after the router lock is released; the
        // take-only-when-non-empty dance preserves the scratch capacity on
        // the (common) no-waker path.
        let wakes = if router.pending_wakes.is_empty() {
            Vec::new()
        } else {
            std::mem::take(&mut router.pending_wakes)
        };
        drop(router);
        // Return the thread's trace clock to wall time: the same test
        // thread may go on to drive a wall-clocked host backend.
        ppmsg_core::telemetry::clock::set_wall();
        ppmsg_core::ops::wake_all(wakes, |drained| {
            let mut router = self.router.lock().unwrap();
            if drained.capacity() > router.pending_wakes.capacity() {
                router.pending_wakes = drained;
            }
        });
        result
    }

    /// Posts a send; the transfer (including any pull phase the peer
    /// triggers) is routed to quiescence before this returns.
    pub fn post_send(&self, peer: ProcessId, tag: Tag, data: impl Into<Bytes>) -> Result<SendOp> {
        let data = data.into();
        self.with_engine(|e| e.post_send(peer, tag, data))
    }

    /// Posts a vectored send: `segments` arrive as one concatenated message
    /// but are never coalesced on the wire; see
    /// [`Endpoint::post_send_vectored`](ppmsg_core::Endpoint::post_send_vectored).
    pub fn post_send_vectored(
        &self,
        peer: ProcessId,
        tag: Tag,
        segments: &[Bytes],
    ) -> Result<SendOp> {
        self.with_engine(|e| e.post_send_vectored(peer, tag, segments))
    }

    /// Posts an engine-buffered receive (wildcards allowed).
    pub fn post_recv(
        &self,
        src: ProcessId,
        tag: Tag,
        capacity: usize,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        self.with_engine(|e| e.post_recv_with(src, tag, capacity, policy))
    }

    /// Posts a caller-buffered receive (wildcards allowed).
    pub fn post_recv_into(
        &self,
        src: ProcessId,
        tag: Tag,
        buf: RecvBuf,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        self.with_engine(|e| e.post_recv_into(src, tag, buf, policy))
    }

    /// Cancels a still-unmatched receive; see
    /// [`Endpoint::cancel`](ppmsg_core::Endpoint::cancel).
    pub fn cancel(&self, op: RecvOp) -> bool {
        self.with_engine(|e| e.cancel(op))
    }

    /// Cancels a posted send whose remainder has not been pulled yet; see
    /// [`Endpoint::cancel_send`](ppmsg_core::Endpoint::cancel_send).
    pub fn cancel_send(&self, op: SendOp) -> bool {
        self.with_engine(|e| e.cancel_send(op))
    }

    /// Takes the completion of `op` if the operation has finished.  The
    /// cluster is synchronous, so anything that can complete has already
    /// completed by the time this is called — there is nothing to wait for.
    pub fn take_completion(&self, op: OpId) -> Option<Completion> {
        let mut router = self.router.lock().unwrap();
        let idx = router.idx(self.id).expect("endpoint registered");
        router.procs[idx].done.take(op)
    }

    /// Protocol statistics of this endpoint, including the completion
    /// queue's eviction counter
    /// ([`EndpointStats::completions_evicted`]).
    pub fn stats(&self) -> EndpointStats {
        let router = self.router.lock().unwrap();
        let idx = router.idx(self.id).expect("endpoint registered");
        let mut stats = router.procs[idx].engine.stats();
        stats.completions_evicted = router.procs[idx].done.evicted();
        stats
    }
}

/// The loopback binding's backend contract: every post routes the cluster
/// to quiescence synchronously, and completion access goes through the
/// per-process queue under the router lock (wakers collected while routing
/// are invoked only after the lock is released).
impl RawTransport for LoopbackEndpoint {
    fn local_id(&self) -> ProcessId {
        self.id()
    }

    fn post_send(&self, peer: ProcessId, tag: Tag, data: Bytes) -> Result<SendOp> {
        LoopbackEndpoint::post_send(self, peer, tag, data)
    }

    fn post_send_vectored(&self, peer: ProcessId, tag: Tag, segments: &[Bytes]) -> Result<SendOp> {
        LoopbackEndpoint::post_send_vectored(self, peer, tag, segments)
    }

    fn post_recv(
        &self,
        src: ProcessId,
        tag: Tag,
        capacity: usize,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        LoopbackEndpoint::post_recv(self, src, tag, capacity, policy)
    }

    fn post_recv_into(
        &self,
        src: ProcessId,
        tag: Tag,
        buf: RecvBuf,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        LoopbackEndpoint::post_recv_into(self, src, tag, buf, policy)
    }

    fn cancel_recv(&self, op: RecvOp) -> bool {
        LoopbackEndpoint::cancel(self, op)
    }

    fn cancel_send(&self, op: SendOp) -> bool {
        LoopbackEndpoint::cancel_send(self, op)
    }

    fn with_completions(&self, f: &mut dyn FnMut(&mut CompletionQueue)) {
        let mut router = self.router.lock().unwrap();
        let idx = router.idx(self.id).expect("endpoint registered");
        f(&mut router.procs[idx].done);
    }

    fn stats(&self) -> EndpointStats {
        LoopbackEndpoint::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppmsg_core::{Status, ANY_SOURCE, ANY_TAG};

    fn payload(len: usize) -> Bytes {
        Bytes::from((0..len).map(|i| (i % 251) as u8).collect::<Vec<u8>>())
    }

    #[test]
    fn intranode_and_internode_transfer() {
        let cluster =
            LoopbackCluster::new(ProtocolConfig::paper_internode().with_pushed_buffer(64 * 1024));
        let a = cluster.add_endpoint(ProcessId::new(0, 0));
        let b = cluster.add_endpoint(ProcessId::new(0, 1)); // same node
        let c = cluster.add_endpoint(ProcessId::new(1, 0)); // other node
        for peer in [&b, &c] {
            let data = payload(10_000);
            let recv = peer
                .post_recv(a.id(), Tag(1), 10_000, TruncationPolicy::Error)
                .unwrap();
            let send = a.post_send(peer.id(), Tag(1), data.clone()).unwrap();
            let done = peer.take_completion(OpId::Recv(recv)).expect("delivered");
            assert_eq!(done.status, Status::Ok);
            assert_eq!(done.data.unwrap(), data);
            assert!(a.take_completion(OpId::Send(send)).is_some());
        }
    }

    #[test]
    fn wildcard_and_cancel() {
        let cluster =
            LoopbackCluster::new(ProtocolConfig::paper_internode().with_pushed_buffer(64 * 1024));
        let a = cluster.add_endpoint(ProcessId::new(0, 0));
        let b = cluster.add_endpoint(ProcessId::new(1, 0));
        let cancelled = b
            .post_recv(a.id(), Tag(9), 64, TruncationPolicy::Error)
            .unwrap();
        assert!(b.cancel(cancelled));
        let wild = b
            .post_recv(ANY_SOURCE, ANY_TAG, 4096, TruncationPolicy::Error)
            .unwrap();
        let data = payload(2000);
        a.post_send(b.id(), Tag(9), data.clone()).unwrap();
        let done = b.take_completion(OpId::Recv(wild)).expect("wildcard match");
        assert_eq!(done.peer, a.id());
        assert_eq!(done.tag, Tag(9));
        assert_eq!(done.data.unwrap(), data);
        assert_eq!(
            b.take_completion(OpId::Recv(cancelled)).unwrap().status,
            Status::Cancelled
        );
    }

    #[test]
    fn recv_into_returns_buffer() {
        let cluster = LoopbackCluster::new(ProtocolConfig::paper_intranode());
        let a = cluster.add_endpoint(ProcessId::new(0, 0));
        let b = cluster.add_endpoint(ProcessId::new(0, 1));
        let data = payload(4096);
        let op = b
            .post_recv_into(
                a.id(),
                Tag(2),
                RecvBuf::with_capacity(4096),
                TruncationPolicy::Error,
            )
            .unwrap();
        a.post_send(b.id(), Tag(2), data.clone()).unwrap();
        let done = b.take_completion(OpId::Recv(op)).expect("delivered");
        let buf = done.buf.expect("buffer handed back");
        assert_eq!(buf.as_slice(), &data[..]);
    }

    #[test]
    fn traffic_to_unknown_peer_is_counted() {
        let cluster = LoopbackCluster::new(ProtocolConfig::paper_internode());
        let a = cluster.add_endpoint(ProcessId::new(0, 0));
        assert_eq!(cluster.unroutable_drops(), 0);
        // Never added: the send's frames fall off the edge of the cluster.
        let ghost = ProcessId::new(7, 0);
        a.post_send(ghost, Tag(1), payload(64)).unwrap();
        assert!(
            cluster.unroutable_drops() > 0,
            "misrouted traffic must be observable"
        );
    }
}
