//! The simulation runtime: processes running scripts on simulated SMP nodes,
//! exchanging messages through the Push-Pull protocol engine, with every
//! protocol action charged against simulated hardware.

use ppmsg_core::reliability::Frame;
use ppmsg_core::wire::Packet;
use ppmsg_core::{
    Action, Completion, Endpoint, InjectMode, OpId, ProcessId, ProtocolConfig, RecvOp, Status, Tag,
    TimerId, U64Index,
};
use simnet::loss::LossModel;
use simnet::{EthernetLink, LinkConfig, Nic, NicConfig, Switch, SwitchConfig};
use simsmp::cpu::ProcessorId;
use simsmp::interrupt::InterruptMode;
use simsmp::time::{SimDuration, SimTime};
use simsmp::{Engine, EventId, HwConfig, SmpNode};
use std::collections::HashMap;

use bytes::Bytes;

/// Configuration of a simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Per-node hardware cost model.
    pub hw: HwConfig,
    /// Number of SMP nodes.
    pub nodes: u32,
    /// Protocol configuration shared by every endpoint.
    pub protocol: ProtocolConfig,
    /// Reception-handler invocation mode (the paper uses symmetric
    /// interrupts for all optimised tests).
    pub interrupt_mode: InterruptMode,
    /// NIC cost/capacity model.
    pub nic: NicConfig,
    /// Link model (100 Mbit/s Fast Ethernet by default).
    pub link: LinkConfig,
    /// Switch model.
    pub switch: SwitchConfig,
}

impl ClusterConfig {
    /// The paper's testbed: two quad Pentium Pro nodes, Fast Ethernet,
    /// symmetric interrupts.
    pub fn paper_testbed(protocol: ProtocolConfig) -> Self {
        ClusterConfig {
            hw: HwConfig::pentium_pro_1999(),
            nodes: 2,
            protocol,
            interrupt_mode: InterruptMode::Symmetric,
            nic: NicConfig::default(),
            link: LinkConfig::default(),
            switch: SwitchConfig::default(),
        }
    }
}

/// One step of a simulated application process.
#[derive(Debug, Clone)]
pub enum Op {
    /// Execute `n` NOP instructions on the process's processor.
    Compute(u64),
    /// Post a blocking-on-initiation send of `len` bytes to `peer`.
    Send {
        /// Destination process.
        peer: ProcessId,
        /// Message tag.
        tag: Tag,
        /// Message length in bytes.
        len: usize,
    },
    /// Post a receive and block until the message has been delivered.
    Recv {
        /// Source process.
        peer: ProcessId,
        /// Message tag.
        tag: Tag,
        /// Expected message length in bytes.
        len: usize,
    },
    /// Record the current simulated time in the process's mark list under
    /// `slot` (used by the experiment harness to compute latencies).
    MarkTime(usize),
}

/// A process and the script it runs.
#[derive(Debug, Clone)]
pub struct ProcessScript {
    /// The process identity.
    pub process: ProcessId,
    /// The operations the process executes, in order.
    pub ops: Vec<Op>,
}

/// The result of a simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Simulated time at which the last event was processed.
    pub finished_at: SimTime,
    /// Time marks recorded by each process: `(slot, time)` pairs in the
    /// order they were executed.
    pub marks: HashMap<ProcessId, Vec<(usize, SimTime)>>,
    /// Protocol statistics per process.
    pub endpoint_stats: HashMap<ProcessId, ppmsg_core::EndpointStats>,
    /// Pushed-buffer statistics per process.
    pub pushed_buffer_stats: HashMap<ProcessId, ppmsg_core::queues::PushedBufferStats>,
    /// Total frames dropped on the wire or at NIC/pushed-buffer admission.
    pub frames_dropped: u64,
    /// Number of simulation events processed.
    pub events: u64,
}

impl RunReport {
    /// The marks of one process, as raw times in slot order.
    pub fn marks_of(&self, process: ProcessId) -> Vec<SimTime> {
        self.marks
            .get(&process)
            .map(|v| v.iter().map(|&(_, t)| t).collect())
            .unwrap_or_default()
    }
}

#[derive(Debug)]
enum Ev {
    AppStep {
        process: ProcessId,
    },
    RecvRegister {
        process: ProcessId,
        peer: ProcessId,
        tag: Tag,
        len: usize,
    },
    HandlerRun {
        dst: ProcessId,
        src: ProcessId,
        item: WireItem,
        wire_bytes: usize,
    },
    Timer {
        owner: ProcessId,
        timer: TimerId,
    },
}

#[derive(Debug)]
enum WireItem {
    Packet(Packet),
    Frame(Frame),
}

#[derive(Debug)]
struct ScriptState {
    ops: Vec<Op>,
    pc: usize,
    marks: Vec<(usize, SimTime)>,
    finished: bool,
}

/// Per-process simulation state, indexed by the dense process index the
/// cluster assigns at `add_process` time.  Everything the per-event hot path
/// touches is a direct vector access — the `HashMap` probes of the original
/// implementation are gone.
struct ProcState {
    id: ProcessId,
    endpoint: Endpoint,
    script: ScriptState,
    /// The receive operation the process is currently blocked on, if any.
    blocked: Option<RecvOp>,
    /// Completion time of each finished receive, indexed by operation slot
    /// with the generation stored alongside (slots are dense and recycled,
    /// so this stays a flat table).
    recv_done: Vec<Option<(u32, SimTime)>>,
    /// Outstanding retransmission timers `(peer key, generation, event)`.
    /// Go-back-N keeps at most one timer per peer channel, so a linear scan
    /// over this short list is cheaper than any map.
    timers: Vec<(u64, u64, EventId)>,
}

impl ProcState {
    fn recv_done_at(&self, op: RecvOp) -> Option<SimTime> {
        self.recv_done
            .get(op.slot() as usize)
            .copied()
            .flatten()
            .and_then(|(generation, time)| (generation == op.generation()).then_some(time))
    }

    fn set_recv_done(&mut self, op: RecvOp, time: SimTime) {
        let idx = op.slot() as usize;
        if self.recv_done.len() <= idx {
            self.recv_done.resize(idx + 1, None);
        }
        self.recv_done[idx] = Some((op.generation(), time));
    }
}

/// A simulated cluster running Push-Pull Messaging.
pub struct SimCluster {
    cfg: ClusterConfig,
    nodes: Vec<SmpNode>,
    nics: Vec<Nic>,
    uplinks: Vec<EthernetLink>,
    downlinks: Vec<EthernetLink>,
    switch: Switch,
    /// Dense per-process state; `proc_index` interns `ProcessId`s.
    procs: Vec<ProcState>,
    proc_index: U64Index,
    /// Reusable action buffer (drained endpoint actions land here instead of
    /// a fresh `Vec` per event).
    action_buf: Vec<Action>,
    /// Reusable completion buffer, drained after every engine interaction.
    comp_buf: Vec<Completion>,
    loss: LossModel,
    frames_dropped: u64,
    max_events: u64,
}

impl SimCluster {
    /// Builds a cluster with the given configuration and no processes.
    pub fn new(cfg: ClusterConfig) -> Self {
        let nodes = (0..cfg.nodes)
            .map(|i| SmpNode::new(i, cfg.hw.clone(), cfg.interrupt_mode))
            .collect();
        let nics = (0..cfg.nodes).map(|_| Nic::new(cfg.nic)).collect();
        let uplinks = (0..cfg.nodes)
            .map(|_| EthernetLink::new(cfg.link))
            .collect();
        let downlinks = (0..cfg.nodes)
            .map(|_| EthernetLink::new(cfg.link))
            .collect();
        let switch = Switch::new(cfg.switch, cfg.nodes as usize);
        SimCluster {
            cfg,
            nodes,
            nics,
            uplinks,
            downlinks,
            switch,
            procs: Vec::new(),
            proc_index: U64Index::new(),
            action_buf: Vec::new(),
            comp_buf: Vec::new(),
            loss: LossModel::none(),
            frames_dropped: 0,
            max_events: 50_000_000,
        }
    }

    /// Dense index of `process`, panicking for unknown processes.
    #[inline]
    fn proc_idx(&self, process: ProcessId) -> usize {
        self.proc_index
            .get(process.as_u64())
            .expect("unknown process") as usize
    }

    /// Injects a wire-loss model (defaults to lossless).
    pub fn set_loss(&mut self, loss: LossModel) {
        self.loss = loss;
    }

    /// Caps the number of events processed (safety valve for runaway runs).
    pub fn set_max_events(&mut self, max: u64) {
        self.max_events = max;
    }

    /// Registers a process and the script it runs.
    ///
    /// # Panics
    ///
    /// Panics if the process's node index is outside the cluster or if the
    /// process was already added.
    pub fn add_process(&mut self, script: ProcessScript) {
        let p = script.process;
        assert!(
            (p.node.index()) < self.nodes.len(),
            "process {p} placed on a node outside the cluster"
        );
        assert!(
            self.proc_index.get(p.as_u64()).is_none(),
            "process {p} added twice"
        );
        let idx = self.procs.len() as u32;
        self.proc_index.insert(p.as_u64(), idx);
        self.procs.push(ProcState {
            id: p,
            endpoint: Endpoint::new(p, self.cfg.protocol.clone()),
            script: ScriptState {
                ops: script.ops,
                pc: 0,
                marks: Vec::new(),
                finished: false,
            },
            blocked: None,
            recv_done: Vec::new(),
            timers: Vec::new(),
        });
    }

    /// Runs the simulation until every script has finished and the event
    /// queue has drained (or the event cap is hit).
    pub fn run(&mut self) -> RunReport {
        let mut engine: Engine<Ev> = Engine::new();
        for p in &self.procs {
            engine.schedule_at(SimTime::ZERO, Ev::AppStep { process: p.id });
        }
        let cap = self.max_events;
        engine.run_while(|eng, time, ev| {
            self.handle_event(eng, time, ev);
            eng.events_processed() < cap
        });
        let finished_at = engine.now();
        let events = engine.events_processed();

        let mut marks = HashMap::new();
        let mut endpoint_stats = HashMap::new();
        let mut pushed_buffer_stats = HashMap::new();
        for p in &self.procs {
            marks.insert(p.id, p.script.marks.clone());
            endpoint_stats.insert(p.id, p.endpoint.stats());
            pushed_buffer_stats.insert(p.id, p.endpoint.pushed_buffer_stats());
        }
        RunReport {
            finished_at,
            marks,
            endpoint_stats,
            pushed_buffer_stats,
            frames_dropped: self.frames_dropped,
            events,
        }
    }

    /// `true` once every registered script has run to completion.
    pub fn all_finished(&self) -> bool {
        self.procs.iter().all(|p| p.script.finished)
    }

    // ------------------------------------------------------------------
    // Event handling.
    // ------------------------------------------------------------------

    fn handle_event(&mut self, engine: &mut Engine<Ev>, time: SimTime, ev: Ev) {
        match ev {
            Ev::AppStep { process } => self.advance_script(engine, process, time),
            Ev::RecvRegister {
                process,
                peer,
                tag,
                len,
            } => self.register_receive(engine, process, peer, tag, len, time),
            Ev::HandlerRun {
                dst,
                src,
                item,
                wire_bytes,
            } => self.run_reception_handler(engine, dst, src, item, wire_bytes, time),
            Ev::Timer { owner, timer } => {
                let Some(idx) = self.proc_index.get(owner.as_u64()) else {
                    return;
                };
                let idx = idx as usize;
                let proc = &mut self.procs[idx];
                let peer_key = timer.peer.as_u64();
                proc.timers.retain(|&(peer, generation, _)| {
                    !(peer == peer_key && generation == timer.generation)
                });
                proc.endpoint.handle_timer(timer);
                let mut actions = std::mem::take(&mut self.action_buf);
                self.procs[idx].endpoint.drain_actions_into(&mut actions);
                let cpu = self.nodes[owner.node.index()].processors().least_loaded();
                let (_, done) = self.process_actions(engine, owner, &mut actions, time, cpu, false);
                self.action_buf = actions;
                self.absorb_completions(engine, owner, done);
            }
        }
    }

    fn advance_script(&mut self, engine: &mut Engine<Ev>, process: ProcessId, time: SimTime) {
        let idx = self.proc_idx(process);
        let hw = self.cfg.hw.clone();
        loop {
            let (op, pc) = {
                let script = &mut self.procs[idx].script;
                if script.pc >= script.ops.len() {
                    script.finished = true;
                    return;
                }
                (script.ops[script.pc].clone(), script.pc)
            };
            match op {
                Op::MarkTime(slot) => {
                    let script = &mut self.procs[idx].script;
                    script.marks.push((slot, time));
                    script.pc = pc + 1;
                    continue;
                }
                Op::Compute(nops) => {
                    let cost = hw.compute_cost(nops);
                    let node = &mut self.nodes[process.node.index()];
                    let (_, end) = node.run_app_work(process.local_rank, time, cost);
                    self.procs[idx].script.pc = pc + 1;
                    engine.schedule_at(end, Ev::AppStep { process });
                    return;
                }
                Op::Send { peer, tag, len } => {
                    // Stage 1: transmission-thread invocation overhead on the
                    // application's processor.
                    let cost = hw.syscall_cost + hw.send_proc_cost;
                    let app_cpu =
                        self.nodes[process.node.index()].app_processor(process.local_rank);
                    let (_, t1) = self.nodes[process.node.index()]
                        .processors_mut()
                        .run_on(app_cpu, time, cost);
                    let data = Bytes::from(vec![0u8; len]);
                    let ep = &mut self.procs[idx].endpoint;
                    ep.post_send(peer, tag, data).expect("post_send failed");
                    let mut actions = std::mem::take(&mut self.action_buf);
                    self.procs[idx].endpoint.drain_actions_into(&mut actions);
                    let (end, done) =
                        self.process_actions(engine, process, &mut actions, t1, app_cpu, false);
                    self.action_buf = actions;
                    self.absorb_completions(engine, process, done);
                    self.procs[idx].script.pc = pc + 1;
                    engine.schedule_at(end, Ev::AppStep { process });
                    return;
                }
                Op::Recv { peer, tag, len } => {
                    // The receive operation's registration work (system call,
                    // queue insertion, and — without translation masking —
                    // the destination-buffer translation) happens *before*
                    // the receive becomes visible to arriving data.  This is
                    // the race the paper's intranode evaluation hinges on.
                    let opts = self.cfg.protocol.opts;
                    let mut prereg = hw.syscall_cost + hw.queue_op_cost;
                    if opts.zero_buffer && !opts.translation_masking && len > 0 {
                        prereg += hw.translation_cost(len);
                    }
                    let app_cpu =
                        self.nodes[process.node.index()].app_processor(process.local_rank);
                    let (_, t1) = self.nodes[process.node.index()]
                        .processors_mut()
                        .run_on(app_cpu, time, prereg);
                    self.procs[idx].script.pc = pc + 1;
                    engine.schedule_at(
                        t1,
                        Ev::RecvRegister {
                            process,
                            peer,
                            tag,
                            len,
                        },
                    );
                    return;
                }
            }
        }
    }

    fn register_receive(
        &mut self,
        engine: &mut Engine<Ev>,
        process: ProcessId,
        peer: ProcessId,
        tag: Tag,
        len: usize,
        time: SimTime,
    ) {
        let idx = self.proc_idx(process);
        let app_cpu = self.nodes[process.node.index()].app_processor(process.local_rank);
        let op = self.procs[idx]
            .endpoint
            .post_recv(peer, tag, len.max(1))
            .expect("post_recv failed");
        let mut actions = std::mem::take(&mut self.action_buf);
        self.procs[idx].endpoint.drain_actions_into(&mut actions);
        // The destination translation (when not masked) was already charged
        // as part of the registration work, so skip charging it again.
        let (end, comp_time) =
            self.process_actions(engine, process, &mut actions, time, app_cpu, true);
        self.action_buf = actions;
        self.absorb_completions(engine, process, comp_time);
        if let Some(done) = self.procs[idx].recv_done_at(op) {
            let resume = done.max(end) + self.cfg.hw.wakeup_cost;
            engine.schedule_at(resume, Ev::AppStep { process });
        } else {
            self.procs[idx].blocked = Some(op);
        }
    }

    fn run_reception_handler(
        &mut self,
        engine: &mut Engine<Ev>,
        dst: ProcessId,
        src: ProcessId,
        item: WireItem,
        wire_bytes: usize,
        time: SimTime,
    ) {
        let hw = self.cfg.hw.clone();
        let node_idx = dst.node.index();
        let internode = !dst.same_node(&src);
        let (cpu, handler_start) = if internode {
            // Stage 3: reception-handler invocation via the interrupt
            // controller (symmetric interrupts pick the least-loaded CPU).
            self.nics[node_idx].complete_rx(wire_bytes);
            let d = self.nodes[node_idx].dispatch_reception(time);
            (d.processor, d.handler_start)
        } else {
            // Intranode delivery: the kernel agent runs on a processor other
            // than the destination application's processor (§4.1).
            let app_cpu = self.nodes[node_idx].app_processor(dst.local_rank);
            let cpu = self.nodes[node_idx]
                .processors()
                .least_loaded_excluding(app_cpu);
            (cpu, time)
        };
        // Stage 4: reception processing.
        let (_, after_proc) =
            self.nodes[node_idx]
                .processors_mut()
                .run_on(cpu, handler_start, hw.recv_proc_cost);
        let Some(idx) = self.proc_index.get(dst.as_u64()) else {
            return;
        };
        let ep = &mut self.procs[idx as usize].endpoint;
        match item {
            WireItem::Packet(packet) => ep.handle_packet(src, packet),
            WireItem::Frame(frame) => ep.handle_frame(src, frame),
        }
        let mut actions = std::mem::take(&mut self.action_buf);
        self.procs[idx as usize]
            .endpoint
            .drain_actions_into(&mut actions);
        let (_, done) = self.process_actions(engine, dst, &mut actions, after_proc, cpu, false);
        self.action_buf = actions;
        self.absorb_completions(engine, dst, done);
    }

    /// Converts a batch of protocol actions into simulated time, scheduling
    /// follow-on events (wire arrivals, timers).  Returns `(cursor, done)`:
    /// the time the issuing context finishes its own work, and the time any
    /// parallel (least-loaded-processor) copies have drained too — the
    /// moment completions produced by this batch become visible.
    fn process_actions(
        &mut self,
        engine: &mut Engine<Ev>,
        owner: ProcessId,
        actions: &mut Vec<Action>,
        start: SimTime,
        cpu: ProcessorId,
        skip_translate: bool,
    ) -> (SimTime, SimTime) {
        let hw = self.cfg.hw.clone();
        let node_idx = owner.node.index();
        let owner_idx = self.proc_idx(owner);
        let mut cursor = start;
        let mut parallel_end = start;
        for action in actions.drain(..) {
            match action {
                Action::Translate { bytes, .. } => {
                    if !skip_translate {
                        let cost = hw.translation_cost(bytes);
                        let (_, end) = self.nodes[node_idx]
                            .processors_mut()
                            .run_on(cpu, cursor, cost);
                        cursor = end;
                    }
                }
                Action::Copy {
                    bytes,
                    least_loaded,
                    kind,
                    ..
                } => {
                    let cache_hot = matches!(kind, ppmsg_core::CopyKind::DrainPushedBuffer);
                    let cost = hw.memcpy_cost(bytes, cache_hot);
                    if least_loaded {
                        let other = self.nodes[node_idx]
                            .processors()
                            .least_loaded_excluding(cpu);
                        let (_, end) = self.nodes[node_idx]
                            .processors_mut()
                            .run_on(other, cursor, cost);
                        parallel_end = parallel_end.max(end);
                    } else {
                        let (_, end) = self.nodes[node_idx]
                            .processors_mut()
                            .run_on(cpu, cursor, cost);
                        cursor = end;
                    }
                }
                Action::Transmit { dst, packet, .. } => {
                    // Intranode: enqueue a descriptor on the peer's kernel
                    // queue; the kernel agent wakes up shortly after.
                    let cost = hw.lock_cost + hw.queue_op_cost;
                    let (_, end) = self.nodes[node_idx]
                        .processors_mut()
                        .run_on(cpu, cursor, cost);
                    cursor = end;
                    let wire_bytes = packet.wire_size();
                    engine.schedule_at(
                        cursor + hw.wakeup_cost,
                        Ev::HandlerRun {
                            dst,
                            src: owner,
                            item: WireItem::Packet(packet),
                            wire_bytes,
                        },
                    );
                }
                Action::TransmitFrame { dst, frame, inject } => {
                    let wire_bytes = frame.wire_size();
                    let user_space = inject == InjectMode::UserSpaceDirect;
                    let host_cost = if user_space {
                        self.cfg.nic.user_inject_cost
                    } else {
                        self.cfg.nic.kernel_inject_cost
                    };
                    let (_, end) = self.nodes[node_idx]
                        .processors_mut()
                        .run_on(cpu, cursor, host_cost);
                    cursor = end;
                    // Stage 2: data pumping.  DMA into the TX FIFO, wire
                    // serialisation, switch forwarding, DMA out of the RX
                    // FIFO at the destination.
                    let Some(ready) = self.nics[node_idx].enqueue_tx(cursor, wire_bytes) else {
                        self.frames_dropped += 1;
                        continue;
                    };
                    let at_switch = self.uplinks[node_idx].transmit(ready, 0, wire_bytes);
                    self.nics[node_idx].complete_tx(wire_bytes);
                    if self.loss.should_drop() {
                        self.frames_dropped += 1;
                        continue;
                    }
                    let dst_node = dst.node.index();
                    let delivered = self.switch.forward(
                        at_switch,
                        dst_node,
                        wire_bytes,
                        &mut self.downlinks[dst_node],
                    );
                    match self.nics[dst_node].enqueue_rx(delivered, wire_bytes) {
                        Some(visible) => {
                            engine.schedule_at(
                                visible,
                                Ev::HandlerRun {
                                    dst,
                                    src: owner,
                                    item: WireItem::Frame(frame),
                                    wire_bytes,
                                },
                            );
                        }
                        None => {
                            // RX FIFO overflow: the frame is lost and will be
                            // recovered by go-back-N retransmission.
                            self.frames_dropped += 1;
                        }
                    }
                }
                Action::SetTimer { timer, delay_us } => {
                    let at = cursor + SimDuration::from_micros(delay_us);
                    let id = engine.schedule_at(at, Ev::Timer { owner, timer });
                    self.procs[owner_idx]
                        .timers
                        .push((timer.peer.as_u64(), timer.generation, id));
                }
                Action::CancelTimer { timer } => {
                    let peer_key = timer.peer.as_u64();
                    let timers = &mut self.procs[owner_idx].timers;
                    if let Some(pos) = timers.iter().position(|&(peer, generation, _)| {
                        peer == peer_key && generation == timer.generation
                    }) {
                        let (_, _, id) = timers.swap_remove(pos);
                        engine.cancel(id);
                    }
                }
                Action::PacketDropped { .. } => {
                    self.frames_dropped += 1;
                }
                Action::ChannelFailed { peer } => {
                    panic!("go-back-N channel to {peer} failed in simulation");
                }
            }
        }
        (cursor, cursor.max(parallel_end))
    }

    /// Drains the endpoint's completion queue after an engine interaction,
    /// recording receive completion times and waking blocked scripts.  The
    /// simulated completion time is when the interaction's processing
    /// (including parallel copies) finished.
    fn absorb_completions(&mut self, engine: &mut Engine<Ev>, owner: ProcessId, done: SimTime) {
        let idx = self.proc_idx(owner);
        let mut comps = std::mem::take(&mut self.comp_buf);
        self.procs[idx].endpoint.drain_completions_into(&mut comps);
        for completion in comps.drain(..) {
            match completion.op {
                OpId::Send(_) => {}
                OpId::Recv(op) => match completion.status {
                    Status::Ok | Status::Truncated { .. } => {
                        let proc = &mut self.procs[idx];
                        proc.set_recv_done(op, done);
                        if proc.blocked == Some(op) {
                            proc.blocked = None;
                            engine.schedule_at(
                                done + self.cfg.hw.wakeup_cost,
                                Ev::AppStep { process: owner },
                            );
                        }
                    }
                    Status::Cancelled => {}
                    Status::Error(error) => panic!("simulated receive failed: {error}"),
                },
            }
        }
        self.comp_buf = comps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppmsg_core::{ProtocolConfig, ProtocolMode};

    fn pingpong_scripts(
        a: ProcessId,
        b: ProcessId,
        len: usize,
        iters: usize,
    ) -> Vec<ProcessScript> {
        let mut ping = Vec::new();
        let mut pong = Vec::new();
        for i in 0..iters {
            ping.push(Op::MarkTime(i));
            ping.push(Op::Send {
                peer: b,
                tag: Tag(1),
                len,
            });
            ping.push(Op::Recv {
                peer: b,
                tag: Tag(2),
                len,
            });
            pong.push(Op::Recv {
                peer: a,
                tag: Tag(1),
                len,
            });
            pong.push(Op::Send {
                peer: a,
                tag: Tag(2),
                len,
            });
        }
        ping.push(Op::MarkTime(iters));
        vec![
            ProcessScript {
                process: a,
                ops: ping,
            },
            ProcessScript {
                process: b,
                ops: pong,
            },
        ]
    }

    #[test]
    fn intranode_pingpong_completes_with_plausible_latency() {
        let a = ProcessId::new(0, 0);
        let b = ProcessId::new(0, 1);
        let cfg = ClusterConfig::paper_testbed(ProtocolConfig::paper_intranode());
        let mut cluster = SimCluster::new(cfg);
        for s in pingpong_scripts(a, b, 10, 20) {
            cluster.add_process(s);
        }
        let report = cluster.run();
        assert!(cluster.all_finished(), "scripts did not finish");
        let marks = report.marks_of(a);
        assert_eq!(marks.len(), 21);
        // Single-trip latency for a 10-byte intranode message should be in
        // the single-digit-to-low-tens of microseconds (paper: 7.5 us).
        let rtt = marks[marks.len() - 1].since(marks[marks.len() - 2]);
        let single_trip_us = rtt.as_micros_f64() / 2.0;
        assert!(
            (3.0..30.0).contains(&single_trip_us),
            "intranode single trip {single_trip_us:.1} us out of range"
        );
        assert_eq!(report.frames_dropped, 0);
    }

    #[test]
    fn internode_pingpong_completes_with_plausible_latency() {
        let a = ProcessId::new(0, 0);
        let b = ProcessId::new(1, 0);
        let cfg = ClusterConfig::paper_testbed(ProtocolConfig::paper_internode());
        let mut cluster = SimCluster::new(cfg);
        for s in pingpong_scripts(a, b, 4, 20) {
            cluster.add_process(s);
        }
        let report = cluster.run();
        assert!(cluster.all_finished());
        let marks = report.marks_of(a);
        let rtt = marks[marks.len() - 1].since(marks[marks.len() - 2]);
        let single_trip_us = rtt.as_micros_f64() / 2.0;
        // Paper: 34.9 us for short messages over Fast Ethernet.
        assert!(
            (20.0..60.0).contains(&single_trip_us),
            "internode single trip {single_trip_us:.1} us out of range"
        );
    }

    #[test]
    fn internode_large_message_latency_scales_with_wire_time() {
        let a = ProcessId::new(0, 0);
        let b = ProcessId::new(1, 0);
        let cfg = ClusterConfig::paper_testbed(ProtocolConfig::paper_internode());
        let mut cluster = SimCluster::new(cfg);
        for s in pingpong_scripts(a, b, 8192, 5) {
            cluster.add_process(s);
        }
        let report = cluster.run();
        let marks = report.marks_of(a);
        let rtt = marks[marks.len() - 1].since(marks[marks.len() - 2]);
        let single_trip_us = rtt.as_micros_f64() / 2.0;
        // 8 KiB over 100 Mbit/s is at least 650 us of serialisation alone.
        assert!(
            single_trip_us > 600.0,
            "8 KiB single trip {single_trip_us:.1} us implausibly fast"
        );
        assert!(
            single_trip_us < 3000.0,
            "8 KiB single trip {single_trip_us:.1} us implausibly slow"
        );
    }

    #[test]
    fn all_modes_complete_intranode_and_internode() {
        for mode in [
            ProtocolMode::PushZero,
            ProtocolMode::PushPull,
            ProtocolMode::PushAll,
        ] {
            for (a, b) in [
                (ProcessId::new(0, 0), ProcessId::new(0, 1)),
                (ProcessId::new(0, 0), ProcessId::new(1, 0)),
            ] {
                let protocol = ProtocolConfig::paper_internode()
                    .with_mode(mode)
                    .with_pushed_buffer(64 * 1024);
                let cfg = ClusterConfig::paper_testbed(protocol);
                let mut cluster = SimCluster::new(cfg);
                for s in pingpong_scripts(a, b, 3000, 3) {
                    cluster.add_process(s);
                }
                let _ = cluster.run();
                assert!(cluster.all_finished(), "mode {mode:?} pair {a}->{b} hung");
            }
        }
    }

    #[test]
    fn deterministic_runs() {
        let run_once = || {
            let a = ProcessId::new(0, 0);
            let b = ProcessId::new(1, 0);
            let cfg = ClusterConfig::paper_testbed(ProtocolConfig::paper_internode());
            let mut cluster = SimCluster::new(cfg);
            for s in pingpong_scripts(a, b, 1024, 10) {
                cluster.add_process(s);
            }
            cluster.run().finished_at
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn compute_op_costs_time() {
        let a = ProcessId::new(0, 0);
        let cfg = ClusterConfig::paper_testbed(ProtocolConfig::paper_intranode());
        let mut cluster = SimCluster::new(cfg);
        cluster.add_process(ProcessScript {
            process: a,
            ops: vec![Op::MarkTime(0), Op::Compute(100_000), Op::MarkTime(1)],
        });
        let report = cluster.run();
        let marks = report.marks_of(a);
        let elapsed = marks[1].since(marks[0]);
        assert_eq!(elapsed, HwConfig::pentium_pro_1999().compute_cost(100_000));
    }

    #[test]
    #[should_panic(expected = "outside the cluster")]
    fn process_on_unknown_node_rejected() {
        let cfg = ClusterConfig::paper_testbed(ProtocolConfig::paper_internode());
        let mut cluster = SimCluster::new(cfg);
        cluster.add_process(ProcessScript {
            process: ProcessId::new(9, 0),
            ops: vec![],
        });
    }
}
