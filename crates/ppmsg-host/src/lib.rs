//! # ppmsg-host — Push-Pull Messaging over real OS primitives
//!
//! The simulator (`ppmsg-sim`) reproduces the paper's 1999 testbed; this
//! crate shows the same protocol engine driving *real* transports so the
//! library is usable as an actual messaging layer:
//!
//! * **intranode**: processes within one OS process (threads) exchange
//!   packets through an in-memory "kernel agent" built on `crossbeam`
//!   channels — the moral equivalent of the paper's shared-memory path (a
//!   user-space library cannot observe physical addresses, so the
//!   cross-space zero buffer degenerates to passing `Bytes` handles, which
//!   is also a one-copy transfer);
//! * **internode**: endpoints bound to UDP sockets (loopback or a real
//!   network) exchange ARQ-framed packets — either one background thread
//!   per endpoint ([`UdpEndpoint`]) or one [`Reactor`] event loop driving
//!   many endpoints with batched `recvmmsg`/`sendmmsg` I/O and a shared
//!   timer wheel ([`ReactorEndpoint`]).
//!
//! The public entry points are [`HostCluster`] / [`HostEndpoint`] for the
//! intranode fabric and [`UdpEndpoint`] / [`Reactor`] for socket-based
//! internode channels.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod intranode;
mod reactor;
mod udp;

pub use intranode::{HostCluster, HostEndpoint};
pub use reactor::{Reactor, ReactorEndpoint, ReactorMetrics};
pub use udp::UdpEndpoint;

pub use ppmsg_core::{ProcessId, ProtocolConfig, ProtocolMode, Tag};
