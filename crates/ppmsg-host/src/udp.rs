//! Internode transport over UDP sockets: the protocol's go-back-N frames are
//! carried in UDP datagrams, with a background thread per endpoint handling
//! reception, acknowledgements, and retransmission timers.

use bytes::Bytes;
use parking_lot::Mutex;
use ppmsg_core::reliability::Frame;
use ppmsg_core::telemetry::{self, lock_ctx, Counter, EventKind};
use ppmsg_core::wire::PacketBufPool;
use ppmsg_core::{
    Action, Completion, CompletionQueue, Endpoint, EndpointConfig, EndpointStats, ProcessId,
    ProtocolConfig, RawTransport, RecvBuf, RecvOp, Result, SendOp, Tag, TimerId, TruncationPolicy,
};
use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

struct Shared {
    id: ProcessId,
    engine: Mutex<Endpoint>,
    socket: UdpSocket,
    peers: Mutex<HashMap<u64, SocketAddr>>,
    /// Completions drained from the engine, op-indexed so claims are O(1)
    /// (drain order preserved separately), with the wakers of tasks
    /// awaiting them — async futures and the facade's blocking `wait`
    /// alike, so publication needs no condvar broadcast.
    done: Mutex<CompletionQueue>,
    timers: Mutex<Vec<(Instant, TimerId)>>,
    /// Reusable encode buffers: frame serialisation allocates nothing once
    /// the pool has warmed up to the largest frame size in flight.
    codec: Mutex<PacketBufPool>,
    shutdown: AtomicBool,
    /// Engine interactions; the count doubles as the sampling ticket for
    /// the 1-in-[`LOCK_SAMPLE`] lock-hold measurement.
    calls: Counter,
}

/// One engine interaction in this many is timed for the flight recorder.
const LOCK_SAMPLE: u64 = 64;

impl Shared {
    /// Publishes a batch of completions, waking every waiter registered for
    /// one of them.  Drains `comps`, leaving its capacity for reuse.
    /// Wakers are invoked **after** the `done` lock is released: a waker is
    /// arbitrary executor code and may poll (and so re-enter this endpoint)
    /// inline.
    fn publish(&self, comps: &mut Vec<Completion>) {
        if comps.is_empty() {
            return;
        }
        let woken = self.done.lock().publish(comps);
        ppmsg_core::ops::wake_all(woken, |drained| self.done.lock().recycle_woken(drained));
    }

    /// Executes a batch of engine actions: frames go out on the socket and
    /// timers are (re)armed.  Drains `actions`, leaving its capacity for the
    /// caller to reuse.
    fn apply_actions(&self, actions: &mut Vec<Action>) {
        for action in actions.drain(..) {
            match action {
                Action::TransmitFrame { dst, frame, .. } => {
                    let addr = self.peers.lock().get(&dst.as_u64()).copied();
                    if let Some(addr) = addr {
                        // One pool lock covers acquire/encode/send/release;
                        // transmits from the reception thread and user
                        // threads are serialised here anyway by the engine
                        // lock that produced them.
                        let mut codec = self.codec.lock();
                        let mut buf = codec.acquire(frame.wire_size());
                        frame.encode_into(&mut buf);
                        // A lost datagram is recovered by go-back-N, so send
                        // errors (e.g. ECONNREFUSED on loopback) are ignored.
                        let _ = self.socket.send_to(&buf, addr);
                        codec.release(buf);
                    }
                }
                Action::Transmit { dst, .. } => {
                    panic!("UDP endpoint asked to deliver intranode packet to {dst}")
                }
                Action::SetTimer { timer, delay_us } => {
                    let deadline = Instant::now() + Duration::from_micros(delay_us);
                    let mut timers = self.timers.lock();
                    timers.retain(|(_, t)| t.peer != timer.peer);
                    timers.push((deadline, timer));
                }
                Action::CancelTimer { timer } => {
                    self.timers.lock().retain(|(_, t)| {
                        !(t.peer == timer.peer && t.generation == timer.generation)
                    });
                }
                Action::Translate { .. } | Action::Copy { .. } | Action::PacketDropped { .. } => {}
                Action::ChannelFailed { peer } => {
                    eprintln!("ppmsg-host/udp: channel to {peer} failed (peer unreachable)");
                }
            }
        }
    }

    /// Runs one engine interaction, applying its actions **before releasing
    /// the engine lock**, then publishes completions; the caller's buffers
    /// are reused.
    ///
    /// Applying under the lock is load-bearing: engine interactions run on
    /// both user threads and the reception thread, and the go-back-N timer
    /// protocol (`SetTimer` re-arms with a bumped generation, `CancelTimer`
    /// revokes a specific generation) is only correct if each interaction's
    /// actions are applied in the order the engine produced them.  Applying
    /// after unlock let a stale `SetTimer` overwrite a newer re-arm: the
    /// stale generation's timeout was then ignored by the channel, no
    /// retransmission ever fired, and a single reordered/lost datagram
    /// wedged the transfer forever.  (Frame transmission order benefits the
    /// same way — out-of-order sends forced the receiver into discard +
    /// cumulative-ack recovery.)
    fn run_engine<R>(
        &self,
        actions: &mut Vec<Action>,
        comps: &mut Vec<Completion>,
        f: impl FnOnce(&mut Endpoint) -> R,
    ) -> R {
        telemetry::clock::hold();
        let result = {
            let mut engine = self.engine.lock();
            // Ticket taken under the lock, so it never contends.
            let sampled = self.calls.tick().is_multiple_of(LOCK_SAMPLE);
            let t0 = if sampled {
                telemetry::clock::mono_ns()
            } else {
                0
            };
            let result = f(&mut engine);
            engine.drain_actions_into(actions);
            engine.drain_completions_into(comps);
            self.apply_actions(actions);
            if sampled {
                let held = telemetry::clock::mono_ns().saturating_sub(t0);
                telemetry::event(EventKind::EngineLock, lock_ctx::UDP, 0, held);
            }
            result
        };
        self.publish(comps);
        result
    }

    /// Fires any timers whose deadline has passed, reusing the caller's
    /// buffers.
    fn fire_due_timers(&self, actions: &mut Vec<Action>, comps: &mut Vec<Completion>) {
        let now = Instant::now();
        let due: Vec<TimerId> = {
            let mut timers = self.timers.lock();
            let (fire, keep): (Vec<_>, Vec<_>) = timers.drain(..).partition(|(d, _)| *d <= now);
            *timers = keep;
            fire.into_iter().map(|(_, t)| t).collect()
        };
        for timer in due {
            self.run_engine(actions, comps, |engine| engine.handle_timer(timer));
        }
    }
}

/// A Push-Pull Messaging endpoint bound to a UDP socket.
pub struct UdpEndpoint {
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
}

impl UdpEndpoint {
    /// Binds an endpoint for process `id` to `bind_addr` (use port 0 for an
    /// ephemeral port) and starts its reception thread.
    pub fn bind(
        id: ProcessId,
        protocol: ProtocolConfig,
        bind_addr: &str,
    ) -> std::io::Result<UdpEndpoint> {
        UdpEndpoint::bind_with(id, protocol, bind_addr, &EndpointConfig::new())
    }

    /// [`UdpEndpoint::bind`] with per-endpoint configuration overrides: the
    /// completion-retention cap, go-back-N window, and BTP eager threshold
    /// from `config` replace the protocol-wide defaults for this endpoint.
    ///
    /// Only the protocol-and-queue overrides (retention cap, window, eager
    /// threshold) apply here; the config's default *truncation policy* is a
    /// front-end concern — wrap the returned endpoint in the facade's
    /// `Endpoint::with_config(raw, config)` to honor it.
    pub fn bind_with(
        id: ProcessId,
        protocol: ProtocolConfig,
        bind_addr: &str,
        config: &EndpointConfig,
    ) -> std::io::Result<UdpEndpoint> {
        let protocol = config.apply_protocol(protocol);
        let mut done = CompletionQueue::new();
        config.apply_retention(&mut done);
        let socket = UdpSocket::bind(bind_addr)?;
        socket.set_read_timeout(Some(Duration::from_millis(2)))?;
        let shared = Arc::new(Shared {
            id,
            engine: Mutex::new(Endpoint::new(id, protocol)),
            socket,
            peers: Mutex::new(HashMap::new()),
            done: Mutex::new(done),
            timers: Mutex::new(Vec::new()),
            codec: Mutex::new(PacketBufPool::new()),
            shutdown: AtomicBool::new(false),
            calls: Counter::new(),
        });
        let worker = shared.clone();
        let thread = std::thread::Builder::new()
            .name(format!("ppmsg-udp-{id}"))
            .spawn(move || {
                let mut buf = vec![0u8; 65_536];
                // Reused across packets: the reception path allocates only a
                // copy of each datagram's bytes.
                let mut actions: Vec<Action> = Vec::new();
                let mut comps: Vec<Completion> = Vec::new();
                while !worker.shutdown.load(Ordering::Relaxed) {
                    match worker.socket.recv_from(&mut buf) {
                        Ok((n, from)) => {
                            if let Ok(frame) = Frame::decode(Bytes::copy_from_slice(&buf[..n])) {
                                // Identify the peer by source address.
                                let peer = {
                                    let peers = worker.peers.lock();
                                    peers.iter().find(|(_, a)| **a == from).map(|(k, _)| {
                                        ppmsg_core::ProcessId {
                                            node: ppmsg_core::NodeId((*k >> 32) as u32),
                                            local_rank: (*k & 0xFFFF_FFFF) as u32,
                                        }
                                    })
                                };
                                if let Some(peer) = peer {
                                    worker.run_engine(&mut actions, &mut comps, |engine| {
                                        engine.handle_frame(peer, frame)
                                    });
                                }
                            }
                        }
                        Err(ref e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut => {}
                        Err(_) => {}
                    }
                    worker.fire_due_timers(&mut actions, &mut comps);
                }
            })
            .expect("failed to spawn UDP reception thread");
        Ok(UdpEndpoint {
            shared,
            thread: Some(thread),
        })
    }

    /// This endpoint's process id.
    pub fn id(&self) -> ProcessId {
        self.shared.id
    }

    /// The socket address this endpoint is bound to.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.shared.socket.local_addr()
    }

    /// Registers the address of a peer process.
    pub fn add_peer(&self, peer: ProcessId, addr: SocketAddr) {
        self.shared.peers.lock().insert(peer.as_u64(), addr);
    }

    /// Posts a send of `data` to `peer`, returning its operation handle.
    pub fn post_send(&self, peer: ProcessId, tag: Tag, data: impl Into<Bytes>) -> Result<SendOp> {
        let data = data.into();
        let mut actions = Vec::new();
        let mut comps = Vec::new();
        self.shared.run_engine(&mut actions, &mut comps, |engine| {
            engine.post_send(peer, tag, data)
        })
    }

    /// Posts a vectored send: `segments` arrive as one concatenated message
    /// but are never coalesced on the wire; see
    /// [`Endpoint::post_send_vectored`](ppmsg_core::Endpoint::post_send_vectored).
    pub fn post_send_vectored(
        &self,
        peer: ProcessId,
        tag: Tag,
        segments: &[Bytes],
    ) -> Result<SendOp> {
        let mut actions = Vec::new();
        let mut comps = Vec::new();
        self.shared.run_engine(&mut actions, &mut comps, |engine| {
            engine.post_send_vectored(peer, tag, segments)
        })
    }

    /// Posts an engine-buffered receive.  `src` / `tag` may be the
    /// [`ANY_SOURCE`](ppmsg_core::ANY_SOURCE) /
    /// [`ANY_TAG`](ppmsg_core::ANY_TAG) wildcards.
    pub fn post_recv(
        &self,
        src: ProcessId,
        tag: Tag,
        capacity: usize,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        let mut actions = Vec::new();
        let mut comps = Vec::new();
        self.shared.run_engine(&mut actions, &mut comps, |engine| {
            engine.post_recv_with(src, tag, capacity, policy)
        })
    }

    /// Posts a receive that reassembles directly into the caller-owned
    /// `buf`, handed back in the completion.
    pub fn post_recv_into(
        &self,
        src: ProcessId,
        tag: Tag,
        buf: RecvBuf,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        let mut actions = Vec::new();
        let mut comps = Vec::new();
        self.shared.run_engine(&mut actions, &mut comps, |engine| {
            engine.post_recv_into(src, tag, buf, policy)
        })
    }

    /// Cancels a still-unmatched receive; see
    /// [`Endpoint::cancel`](ppmsg_core::Endpoint::cancel).
    pub fn cancel(&self, op: RecvOp) -> bool {
        let mut actions = Vec::new();
        let mut comps = Vec::new();
        self.shared
            .run_engine(&mut actions, &mut comps, |engine| engine.cancel(op))
    }

    /// Cancels a posted send whose remainder has not been pulled yet; see
    /// [`Endpoint::cancel_send`](ppmsg_core::Endpoint::cancel_send).
    pub fn cancel_send(&self, op: SendOp) -> bool {
        let mut actions = Vec::new();
        let mut comps = Vec::new();
        self.shared
            .run_engine(&mut actions, &mut comps, |engine| engine.cancel_send(op))
    }

    /// Protocol statistics of this endpoint, including the completion
    /// queue's eviction counter
    /// ([`EndpointStats::completions_evicted`]).
    pub fn stats(&self) -> EndpointStats {
        let mut stats = self.shared.engine.lock().stats();
        stats.completions_evicted = self.shared.done.lock().evicted();
        stats
    }

    /// Go-back-N statistics for the channel to `peer`, if one exists; see
    /// [`Endpoint::channel_stats`](ppmsg_core::Endpoint::channel_stats).
    pub fn channel_stats(&self, peer: ProcessId) -> Option<ppmsg_core::reliability::GbnStats> {
        self.shared.engine.lock().channel_stats(peer)
    }
}

/// The UDP backend's contract: posting runs the engine on the calling
/// thread (the reception thread publishes concurrent completions), and
/// completion access goes through the `done` queue under its lock —
/// check-and-register through [`RawTransport::with_completions`] can never
/// miss a completion the reception thread publishes concurrently.
impl RawTransport for UdpEndpoint {
    fn local_id(&self) -> ProcessId {
        self.id()
    }

    fn post_send(&self, peer: ProcessId, tag: Tag, data: Bytes) -> Result<SendOp> {
        UdpEndpoint::post_send(self, peer, tag, data)
    }

    fn post_send_vectored(&self, peer: ProcessId, tag: Tag, segments: &[Bytes]) -> Result<SendOp> {
        UdpEndpoint::post_send_vectored(self, peer, tag, segments)
    }

    fn post_recv(
        &self,
        src: ProcessId,
        tag: Tag,
        capacity: usize,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        UdpEndpoint::post_recv(self, src, tag, capacity, policy)
    }

    fn post_recv_into(
        &self,
        src: ProcessId,
        tag: Tag,
        buf: RecvBuf,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        UdpEndpoint::post_recv_into(self, src, tag, buf, policy)
    }

    fn cancel_recv(&self, op: RecvOp) -> bool {
        UdpEndpoint::cancel(self, op)
    }

    fn cancel_send(&self, op: SendOp) -> bool {
        UdpEndpoint::cancel_send(self, op)
    }

    fn with_completions(&self, f: &mut dyn FnMut(&mut CompletionQueue)) {
        f(&mut self.shared.done.lock());
    }

    fn stats(&self) -> EndpointStats {
        UdpEndpoint::stats(self)
    }
}

impl Drop for UdpEndpoint {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppmsg_core::{OpId, ProtocolMode, Status, ANY_SOURCE};

    const T: Duration = Duration::from_secs(10);

    fn payload(len: usize) -> Bytes {
        Bytes::from((0..len).map(|i| (i % 251) as u8).collect::<Vec<u8>>())
    }

    /// Test-local blocking wait over the `RawTransport` core (the real
    /// blocking front-end lives in the facade crate, which this crate
    /// cannot depend on): claim-poll with a short sleep while the reception
    /// thread makes progress.
    fn wait(ep: &UdpEndpoint, op: OpId, timeout: Duration) -> Option<Completion> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(completion) = ep.take_completion(op) {
                return Some(completion);
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    fn send(ep: &UdpEndpoint, peer: ProcessId, tag: Tag, data: Bytes) -> SendOp {
        ep.post_send(peer, tag, data).expect("post_send failed")
    }

    fn recv(
        ep: &UdpEndpoint,
        peer: ProcessId,
        tag: Tag,
        max_len: usize,
        timeout: Duration,
    ) -> Option<Bytes> {
        let op = ep
            .post_recv(peer, tag, max_len, TruncationPolicy::Error)
            .ok()?;
        let completion = wait(ep, OpId::Recv(op), timeout)?;
        match completion.status {
            Status::Ok | Status::Truncated { .. } => completion.data,
            Status::Cancelled | Status::Error(_) => None,
        }
    }

    fn pair(protocol: ProtocolConfig) -> (UdpEndpoint, UdpEndpoint) {
        let a = UdpEndpoint::bind(ProcessId::new(0, 0), protocol.clone(), "127.0.0.1:0").unwrap();
        let b = UdpEndpoint::bind(ProcessId::new(1, 0), protocol, "127.0.0.1:0").unwrap();
        a.add_peer(b.id(), b.local_addr().unwrap());
        b.add_peer(a.id(), a.local_addr().unwrap());
        (a, b)
    }

    #[test]
    fn loopback_transfer_all_modes() {
        for mode in [
            ProtocolMode::PushZero,
            ProtocolMode::PushPull,
            ProtocolMode::PushAll,
        ] {
            let protocol = ProtocolConfig::paper_internode()
                .with_mode(mode)
                .with_pushed_buffer(64 * 1024);
            let (a, b) = pair(protocol);
            let data = payload(8192);
            let h = send(&a, b.id(), Tag(3), data.clone());
            let got = recv(&b, a.id(), Tag(3), 8192, T).expect("recv timed out");
            assert_eq!(got, data, "mode {mode:?}");
            assert!(wait(&a, OpId::Send(h), T).is_some(), "mode {mode:?}");
        }
    }

    #[test]
    fn bidirectional_pingpong() {
        let (a, b) = pair(ProtocolConfig::paper_internode());
        for i in 1..=10usize {
            let data = payload(i * 333);
            send(&a, b.id(), Tag(1), data.clone());
            let got = recv(&b, a.id(), Tag(1), 8192, T).unwrap();
            assert_eq!(got, data);
            send(&b, a.id(), Tag(2), got);
            let back = recv(&a, b.id(), Tag(2), 8192, T).unwrap();
            assert_eq!(back, data);
        }
        assert_eq!(a.stats().sends_completed, 10);
        assert_eq!(a.stats().recvs_completed, 10);
    }

    #[test]
    fn late_receiver_recovers_via_retransmission() {
        // Push-All with a tiny pushed buffer: the eager frames overflow and
        // are dropped; go-back-N retransmissions complete the transfer once
        // the receive is posted.
        let protocol = ProtocolConfig::paper_internode()
            .with_mode(ProtocolMode::PushAll)
            .with_pushed_buffer(4 * 1024);
        let (a, b) = pair(protocol);
        let data = payload(16 * 1024);
        send(&a, b.id(), Tag(7), data.clone());
        std::thread::sleep(Duration::from_millis(120));
        let got = recv(&b, a.id(), Tag(7), 16 * 1024, T).expect("recv timed out");
        assert_eq!(got, data);
        assert!(b.stats().frames_dropped > 0, "expected pushed-buffer drops");
    }

    #[test]
    fn recv_timeout_returns_none() {
        let (a, b) = pair(ProtocolConfig::paper_internode());
        assert!(recv(&a, b.id(), Tag(9), 64, Duration::from_millis(100)).is_none());
    }

    #[test]
    fn wildcard_recv_into_over_udp() {
        let (a, b) = pair(ProtocolConfig::paper_internode().with_pushed_buffer(64 * 1024));
        let data = payload(8192);
        let op = b
            .post_recv_into(
                ANY_SOURCE,
                Tag(4),
                RecvBuf::with_capacity(8192),
                TruncationPolicy::Error,
            )
            .unwrap();
        send(&a, b.id(), Tag(4), data.clone());
        let done = wait(&b, OpId::Recv(op), T).expect("recv timed out");
        assert_eq!(done.status, Status::Ok);
        assert_eq!(done.peer, a.id());
        assert_eq!(done.buf.unwrap().as_slice(), &data[..]);
    }
}
