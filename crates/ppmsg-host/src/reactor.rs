//! Many-peer reactor backend: one event-loop thread drives every endpoint
//! registered with a [`Reactor`], so a process serving thousands of peers
//! spends one thread (and one `epoll`-style wait) instead of one thread per
//! endpoint the way [`UdpEndpoint`](crate::UdpEndpoint) does.
//!
//! Three mechanisms distinguish the reactor from the thread-per-endpoint
//! UDP backend:
//!
//! * **Batched syscalls.** On Linux the reception path drains up to
//!   [`RECV_BATCH`] datagrams per `recvmmsg(2)` call and the transmission
//!   path coalesces the frames an engine interaction produces into
//!   `sendmmsg(2)` batches, amortising the per-syscall cost across the
//!   batch.  The workspace vendors no `libc`, so the module carries its own
//!   `extern "C"` declarations; platforms without the `mmsg` calls fall
//!   back to a portable nonblocking `recv_from` / `send_to` sweep with
//!   identical semantics.
//! * **One engine lock per batch.** Every datagram of a `recvmmsg` batch is
//!   fed to the protocol engine under a single lock acquisition, and the
//!   actions the batch produced are applied — and the send batch flushed —
//!   **before that lock is released**.  This preserves the ordering
//!   invariant documented on [`udp`](crate::UdpEndpoint)'s `run_engine`:
//!   applying actions after unlock can interleave two interactions'
//!   `SetTimer` actions and wedge a transfer.
//! * **A hashed timer wheel.** Retransmission timers from every hosted
//!   endpoint land in one wheel with [`TICK_US`]-microsecond resolution.
//!   The wheel is *insert-only*: `CancelTimer` is ignored and superseded
//!   timers are left to fire, because every [`TimerId`] carries a
//!   generation and the ARQ channels treat a stale generation's timeout as
//!   a no-op (the chaos harness proves that property under a seeded fault
//!   plane).  Lazy cancellation keeps insertion O(1) with no per-peer scan
//!   — the scan in the UDP backend's flat timer list is exactly what stops
//!   scaling past a few hundred peers.
//!
//! Endpoints are added with [`Reactor::add_endpoint`]; the returned
//! [`ReactorEndpoint`] implements [`RawTransport`], so the facade's
//! blocking/async front-ends, the collectives layer, and the conformance
//! suite all run unchanged over it.

use bytes::{Bytes, BytesMut};
use ppmsg_check::sync::Mutex;
use ppmsg_core::reliability::Frame;
use ppmsg_core::telemetry::{self, lock_ctx, Counter, EventKind, LogHistogram};
use ppmsg_core::wire::PacketBufPool;
use ppmsg_core::{
    Action, Completion, CompletionMailbox, CompletionQueue, Endpoint, EndpointConfig,
    EndpointStats, ProcessId, ProtocolConfig, RawTransport, RecvBuf, RecvOp, Result, SendOp, Tag,
    TimerId, TruncationPolicy,
};
use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Datagrams drained per `recvmmsg` call (and per fallback sweep round).
const RECV_BATCH: usize = 16;
/// Frames coalesced per `sendmmsg` flush.
const SEND_BATCH: usize = 32;
/// Upper bound on a UDP datagram; each receive buffer is this large.
const DATAGRAM_MAX: usize = 65_536;
/// `recvmmsg` rounds per endpoint per loop pass, so one firehosing socket
/// cannot starve its neighbours or the timer wheel.
const MAX_BATCH_ROUNDS: usize = 4;
/// Timer wheel resolution.  Retransmission timeouts are milliseconds, so
/// half-millisecond ticks never meaningfully delay a deadline.
const TICK_US: u64 = 500;
/// Timer wheel slot count; deadlines further out than `WHEEL_SLOTS` ticks
/// simply survive extra cursor revolutions in their slot.
const WHEEL_SLOTS: usize = 256;
/// How long the event loop blocks waiting for readable sockets.
const POLL_TIMEOUT_MS: i32 = 2;
/// One user-thread engine interaction in this many is timed for the
/// lock-hold histogram / flight recorder (same cadence as the sharded
/// engine's sampling).
const LOCK_SAMPLE: u64 = 64;

// ---------------------------------------------------------------------------
// Batched-syscall bindings (Linux) — the workspace vendors no `libc`.
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod sys {
    //! Minimal hand-rolled bindings for `recvmmsg(2)`, `sendmmsg(2)` and
    //! `poll(2)`.  Struct layouts follow the 64-bit Linux ABI (glibc and
    //! musl agree on all fields these calls read on little-endian
    //! targets); only `AF_INET` peers are batched — other address families
    //! take the scalar `send_to` path.

    use super::{RECV_BATCH, SEND_BATCH};
    use bytes::BytesMut;
    use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};
    use std::os::unix::io::AsRawFd;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct IoVec {
        base: *mut u8,
        len: usize,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct MsgHdr {
        name: *mut u8,
        namelen: u32,
        iov: *mut IoVec,
        iovlen: usize,
        control: *mut u8,
        controllen: usize,
        flags: i32,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct MMsgHdr {
        hdr: MsgHdr,
        len: u32,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct SockAddrIn {
        family: u16,
        /// Big-endian port.
        port: u16,
        /// Big-endian IPv4 address.
        addr: u32,
        zero: [u8; 8],
    }

    #[repr(C)]
    struct Timespec {
        sec: i64,
        nsec: i64,
    }

    /// One entry of the event loop's `poll(2)` set.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub(super) struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const AF_INET: u16 = 2;

    extern "C" {
        fn recvmmsg(
            fd: i32,
            vec: *mut MMsgHdr,
            vlen: u32,
            flags: i32,
            timeout: *mut Timespec,
        ) -> i32;
        fn sendmmsg(fd: i32, vec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
        fn poll(fds: *mut PollFd, nfds: u64, timeout_ms: i32) -> i32;
    }

    impl SockAddrIn {
        fn from_v4(addr: &SocketAddrV4) -> SockAddrIn {
            SockAddrIn {
                family: AF_INET,
                port: addr.port().to_be(),
                addr: u32::from(*addr.ip()).to_be(),
                zero: [0; 8],
            }
        }

        fn to_addr(self) -> Option<SocketAddr> {
            if self.family != AF_INET {
                return None;
            }
            Some(SocketAddr::V4(SocketAddrV4::new(
                Ipv4Addr::from(u32::from_be(self.addr)),
                u16::from_be(self.port),
            )))
        }
    }

    /// A `poll` set entry watching `socket` for readability.
    pub(super) fn pollfd_for(socket: &UdpSocket) -> PollFd {
        PollFd {
            fd: socket.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        }
    }

    impl PollFd {
        /// Whether the last [`poll_readable`] marked this socket readable.
        pub(super) fn readable(&self) -> bool {
            self.revents & POLLIN != 0
        }
    }

    /// Blocks up to `timeout_ms` for any watched socket to become
    /// readable; returns the number of ready sockets (0 on timeout).
    pub(super) fn poll_readable(fds: &mut [PollFd], timeout_ms: i32) -> i32 {
        if fds.is_empty() {
            return 0;
        }
        // SAFETY: `fds` is a live, exclusively borrowed slice of PollFd,
        // which is repr(C) and layout-compatible with the kernel's
        // `struct pollfd`; the pointer/length pair describes exactly that
        // allocation and `poll` writes only to the `revents` fields.
        unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) }
    }

    /// Drains up to [`RECV_BATCH`] datagrams from a nonblocking socket in
    /// one `recvmmsg` call.  Fills `metas` with `(len, source)` per
    /// datagram (index-aligned with `bufs`; a non-IPv4 source decodes to
    /// `None` and is skipped by the caller).  Returns whether the batch
    /// came back full, i.e. more datagrams may be pending.
    pub(super) fn recv_batch(
        socket: &UdpSocket,
        bufs: &mut [Vec<u8>],
        metas: &mut Vec<(usize, Option<SocketAddr>)>,
    ) -> bool {
        metas.clear();
        // SAFETY: SockAddrIn, IoVec, and MMsgHdr are repr(C) structs of
        // integers and raw pointers; the all-zeroes bit pattern is a valid
        // (if null) value for every field, and each entry is fully
        // initialized below before the kernel reads it.
        let mut names: [SockAddrIn; RECV_BATCH] = unsafe { std::mem::zeroed() };
        // SAFETY: as above — plain-old-data arrays, zero is a valid value.
        let mut iovs: [IoVec; RECV_BATCH] = unsafe { std::mem::zeroed() };
        // SAFETY: as above — plain-old-data arrays, zero is a valid value.
        let mut hdrs: [MMsgHdr; RECV_BATCH] = unsafe { std::mem::zeroed() };
        for (((hdr, iov), name), buf) in hdrs
            .iter_mut()
            .zip(iovs.iter_mut())
            .zip(names.iter_mut())
            .zip(bufs.iter_mut())
        {
            *iov = IoVec {
                base: buf.as_mut_ptr(),
                len: buf.len(),
            };
            hdr.hdr = MsgHdr {
                name: name as *mut SockAddrIn as *mut u8,
                namelen: std::mem::size_of::<SockAddrIn>() as u32,
                iov,
                iovlen: 1,
                control: std::ptr::null_mut(),
                controllen: 0,
                flags: 0,
            };
        }
        // The socket is nonblocking, so a `-1` here is almost always
        // EAGAIN ("nothing to read") and is treated as an empty batch
        // either way — the loop re-polls and retransmission covers loss.
        //
        // SAFETY: `hdrs` holds RECV_BATCH fully initialized MMsgHdr
        // entries whose iov/name pointers reference `bufs`/`names`, both
        // alive and unaliased for the duration of the call; the fd is a
        // valid open socket borrowed from `socket`.
        let n = unsafe {
            recvmmsg(
                socket.as_raw_fd(),
                hdrs.as_mut_ptr(),
                RECV_BATCH as u32,
                0,
                std::ptr::null_mut(),
            )
        };
        if n <= 0 {
            return false;
        }
        for (hdr, name) in hdrs.iter().zip(names.iter()).take(n as usize) {
            metas.push((hdr.len as usize, name.to_addr()));
        }
        n as usize == RECV_BATCH
    }

    /// Transmits every `(frame, destination)` pair, coalescing runs of
    /// IPv4 destinations into `sendmmsg` batches.  Errors are ignored,
    /// matching the UDP backend: a lost datagram is recovered by the ARQ
    /// layer.
    pub(super) fn send_batch(socket: &UdpSocket, frames: &[(BytesMut, SocketAddr)]) {
        let mut i = 0;
        while i < frames.len() {
            if !matches!(frames[i].1, SocketAddr::V4(_)) {
                let _ = socket.send_to(&frames[i].0, frames[i].1);
                i += 1;
                continue;
            }
            let mut end = i + 1;
            while end < frames.len()
                && end - i < SEND_BATCH
                && matches!(frames[end].1, SocketAddr::V4(_))
            {
                end += 1;
            }
            let run = &frames[i..end];
            // SAFETY: plain-old-data repr(C) arrays (integers and raw
            // pointers); all-zeroes is a valid value for every field, and
            // the first `run.len()` entries are initialized below.
            let mut names: [SockAddrIn; SEND_BATCH] = unsafe { std::mem::zeroed() };
            // SAFETY: as above — plain-old-data arrays, zero is valid.
            let mut iovs: [IoVec; SEND_BATCH] = unsafe { std::mem::zeroed() };
            // SAFETY: as above — plain-old-data arrays, zero is valid.
            let mut hdrs: [MMsgHdr; SEND_BATCH] = unsafe { std::mem::zeroed() };
            for (k, (buf, addr)) in run.iter().enumerate() {
                let SocketAddr::V4(v4) = addr else {
                    unreachable!("run contains only V4 destinations")
                };
                names[k] = SockAddrIn::from_v4(v4);
                iovs[k] = IoVec {
                    base: buf.as_ptr() as *mut u8,
                    len: buf.len(),
                };
                hdrs[k].hdr = MsgHdr {
                    name: &mut names[k] as *mut SockAddrIn as *mut u8,
                    namelen: std::mem::size_of::<SockAddrIn>() as u32,
                    iov: &mut iovs[k],
                    iovlen: 1,
                    control: std::ptr::null_mut(),
                    controllen: 0,
                    flags: 0,
                };
            }
            // SAFETY: the first `run.len()` hdrs entries are fully
            // initialized and their name/iov pointers reference `names`,
            // `iovs`, and the frame buffers in `run`, all alive across the
            // call; the fd is a valid open socket and the kernel only
            // reads the payloads.
            let sent =
                unsafe { sendmmsg(socket.as_raw_fd(), hdrs.as_mut_ptr(), run.len() as u32, 0) };
            if sent <= 0 {
                // The kernel refused the whole batch (e.g. transient
                // ENOBUFS); fall back to best-effort scalar sends.
                for (buf, addr) in run {
                    let _ = socket.send_to(buf, *addr);
                }
                i = end;
            } else {
                i += sent as usize;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Timer wheel
// ---------------------------------------------------------------------------

struct WheelEntry {
    tick: u64,
    ep: Weak<EpShared>,
    timer: TimerId,
}

/// Hashed timer wheel shared by every endpoint a reactor hosts.
///
/// Insert-only: entries are never removed by cancellation, only when their
/// slot's cursor pass collects them.  A fired entry whose generation the
/// owning channel has since superseded is ignored by the engine, so lazy
/// cancellation costs one spurious `handle_timer` call instead of a scan.
struct TimerWheel {
    start: Instant,
    /// The next tick the cursor will collect (ticks are `TICK_US` long).
    next_tick: u64,
    slots: Vec<Vec<WheelEntry>>,
}

impl TimerWheel {
    fn new(start: Instant) -> TimerWheel {
        TimerWheel {
            start,
            next_tick: 0,
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.start).as_micros() as u64 / TICK_US
    }

    fn insert(&mut self, deadline: Instant, ep: Weak<EpShared>, timer: TimerId) {
        // Round the deadline *up* one tick so timers never fire early, and
        // clamp behind-the-cursor deadlines to the next collection pass.
        let tick = (self.tick_of(deadline) + 1).max(self.next_tick);
        self.slots[(tick % WHEEL_SLOTS as u64) as usize].push(WheelEntry { tick, ep, timer });
    }

    /// Collects every entry whose deadline has passed into `fired`,
    /// advancing the cursor to `now`.  Entries parked for a later
    /// revolution of the wheel stay in their slot.
    fn advance(&mut self, now: Instant, fired: &mut Vec<(Weak<EpShared>, TimerId)>) {
        let now_tick = self.tick_of(now);
        while self.next_tick <= now_tick {
            let cur = self.next_tick;
            let slot = &mut self.slots[(cur % WHEEL_SLOTS as u64) as usize];
            let mut i = 0;
            while i < slot.len() {
                if slot[i].tick <= cur {
                    let entry = slot.swap_remove(i);
                    fired.push((entry.ep, entry.timer));
                } else {
                    i += 1;
                }
            }
            self.next_tick += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Shared state
// ---------------------------------------------------------------------------

/// Peer addressing in both directions: `by_addr` gives the reception path
/// O(1) source identification (the UDP backend's linear reverse scan is
/// another thing that stops scaling past a few hundred peers).
#[derive(Default)]
struct PeerTable {
    by_id: HashMap<u64, SocketAddr>,
    by_addr: HashMap<SocketAddr, ProcessId>,
}

/// Per-endpoint state shared between the reactor thread and user threads.
struct EpShared {
    id: ProcessId,
    engine: Mutex<Endpoint>,
    socket: UdpSocket,
    peers: Mutex<PeerTable>,
    /// Completions drained from the engine, op-indexed so claims are O(1),
    /// with the wakers of tasks awaiting them.  Publishing goes through the
    /// mailbox's MPSC inbox, so the reactor thread and user-thread postings
    /// never block behind a consumer holding the queue open.
    done: CompletionMailbox,
    /// Reusable frame-encode buffers.
    codec: Mutex<PacketBufPool>,
    /// The hosting reactor, for timer-wheel inserts from user threads.
    reactor: Weak<ReactorShared>,
    /// Self-reference handed to wheel entries.
    this: Weak<EpShared>,
    /// User-thread engine interactions; the count doubles as the sampling
    /// ticket for [`LOCK_SAMPLE`]d lock-hold measurements.
    user_calls: Counter,
}

/// The reactor's metrics plane: batch-size and lock-hold distributions plus
/// event-loop counters, recordable lock-free from the loop thread and
/// snapshot-able from any thread via [`Reactor::metrics`].  All fields are
/// zero-cost no-ops when the `telemetry` feature is off.
#[derive(Debug, Default)]
pub struct ReactorMetrics {
    /// Datagrams delivered to an engine per `recvmmsg` batch.
    pub recv_batch: LogHistogram,
    /// Frames flushed per batch (the `sendmmsg` coalescing payoff).
    pub send_batch: LogHistogram,
    /// Nanoseconds the engine lock was held per reception batch.
    pub batch_lock_ns: LogHistogram,
    /// Reception batches processed.
    pub batches: Counter,
    /// Timer-wheel entries fired (including stale generations the channels
    /// discard — compare with `EndpointStats` retransmit counts).
    pub timers_fired: Counter,
    /// Sampled user-thread engine lock holds, in nanoseconds
    /// (one interaction in `LOCK_SAMPLE` = 64 is measured).
    pub user_lock_ns: LogHistogram,
}

struct ReactorShared {
    endpoints: Mutex<Vec<Arc<EpShared>>>,
    /// Bumped on every add/remove; the event loop reloads its endpoint
    /// cache (and poll set) when it observes a change.
    epoch: AtomicU64,
    wheel: Mutex<TimerWheel>,
    shutdown: AtomicBool,
    metrics: ReactorMetrics,
}

/// Outgoing frames coalesced during one engine interaction, flushed in
/// production order before the engine lock is released.
struct SendBatch {
    frames: Vec<(BytesMut, SocketAddr)>,
    /// Frames flushed since the last [`SendBatch::take_sent`], for the
    /// per-batch telemetry record.
    sent: usize,
}

impl SendBatch {
    fn new() -> SendBatch {
        SendBatch {
            frames: Vec::with_capacity(SEND_BATCH),
            sent: 0,
        }
    }

    fn push(&mut self, ep: &EpShared, buf: BytesMut, addr: SocketAddr) {
        if self.frames.len() == SEND_BATCH {
            self.flush(ep);
        }
        self.frames.push((buf, addr));
    }

    /// Frames flushed since the last call, resetting the tally.
    fn take_sent(&mut self) -> usize {
        std::mem::take(&mut self.sent)
    }

    fn flush(&mut self, ep: &EpShared) {
        if self.frames.is_empty() {
            return;
        }
        self.sent += self.frames.len();
        #[cfg(target_os = "linux")]
        sys::send_batch(&ep.socket, &self.frames);
        #[cfg(not(target_os = "linux"))]
        for (buf, addr) in &self.frames {
            let _ = ep.socket.send_to(buf, *addr);
        }
        let mut codec = ep.codec.lock();
        for (buf, _) in self.frames.drain(..) {
            codec.release(buf);
        }
    }
}

impl EpShared {
    /// Publishes a batch of completions, waking every waiter registered
    /// for one of them.  Wakers run after the mailbox's queue lock is
    /// released: a waker is arbitrary executor code and may re-enter this
    /// endpoint.
    fn publish(&self, comps: &mut Vec<Completion>) {
        if comps.is_empty() {
            return;
        }
        self.done.post(0, comps);
    }

    /// Executes a batch of engine actions in production order.  With
    /// `batch` present (the reactor thread), frames are coalesced for a
    /// `sendmmsg` flush; without it (user-thread postings, timer fires),
    /// each frame goes out with a direct `send_to`.
    ///
    /// Timers go into the hosting reactor's wheel; `CancelTimer` is
    /// deliberately ignored (see the module docs — the wheel cancels
    /// lazily, relying on the channels' generation checks).
    fn apply_actions(&self, actions: &mut Vec<Action>, mut batch: Option<&mut SendBatch>) {
        for action in actions.drain(..) {
            match action {
                Action::TransmitFrame { dst, frame, .. } => {
                    let addr = self.peers.lock().by_id.get(&dst.as_u64()).copied();
                    if let Some(addr) = addr {
                        let buf = {
                            let mut codec = self.codec.lock();
                            let mut buf = codec.acquire(frame.wire_size());
                            frame.encode_into(&mut buf);
                            buf
                        };
                        match batch.as_deref_mut() {
                            Some(batch) => batch.push(self, buf, addr),
                            None => {
                                // Send errors are ignored: a lost datagram
                                // is recovered by the ARQ layer.
                                let _ = self.socket.send_to(&buf, addr);
                                self.codec.lock().release(buf);
                            }
                        }
                    }
                }
                Action::Transmit { dst, .. } => {
                    panic!("reactor endpoint asked to deliver intranode packet to {dst}")
                }
                Action::SetTimer { timer, delay_us } => {
                    if let Some(reactor) = self.reactor.upgrade() {
                        let deadline = Instant::now() + Duration::from_micros(delay_us);
                        reactor
                            .wheel
                            .lock()
                            .insert(deadline, self.this.clone(), timer);
                    }
                }
                Action::CancelTimer { .. } => {}
                Action::Translate { .. } | Action::Copy { .. } | Action::PacketDropped { .. } => {}
                Action::ChannelFailed { peer } => {
                    eprintln!("ppmsg-host/reactor: channel to {peer} failed (peer unreachable)");
                }
            }
        }
    }

    /// Runs one engine interaction, applying its actions **before
    /// releasing the engine lock** (the ordering invariant documented on
    /// the UDP backend's `run_engine`), then publishes completions.
    fn run_engine<R>(
        &self,
        actions: &mut Vec<Action>,
        comps: &mut Vec<Completion>,
        f: impl FnOnce(&mut Endpoint) -> R,
    ) -> R {
        telemetry::clock::hold();
        let result = {
            let mut engine = self.engine.lock();
            // The ticket is taken under the lock, so it never contends;
            // one interaction in LOCK_SAMPLE pays for two clock reads.
            let sampled = self.user_calls.tick().is_multiple_of(LOCK_SAMPLE);
            let t0 = if sampled {
                telemetry::clock::mono_ns()
            } else {
                0
            };
            let result = f(&mut engine);
            engine.drain_actions_into(actions);
            engine.drain_completions_into(comps);
            self.apply_actions(actions, None);
            if sampled {
                let held = telemetry::clock::mono_ns().saturating_sub(t0);
                if let Some(reactor) = self.reactor.upgrade() {
                    reactor.metrics.user_lock_ns.record(held);
                }
                telemetry::event(EventKind::EngineLock, lock_ctx::REACTOR_USER, 0, held);
            }
            result
        };
        self.publish(comps);
        result
    }
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

/// Reception scratch reused across batches: `RECV_BATCH` datagram buffers
/// plus the `(len, source)` metadata of the current batch.
struct Scratch {
    bufs: Vec<Vec<u8>>,
    metas: Vec<(usize, Option<SocketAddr>)>,
}

impl Scratch {
    fn new() -> Scratch {
        Scratch {
            bufs: (0..RECV_BATCH).map(|_| vec![0u8; DATAGRAM_MAX]).collect(),
            metas: Vec::with_capacity(RECV_BATCH),
        }
    }
}

/// Reads one batch of datagrams into the scratch buffers, returning
/// whether the batch came back full (more may be pending).
#[cfg(target_os = "linux")]
fn fill_batch(socket: &UdpSocket, scratch: &mut Scratch) -> bool {
    sys::recv_batch(socket, &mut scratch.bufs, &mut scratch.metas)
}

/// Portable fallback: a nonblocking `recv_from` loop with the same batch
/// contract as the Linux `recvmmsg` path.
#[cfg(not(target_os = "linux"))]
fn fill_batch(socket: &UdpSocket, scratch: &mut Scratch) -> bool {
    scratch.metas.clear();
    for buf in scratch.bufs.iter_mut() {
        match socket.recv_from(buf) {
            Ok((n, from)) => scratch.metas.push((n, Some(from))),
            // WouldBlock ends the batch; other errors are treated the same
            // way (the ARQ layer recovers anything lost).
            Err(_) => break,
        }
    }
    scratch.metas.len() == RECV_BATCH
}

/// Feeds a full batch of datagrams to the endpoint's engine under **one**
/// lock acquisition, then applies the actions the batch produced — frames
/// coalesced into `sendmmsg` batches — before releasing the lock.
fn process_batch(
    ep: &EpShared,
    scratch: &mut Scratch,
    batch: &mut SendBatch,
    actions: &mut Vec<Action>,
    comps: &mut Vec<Completion>,
    metrics: &ReactorMetrics,
) {
    let received = scratch.metas.len();
    let t0 = telemetry::clock::mono_ns();
    {
        let mut engine = ep.engine.lock();
        {
            let peers = ep.peers.lock();
            for ((len, from), buf) in scratch.metas.iter().zip(scratch.bufs.iter()) {
                let Some(from) = from else { continue };
                let Some(peer) = peers.by_addr.get(from).copied() else {
                    continue;
                };
                if let Ok(frame) = Frame::decode(Bytes::copy_from_slice(&buf[..*len])) {
                    engine.handle_frame(peer, frame);
                }
            }
        }
        engine.drain_actions_into(actions);
        engine.drain_completions_into(comps);
        ep.apply_actions(actions, Some(batch));
        batch.flush(ep);
    }
    let held = telemetry::clock::mono_ns().saturating_sub(t0);
    let sent = batch.take_sent();
    metrics.batches.inc();
    metrics.recv_batch.record(received as u64);
    metrics.send_batch.record(sent as u64);
    metrics.batch_lock_ns.record(held);
    telemetry::event(EventKind::ReactorBatch, received as u32, sent as u32, held);
    ep.publish(comps);
}

/// Drains every pending datagram batch from one endpoint's socket (bounded
/// by [`MAX_BATCH_ROUNDS`]); returns whether anything was read.
fn drain_endpoint(
    ep: &EpShared,
    scratch: &mut Scratch,
    batch: &mut SendBatch,
    actions: &mut Vec<Action>,
    comps: &mut Vec<Completion>,
    metrics: &ReactorMetrics,
) -> bool {
    let mut any = false;
    for _ in 0..MAX_BATCH_ROUNDS {
        let full = fill_batch(&ep.socket, scratch);
        if scratch.metas.is_empty() {
            break;
        }
        any = true;
        process_batch(ep, scratch, batch, actions, comps, metrics);
        if !full {
            break;
        }
    }
    any
}

fn reactor_loop(shared: Arc<ReactorShared>) {
    let mut eps: Vec<Arc<EpShared>> = Vec::new();
    let mut seen_epoch = u64::MAX;
    let mut scratch = Scratch::new();
    let mut batch = SendBatch::new();
    let mut actions: Vec<Action> = Vec::new();
    let mut comps: Vec<Completion> = Vec::new();
    let mut fired: Vec<(Weak<EpShared>, TimerId)> = Vec::new();
    #[cfg(target_os = "linux")]
    let mut pollfds: Vec<sys::PollFd> = Vec::new();

    while !shared.shutdown.load(Ordering::Relaxed) {
        // One clock read stamps every trace event this loop pass emits.
        telemetry::clock::hold();
        let epoch = shared.epoch.load(Ordering::Acquire);
        if epoch != seen_epoch {
            seen_epoch = epoch;
            eps.clear();
            eps.extend(shared.endpoints.lock().iter().cloned());
            #[cfg(target_os = "linux")]
            {
                pollfds.clear();
                pollfds.extend(eps.iter().map(|ep| sys::pollfd_for(&ep.socket)));
            }
        }

        if eps.is_empty() {
            std::thread::sleep(Duration::from_millis(1));
        } else {
            #[cfg(target_os = "linux")]
            {
                if sys::poll_readable(&mut pollfds, POLL_TIMEOUT_MS) > 0 {
                    for (pfd, ep) in pollfds.iter().zip(eps.iter()) {
                        if pfd.readable() {
                            drain_endpoint(
                                ep,
                                &mut scratch,
                                &mut batch,
                                &mut actions,
                                &mut comps,
                                &shared.metrics,
                            );
                        }
                    }
                }
            }
            #[cfg(not(target_os = "linux"))]
            {
                let mut any = false;
                for ep in &eps {
                    any |= drain_endpoint(
                        ep,
                        &mut scratch,
                        &mut batch,
                        &mut actions,
                        &mut comps,
                        &shared.metrics,
                    );
                }
                if !any {
                    std::thread::sleep(Duration::from_micros(500));
                }
            }
        }

        fired.clear();
        shared.wheel.lock().advance(Instant::now(), &mut fired);
        shared.metrics.timers_fired.add(fired.len() as u64);
        for (ep, timer) in fired.drain(..) {
            if let Some(ep) = ep.upgrade() {
                ep.run_engine(&mut actions, &mut comps, |engine| {
                    engine.handle_timer(timer)
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// A single-threaded event loop hosting many [`ReactorEndpoint`]s.
///
/// Dropping the reactor stops the event loop; endpoints that outlive it
/// keep accepting postings (user-thread interactions still run the engine)
/// but no longer receive datagrams or fire timers, so keep the reactor
/// alive as long as its endpoints are in use.
pub struct Reactor {
    shared: Arc<ReactorShared>,
    thread: Option<JoinHandle<()>>,
}

impl Reactor {
    /// Starts a reactor with no endpoints; add them with
    /// [`Reactor::add_endpoint`].
    pub fn new() -> std::io::Result<Reactor> {
        let shared = Arc::new(ReactorShared {
            endpoints: Mutex::new("host.reactor.endpoints", Vec::new()),
            epoch: AtomicU64::new(0),
            wheel: Mutex::new("host.reactor.wheel", TimerWheel::new(Instant::now())),
            shutdown: AtomicBool::new(false),
            metrics: ReactorMetrics::default(),
        });
        let worker = shared.clone();
        let thread = std::thread::Builder::new()
            .name("ppmsg-reactor".into())
            .spawn(move || reactor_loop(worker))?;
        Ok(Reactor {
            shared,
            thread: Some(thread),
        })
    }

    /// Binds an endpoint for process `id` to `bind_addr` (use port 0 for
    /// an ephemeral port) and registers it with the event loop.
    pub fn add_endpoint(
        &self,
        id: ProcessId,
        protocol: ProtocolConfig,
        bind_addr: &str,
    ) -> std::io::Result<ReactorEndpoint> {
        self.add_endpoint_with(id, protocol, bind_addr, &EndpointConfig::new())
    }

    /// [`Reactor::add_endpoint`] with per-endpoint configuration
    /// overrides — completion retention, ARQ window, BTP eager threshold,
    /// and reliability mode ([`EndpointConfig::reliability`]) replace the
    /// protocol-wide defaults for this endpoint.
    pub fn add_endpoint_with(
        &self,
        id: ProcessId,
        protocol: ProtocolConfig,
        bind_addr: &str,
        config: &EndpointConfig,
    ) -> std::io::Result<ReactorEndpoint> {
        let protocol = config.apply_protocol(protocol);
        let mut done = CompletionQueue::new();
        config.apply_retention(&mut done);
        let socket = UdpSocket::bind(bind_addr)?;
        socket.set_nonblocking(true)?;
        let reactor = Arc::downgrade(&self.shared);
        let ep = Arc::new_cyclic(|this| EpShared {
            id,
            engine: Mutex::new("host.reactor.engine", Endpoint::new(id, protocol)),
            socket,
            peers: Mutex::new("host.reactor.peers", PeerTable::default()),
            done: CompletionMailbox::with_queue(1, done),
            codec: Mutex::new("host.reactor.codec", PacketBufPool::new()),
            reactor,
            this: this.clone(),
            user_calls: Counter::new(),
        });
        self.shared.endpoints.lock().push(ep.clone());
        self.shared.epoch.fetch_add(1, Ordering::Release);
        Ok(ReactorEndpoint { shared: ep })
    }

    /// The reactor's live metrics plane — batch-size / lock-hold histograms
    /// and event-loop counters, snapshot-able without stopping traffic.
    pub fn metrics(&self) -> &ReactorMetrics {
        &self.shared.metrics
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// A Push-Pull Messaging endpoint hosted by a [`Reactor`].
///
/// The posting API matches [`UdpEndpoint`](crate::UdpEndpoint); reception
/// and retransmission timers are driven by the reactor's event loop
/// instead of a dedicated thread.  Dropping the endpoint deregisters it
/// from the event loop.
pub struct ReactorEndpoint {
    shared: Arc<EpShared>,
}

impl ReactorEndpoint {
    /// This endpoint's process id.
    pub fn id(&self) -> ProcessId {
        self.shared.id
    }

    /// The socket address this endpoint is bound to.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.shared.socket.local_addr()
    }

    /// Registers the address of a peer process (both directions: id →
    /// address for transmission, address → id for reception).
    pub fn add_peer(&self, peer: ProcessId, addr: SocketAddr) {
        let mut peers = self.shared.peers.lock();
        peers.by_id.insert(peer.as_u64(), addr);
        peers.by_addr.insert(addr, peer);
    }

    /// Posts a send of `data` to `peer`, returning its operation handle.
    pub fn post_send(&self, peer: ProcessId, tag: Tag, data: impl Into<Bytes>) -> Result<SendOp> {
        let data = data.into();
        let mut actions = Vec::new();
        let mut comps = Vec::new();
        self.shared.run_engine(&mut actions, &mut comps, |engine| {
            engine.post_send(peer, tag, data)
        })
    }

    /// Posts a vectored send; see
    /// [`Endpoint::post_send_vectored`](ppmsg_core::Endpoint::post_send_vectored).
    pub fn post_send_vectored(
        &self,
        peer: ProcessId,
        tag: Tag,
        segments: &[Bytes],
    ) -> Result<SendOp> {
        let mut actions = Vec::new();
        let mut comps = Vec::new();
        self.shared.run_engine(&mut actions, &mut comps, |engine| {
            engine.post_send_vectored(peer, tag, segments)
        })
    }

    /// Posts an engine-buffered receive.  `src` / `tag` may be the
    /// [`ANY_SOURCE`](ppmsg_core::ANY_SOURCE) /
    /// [`ANY_TAG`](ppmsg_core::ANY_TAG) wildcards.
    pub fn post_recv(
        &self,
        src: ProcessId,
        tag: Tag,
        capacity: usize,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        let mut actions = Vec::new();
        let mut comps = Vec::new();
        self.shared.run_engine(&mut actions, &mut comps, |engine| {
            engine.post_recv_with(src, tag, capacity, policy)
        })
    }

    /// Posts a receive that reassembles directly into the caller-owned
    /// `buf`, handed back in the completion.
    pub fn post_recv_into(
        &self,
        src: ProcessId,
        tag: Tag,
        buf: RecvBuf,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        let mut actions = Vec::new();
        let mut comps = Vec::new();
        self.shared.run_engine(&mut actions, &mut comps, |engine| {
            engine.post_recv_into(src, tag, buf, policy)
        })
    }

    /// Cancels a still-unmatched receive; see
    /// [`Endpoint::cancel`](ppmsg_core::Endpoint::cancel).
    pub fn cancel(&self, op: RecvOp) -> bool {
        let mut actions = Vec::new();
        let mut comps = Vec::new();
        self.shared
            .run_engine(&mut actions, &mut comps, |engine| engine.cancel(op))
    }

    /// Cancels a posted send whose remainder has not been pulled yet; see
    /// [`Endpoint::cancel_send`](ppmsg_core::Endpoint::cancel_send).
    pub fn cancel_send(&self, op: SendOp) -> bool {
        let mut actions = Vec::new();
        let mut comps = Vec::new();
        self.shared
            .run_engine(&mut actions, &mut comps, |engine| engine.cancel_send(op))
    }

    /// Protocol statistics of this endpoint, including the completion
    /// queue's eviction counter
    /// ([`EndpointStats::completions_evicted`]).
    pub fn stats(&self) -> EndpointStats {
        let mut stats = self.shared.engine.lock().stats();
        stats.completions_evicted = self.shared.done.evicted();
        stats
    }

    /// ARQ statistics for the channel to `peer`, if one exists; see
    /// [`Endpoint::channel_stats`](ppmsg_core::Endpoint::channel_stats).
    pub fn channel_stats(&self, peer: ProcessId) -> Option<ppmsg_core::reliability::GbnStats> {
        self.shared.engine.lock().channel_stats(peer)
    }
}

/// Same contract as the UDP backend: posting runs the engine on the
/// calling thread (the reactor thread publishes concurrent completions),
/// and completion access goes through the mailbox's queue, which sweeps
/// pending inbox batches before running the caller's closure, so
/// check-and-register through [`RawTransport::with_completions`] can never
/// miss a concurrently published completion.
impl RawTransport for ReactorEndpoint {
    fn local_id(&self) -> ProcessId {
        self.id()
    }

    fn post_send(&self, peer: ProcessId, tag: Tag, data: Bytes) -> Result<SendOp> {
        ReactorEndpoint::post_send(self, peer, tag, data)
    }

    fn post_send_vectored(&self, peer: ProcessId, tag: Tag, segments: &[Bytes]) -> Result<SendOp> {
        ReactorEndpoint::post_send_vectored(self, peer, tag, segments)
    }

    fn post_recv(
        &self,
        src: ProcessId,
        tag: Tag,
        capacity: usize,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        ReactorEndpoint::post_recv(self, src, tag, capacity, policy)
    }

    fn post_recv_into(
        &self,
        src: ProcessId,
        tag: Tag,
        buf: RecvBuf,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        ReactorEndpoint::post_recv_into(self, src, tag, buf, policy)
    }

    fn cancel_recv(&self, op: RecvOp) -> bool {
        ReactorEndpoint::cancel(self, op)
    }

    fn cancel_send(&self, op: SendOp) -> bool {
        ReactorEndpoint::cancel_send(self, op)
    }

    fn with_completions(&self, f: &mut dyn FnMut(&mut CompletionQueue)) {
        self.shared.done.with(f);
    }

    fn stats(&self) -> EndpointStats {
        ReactorEndpoint::stats(self)
    }
}

impl Drop for ReactorEndpoint {
    fn drop(&mut self) {
        if let Some(reactor) = self.shared.reactor.upgrade() {
            reactor
                .endpoints
                .lock()
                .retain(|ep| !Arc::ptr_eq(ep, &self.shared));
            reactor.epoch.fetch_add(1, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppmsg_core::{OpId, ProtocolMode, ReliabilityMode, Status, ANY_SOURCE};

    const T: Duration = Duration::from_secs(10);

    fn payload(len: usize) -> Bytes {
        Bytes::from((0..len).map(|i| (i % 251) as u8).collect::<Vec<u8>>())
    }

    fn wait(ep: &ReactorEndpoint, op: OpId, timeout: Duration) -> Option<Completion> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(completion) = ep.take_completion(op) {
                return Some(completion);
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    fn send(ep: &ReactorEndpoint, peer: ProcessId, tag: Tag, data: Bytes) -> SendOp {
        ep.post_send(peer, tag, data).expect("post_send failed")
    }

    fn recv(
        ep: &ReactorEndpoint,
        peer: ProcessId,
        tag: Tag,
        max_len: usize,
        timeout: Duration,
    ) -> Option<Bytes> {
        let op = ep
            .post_recv(peer, tag, max_len, TruncationPolicy::Error)
            .ok()?;
        let completion = wait(ep, OpId::Recv(op), timeout)?;
        match completion.status {
            Status::Ok | Status::Truncated { .. } => completion.data,
            Status::Cancelled | Status::Error(_) => None,
        }
    }

    fn pair(
        reactor: &Reactor,
        protocol: ProtocolConfig,
        config: &EndpointConfig,
    ) -> (ReactorEndpoint, ReactorEndpoint) {
        let a = reactor
            .add_endpoint_with(
                ProcessId::new(0, 0),
                protocol.clone(),
                "127.0.0.1:0",
                config,
            )
            .unwrap();
        let b = reactor
            .add_endpoint_with(ProcessId::new(1, 0), protocol, "127.0.0.1:0", config)
            .unwrap();
        a.add_peer(b.id(), b.local_addr().unwrap());
        b.add_peer(a.id(), a.local_addr().unwrap());
        (a, b)
    }

    #[test]
    fn loopback_transfer_all_modes_and_reliabilities() {
        let reactor = Reactor::new().unwrap();
        for reliability in [ReliabilityMode::GoBackN, ReliabilityMode::SelectiveRepeat] {
            for mode in [
                ProtocolMode::PushZero,
                ProtocolMode::PushPull,
                ProtocolMode::PushAll,
            ] {
                let protocol = ProtocolConfig::paper_internode()
                    .with_mode(mode)
                    .with_pushed_buffer(64 * 1024);
                let config = EndpointConfig::new().reliability(reliability);
                let (a, b) = pair(&reactor, protocol, &config);
                let data = payload(8192);
                let h = send(&a, b.id(), Tag(3), data.clone());
                let got = recv(&b, a.id(), Tag(3), 8192, T).expect("recv timed out");
                assert_eq!(got, data, "mode {mode:?} reliability {reliability:?}");
                assert!(
                    wait(&a, OpId::Send(h), T).is_some(),
                    "mode {mode:?} reliability {reliability:?}"
                );
            }
        }
    }

    #[test]
    fn bidirectional_pingpong() {
        let reactor = Reactor::new().unwrap();
        let (a, b) = pair(
            &reactor,
            ProtocolConfig::paper_internode(),
            &EndpointConfig::new(),
        );
        for i in 1..=10usize {
            let data = payload(i * 333);
            send(&a, b.id(), Tag(1), data.clone());
            let got = recv(&b, a.id(), Tag(1), 8192, T).unwrap();
            assert_eq!(got, data);
            send(&b, a.id(), Tag(2), got);
            let back = recv(&a, b.id(), Tag(2), 8192, T).unwrap();
            assert_eq!(back, data);
        }
        assert_eq!(a.stats().sends_completed, 10);
        assert_eq!(a.stats().recvs_completed, 10);
    }

    #[test]
    fn late_receiver_recovers_via_selective_repeat() {
        // Push-All with a tiny pushed buffer: the eager frames overflow
        // and are dropped; selective-repeat retransmissions complete the
        // transfer once the receive is posted, resending only what the
        // SACKs reveal as missing.
        let reactor = Reactor::new().unwrap();
        let protocol = ProtocolConfig::paper_internode()
            .with_mode(ProtocolMode::PushAll)
            .with_pushed_buffer(4 * 1024);
        let config = EndpointConfig::new().reliability(ReliabilityMode::SelectiveRepeat);
        let (a, b) = pair(&reactor, protocol, &config);
        let data = payload(16 * 1024);
        send(&a, b.id(), Tag(7), data.clone());
        std::thread::sleep(Duration::from_millis(120));
        let got = recv(&b, a.id(), Tag(7), 16 * 1024, T).expect("recv timed out");
        assert_eq!(got, data);
        assert!(b.stats().frames_dropped > 0, "expected pushed-buffer drops");
        assert!(a.stats().retransmits > 0, "expected SR retransmissions");
    }

    #[test]
    fn many_clients_one_server_endpoint() {
        // One reactor hosts the server and 32 clients: a smoke-scale
        // version of the many-peer workload the reactor exists for.
        let reactor = Reactor::new().unwrap();
        let protocol = ProtocolConfig::paper_internode().with_pushed_buffer(256 * 1024);
        let server = reactor
            .add_endpoint(ProcessId::new(0, 0), protocol.clone(), "127.0.0.1:0")
            .unwrap();
        let server_addr = server.local_addr().unwrap();
        let clients: Vec<ReactorEndpoint> = (0..32)
            .map(|i| {
                let c = reactor
                    .add_endpoint(ProcessId::new(1, i), protocol.clone(), "127.0.0.1:0")
                    .unwrap();
                c.add_peer(server.id(), server_addr);
                server.add_peer(c.id(), c.local_addr().unwrap());
                c
            })
            .collect();
        let recvs: Vec<RecvOp> = (0..32)
            .map(|_| {
                server
                    .post_recv(ANY_SOURCE, Tag(5), 4096, TruncationPolicy::Error)
                    .unwrap()
            })
            .collect();
        let sends: Vec<SendOp> = clients
            .iter()
            .map(|c| send(c, server.id(), Tag(5), payload(1024)))
            .collect();
        for op in recvs {
            let done = wait(&server, OpId::Recv(op), T).expect("server recv timed out");
            assert_eq!(done.status, Status::Ok);
            assert_eq!(done.data.unwrap(), payload(1024));
        }
        for (c, op) in clients.iter().zip(sends) {
            assert!(
                wait(c, OpId::Send(op), T).is_some(),
                "client send timed out"
            );
        }
        assert_eq!(server.stats().recvs_completed, 32);
    }

    #[test]
    fn recv_timeout_returns_none() {
        let reactor = Reactor::new().unwrap();
        let (a, b) = pair(
            &reactor,
            ProtocolConfig::paper_internode(),
            &EndpointConfig::new(),
        );
        assert!(recv(&a, b.id(), Tag(9), 64, Duration::from_millis(100)).is_none());
    }

    #[test]
    fn wildcard_recv_into_over_reactor() {
        let reactor = Reactor::new().unwrap();
        let (a, b) = pair(
            &reactor,
            ProtocolConfig::paper_internode().with_pushed_buffer(64 * 1024),
            &EndpointConfig::new(),
        );
        let data = payload(8192);
        let op = b
            .post_recv_into(
                ANY_SOURCE,
                Tag(4),
                RecvBuf::with_capacity(8192),
                TruncationPolicy::Error,
            )
            .unwrap();
        send(&a, b.id(), Tag(4), data.clone());
        let done = wait(&b, OpId::Recv(op), T).expect("recv timed out");
        assert_eq!(done.status, Status::Ok);
        assert_eq!(done.peer, a.id());
        assert_eq!(done.buf.unwrap().as_slice(), &data[..]);
    }

    #[test]
    fn dropping_an_endpoint_leaves_the_reactor_serving_others() {
        let reactor = Reactor::new().unwrap();
        let protocol = ProtocolConfig::paper_internode();
        let (a, b) = pair(&reactor, protocol.clone(), &EndpointConfig::new());
        let c = reactor
            .add_endpoint(ProcessId::new(2, 0), protocol, "127.0.0.1:0")
            .unwrap();
        drop(c);
        let data = payload(2048);
        send(&a, b.id(), Tag(1), data.clone());
        assert_eq!(recv(&b, a.id(), Tag(1), 2048, T).unwrap(), data);
    }

    #[test]
    fn timer_wheel_fires_in_deadline_order_and_parks_far_deadlines() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(start);
        let ep = Weak::new();
        let near = TimerId {
            peer: ProcessId::new(0, 1),
            generation: 1,
        };
        let far = TimerId {
            peer: ProcessId::new(0, 2),
            generation: 7,
        };
        // `far` lands in the same slot as `near` but a full revolution
        // later: WHEEL_SLOTS ticks further out.
        wheel.insert(start + Duration::from_micros(TICK_US), ep.clone(), near);
        wheel.insert(
            start + Duration::from_micros(TICK_US * (1 + WHEEL_SLOTS as u64)),
            ep.clone(),
            far,
        );
        let mut fired = Vec::new();
        wheel.advance(start + Duration::from_micros(TICK_US * 3), &mut fired);
        assert_eq!(
            fired.iter().map(|(_, t)| *t).collect::<Vec<_>>(),
            vec![near],
            "far deadline must survive the first revolution"
        );
        fired.clear();
        wheel.advance(
            start + Duration::from_micros(TICK_US * (WHEEL_SLOTS as u64 + 3)),
            &mut fired,
        );
        assert_eq!(fired.iter().map(|(_, t)| *t).collect::<Vec<_>>(), vec![far]);
    }

    #[test]
    fn timer_wheel_clamps_past_deadlines_to_next_pass() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(start);
        let mut fired = Vec::new();
        wheel.advance(start + Duration::from_micros(TICK_US * 100), &mut fired);
        assert!(fired.is_empty());
        // A deadline behind the cursor still fires on the next advance.
        let timer = TimerId {
            peer: ProcessId::new(0, 1),
            generation: 3,
        };
        wheel.insert(start, Weak::new(), timer);
        wheel.advance(start + Duration::from_micros(TICK_US * 101), &mut fired);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].1, timer);
    }
}
