//! Intranode fabric: threads within one OS process exchanging messages
//! through a shared in-memory "kernel agent", driving the same protocol
//! engine the simulator uses.
//!
//! Since PR 8 every member hosts a peer-sharded engine
//! ([`ShardedEngine`]) behind per-shard locks and publishes completions
//! through an MPSC [`CompletionMailbox`]: threads exchanging traffic with
//! *different* peers of one endpoint run under different shard locks, and a
//! publication with no parked waiter never touches the shared completion
//! lock at all.  The default is one shard per endpoint (identical locking
//! to the pre-sharding fabric); opt in with
//! [`EndpointConfig::shards`](ppmsg_core::EndpointConfig::shards) or
//! [`HostCluster::add_endpoint_sharded`].

use bytes::Bytes;
use ppmsg_check::sync::Mutex;
use ppmsg_core::sharded::{EngineBatch, ShardedEngine};
use ppmsg_core::wire::Packet;
use ppmsg_core::{
    Action, CompletionMailbox, CompletionQueue, EndpointConfig, EndpointStats, ProcessId,
    ProtocolConfig, RawTransport, RecvBuf, RecvOp, Result, SendOp, Tag, TruncationPolicy,
};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

struct Member {
    /// The peer-sharded protocol engine: traffic for independent peers
    /// progresses under independent shard locks.
    engine: ShardedEngine,
    /// Completions published per shard through the MPSC mailbox; claims,
    /// polls, and waker registrations (async futures and the facade's
    /// blocking `wait` alike) go through its queue.
    done: CompletionMailbox,
}

impl Member {
    /// Publishes a drained batch (completions + shard attribution), waking
    /// every waiter registered for one of them.  Wakers are invoked after
    /// the mailbox's queue lock is released: a waker is arbitrary executor
    /// code and may poll (and so re-enter this endpoint) inline.
    fn publish(&self, batch: &mut EngineBatch) {
        self.done.post(batch.shard, &mut batch.comps);
    }
}

/// The shared state of one intranode fabric (one simulated "SMP node" worth
/// of processes living in this OS process).
struct Fabric {
    members: Mutex<HashMap<u64, Arc<Member>>>,
}

impl Fabric {
    fn member(&self, id: ProcessId) -> Option<Arc<Member>> {
        self.members.lock().get(&id.as_u64()).cloned()
    }

    /// Queues a member's outgoing packets; cost-model hints
    /// (translate/copy) and reliability plumbing have no user-space
    /// equivalent and are dropped.  Drains `actions`, leaving its capacity
    /// for reuse.
    fn queue_actions(
        src: ProcessId,
        actions: &mut Vec<Action>,
        work: &mut VecDeque<(ProcessId, ProcessId, Packet)>,
    ) {
        for action in actions.drain(..) {
            match action {
                Action::Transmit { dst, packet, .. } => {
                    work.push_back((src, dst, packet));
                }
                Action::TransmitFrame { .. } => {
                    unreachable!("intranode fabric never uses go-back-N frames")
                }
                Action::Translate { .. }
                | Action::Copy { .. }
                | Action::SetTimer { .. }
                | Action::CancelTimer { .. }
                | Action::PacketDropped { .. }
                | Action::ChannelFailed { .. } => {}
            }
        }
    }

    /// Routes packets between members until no more traffic is generated.
    /// This is the "kernel agent": it may run on any thread that produced
    /// traffic (the paper runs it on the least-loaded processor; here the OS
    /// scheduler decides).  One batch is reused across every hop, so routing
    /// a message exchange performs no per-packet allocation — and each hop
    /// locks only the shard owning the packet's source, so routers carrying
    /// different peers' traffic into one busy endpoint run concurrently.
    fn route(&self, mut work: VecDeque<(ProcessId, ProcessId, Packet)>) {
        // One clock read stamps every event this routing pass emits.
        ppmsg_core::telemetry::clock::hold();
        let mut batch = EngineBatch::new();
        while let Some((src, dst, packet)) = work.pop_front() {
            let Some(member) = self.member(dst) else {
                continue;
            };
            member.engine.handle_packet(src, packet, &mut batch);
            member.publish(&mut batch);
            Self::queue_actions(dst, &mut batch.actions, &mut work);
        }
    }
}

/// A collection of intranode endpoints sharing one in-memory fabric.
#[derive(Clone)]
pub struct HostCluster {
    fabric: Arc<Fabric>,
    node: u32,
    protocol: ProtocolConfig,
}

impl HostCluster {
    /// Creates an empty intranode fabric for node `node`, with every endpoint
    /// using `protocol`.
    pub fn new(node: u32, protocol: ProtocolConfig) -> Self {
        HostCluster {
            fabric: Arc::new(Fabric {
                members: Mutex::new("host.fabric.members", HashMap::new()),
            }),
            node,
            protocol,
        }
    }

    /// Adds a process to the fabric and returns its endpoint handle.
    ///
    /// # Panics
    ///
    /// Panics if the local rank was already added.
    pub fn add_endpoint(&self, local_rank: u32) -> HostEndpoint {
        self.add_endpoint_with(local_rank, &EndpointConfig::new())
    }

    /// Adds a process whose engine state is partitioned across `shards`
    /// peer-keyed shards (see
    /// [`ShardedEngine`](ppmsg_core::sharded::ShardedEngine)): threads
    /// driving traffic with different peers of this endpoint stop contending
    /// on one engine lock.  Note that multi-shard endpoints reject
    /// `ANY_SOURCE` receives.
    ///
    /// # Panics
    ///
    /// Panics if the local rank was already added.
    pub fn add_endpoint_sharded(&self, local_rank: u32, shards: usize) -> HostEndpoint {
        self.add_endpoint_with(local_rank, &EndpointConfig::new().shards(shards))
    }

    /// Adds a process with per-endpoint configuration overrides: the
    /// completion-retention cap, go-back-N window, BTP eager threshold, and
    /// engine shard count from `config` replace the fabric-wide defaults
    /// for this endpoint only.
    ///
    /// Only the protocol-and-queue overrides (retention cap, window, eager
    /// threshold, shards) apply here; the config's default *truncation
    /// policy* is a front-end concern — wrap the returned endpoint in the
    /// facade's `Endpoint::with_config(raw, config)` to honor it.
    ///
    /// # Panics
    ///
    /// Panics if the local rank was already added or the resulting protocol
    /// configuration is invalid.
    pub fn add_endpoint_with(&self, local_rank: u32, config: &EndpointConfig) -> HostEndpoint {
        let id = ProcessId::new(self.node, local_rank);
        let protocol = config.apply_protocol(self.protocol.clone());
        let shards = config.shard_count();
        let mut done = CompletionQueue::new();
        config.apply_retention(&mut done);
        let member = Arc::new(Member {
            engine: ShardedEngine::new(id, protocol, shards),
            done: CompletionMailbox::with_queue(shards, done),
        });
        let previous = self
            .fabric
            .members
            .lock()
            .insert(id.as_u64(), member.clone());
        assert!(previous.is_none(), "endpoint {id} added twice");
        HostEndpoint {
            fabric: self.fabric.clone(),
            member,
        }
    }
}

/// One process's handle onto the intranode fabric.
#[derive(Clone)]
pub struct HostEndpoint {
    fabric: Arc<Fabric>,
    member: Arc<Member>,
}

impl HostEndpoint {
    /// This endpoint's process id.
    pub fn id(&self) -> ProcessId {
        self.member.engine.id()
    }

    /// Number of engine shards this endpoint runs (1 unless configured).
    pub fn shard_count(&self) -> usize {
        self.member.engine.shard_count()
    }

    /// Publishes a drained interaction's completions through the mailbox
    /// and routes its traffic through the fabric.
    fn finish(&self, batch: &mut EngineBatch) {
        self.member.publish(batch);
        let mut work = VecDeque::new();
        Fabric::queue_actions(self.id(), &mut batch.actions, &mut work);
        self.fabric.route(work);
    }

    /// Posts a send of `data` to `peer`, returning its operation handle.
    /// The transfer is initiated before this returns (the pushed part
    /// delivered and the remainder registered for pulling); the data is
    /// captured by reference count, so the caller may drop its handle
    /// immediately.
    pub fn post_send(&self, peer: ProcessId, tag: Tag, data: impl Into<Bytes>) -> Result<SendOp> {
        let data = data.into();
        // Latch one clock read for every event this interaction emits.
        ppmsg_core::telemetry::clock::hold();
        let mut batch = EngineBatch::new();
        let result = self.member.engine.post_send(peer, tag, data, &mut batch);
        self.finish(&mut batch);
        result
    }

    /// Posts a vectored send: `segments` arrive as one concatenated message
    /// but are never coalesced on the wire; see
    /// [`Endpoint::post_send_vectored`](ppmsg_core::Endpoint::post_send_vectored).
    pub fn post_send_vectored(
        &self,
        peer: ProcessId,
        tag: Tag,
        segments: &[Bytes],
    ) -> Result<SendOp> {
        ppmsg_core::telemetry::clock::hold();
        let mut batch = EngineBatch::new();
        let result = self
            .member
            .engine
            .post_send_vectored(peer, tag, segments, &mut batch);
        self.finish(&mut batch);
        result
    }

    /// Posts an engine-buffered receive.  `src` / `tag` may be the
    /// [`ANY_SOURCE`](ppmsg_core::ANY_SOURCE) /
    /// [`ANY_TAG`](ppmsg_core::ANY_TAG) wildcards — though `ANY_SOURCE`
    /// requires a single-shard endpoint (the default); see
    /// [`Error::ShardedWildcard`](ppmsg_core::Error::ShardedWildcard).
    pub fn post_recv(
        &self,
        src: ProcessId,
        tag: Tag,
        capacity: usize,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        ppmsg_core::telemetry::clock::hold();
        let mut batch = EngineBatch::new();
        let result = self
            .member
            .engine
            .post_recv_with(src, tag, capacity, policy, &mut batch);
        self.finish(&mut batch);
        result
    }

    /// Posts a receive that reassembles directly into the caller-owned
    /// `buf`, handed back in the completion.
    pub fn post_recv_into(
        &self,
        src: ProcessId,
        tag: Tag,
        buf: RecvBuf,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        ppmsg_core::telemetry::clock::hold();
        let mut batch = EngineBatch::new();
        let result = self
            .member
            .engine
            .post_recv_into(src, tag, buf, policy, &mut batch);
        self.finish(&mut batch);
        result
    }

    /// Cancels a still-unmatched receive; see
    /// [`Endpoint::cancel`](ppmsg_core::Endpoint::cancel).
    pub fn cancel(&self, op: RecvOp) -> bool {
        let mut batch = EngineBatch::new();
        let result = self.member.engine.cancel_recv(op, &mut batch);
        self.finish(&mut batch);
        result
    }

    /// Cancels a posted send whose remainder has not been pulled yet; see
    /// [`Endpoint::cancel_send`](ppmsg_core::Endpoint::cancel_send).
    pub fn cancel_send(&self, op: SendOp) -> bool {
        let mut batch = EngineBatch::new();
        let result = self.member.engine.cancel_send(op, &mut batch);
        self.finish(&mut batch);
        result
    }

    /// Protocol statistics of this endpoint, merged over its shards and
    /// including the completion queue's eviction counter
    /// ([`EndpointStats::completions_evicted`]).
    pub fn stats(&self) -> EndpointStats {
        let mut stats = self.member.engine.stats();
        stats.completions_evicted = self.member.done.evicted();
        stats
    }
}

/// The intranode fabric's backend contract: the posting core delegates to
/// the engine behind the member lock, and completion access goes through the
/// `done` queue under its own lock (publication wakes registered wakers
/// after releasing it).
impl RawTransport for HostEndpoint {
    fn local_id(&self) -> ProcessId {
        self.id()
    }

    fn post_send(&self, peer: ProcessId, tag: Tag, data: Bytes) -> Result<SendOp> {
        HostEndpoint::post_send(self, peer, tag, data)
    }

    fn post_send_vectored(&self, peer: ProcessId, tag: Tag, segments: &[Bytes]) -> Result<SendOp> {
        HostEndpoint::post_send_vectored(self, peer, tag, segments)
    }

    fn post_recv(
        &self,
        src: ProcessId,
        tag: Tag,
        capacity: usize,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        HostEndpoint::post_recv(self, src, tag, capacity, policy)
    }

    fn post_recv_into(
        &self,
        src: ProcessId,
        tag: Tag,
        buf: RecvBuf,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        HostEndpoint::post_recv_into(self, src, tag, buf, policy)
    }

    fn cancel_recv(&self, op: RecvOp) -> bool {
        HostEndpoint::cancel(self, op)
    }

    fn cancel_send(&self, op: SendOp) -> bool {
        HostEndpoint::cancel_send(self, op)
    }

    fn with_completions(&self, f: &mut dyn FnMut(&mut CompletionQueue)) {
        self.member.done.with(f);
    }

    fn stats(&self) -> EndpointStats {
        HostEndpoint::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppmsg_core::{Completion, OpId, ProtocolMode, Status, ANY_SOURCE, ANY_TAG};
    use std::thread;
    use std::time::Duration;

    const T: Duration = Duration::from_secs(5);

    fn payload(len: usize) -> Bytes {
        Bytes::from((0..len).map(|i| (i % 251) as u8).collect::<Vec<u8>>())
    }

    /// Test-local blocking wait over the `RawTransport` core (the real
    /// blocking front-end lives in the facade crate, which this crate
    /// cannot depend on): claim-poll with a short sleep.
    fn wait(ep: &HostEndpoint, op: OpId, timeout: Duration) -> Option<Completion> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(completion) = ep.take_completion(op) {
                return Some(completion);
            }
            if std::time::Instant::now() >= deadline {
                return None;
            }
            thread::sleep(Duration::from_micros(200));
        }
    }

    fn send(ep: &HostEndpoint, peer: ProcessId, tag: Tag, data: Bytes) -> SendOp {
        ep.post_send(peer, tag, data).expect("post_send failed")
    }

    fn recv(
        ep: &HostEndpoint,
        peer: ProcessId,
        tag: Tag,
        max_len: usize,
        timeout: Duration,
    ) -> Option<Bytes> {
        let op = ep
            .post_recv(peer, tag, max_len, TruncationPolicy::Error)
            .ok()?;
        let completion = wait(ep, OpId::Recv(op), timeout)?;
        match completion.status {
            Status::Ok | Status::Truncated { .. } => completion.data,
            Status::Cancelled | Status::Error(_) => None,
        }
    }

    #[test]
    fn two_thread_pingpong_all_modes() {
        for mode in [
            ProtocolMode::PushZero,
            ProtocolMode::PushPull,
            ProtocolMode::PushAll,
        ] {
            let cluster = HostCluster::new(
                0,
                ProtocolConfig::paper_intranode()
                    .with_mode(mode)
                    .with_pushed_buffer(64 * 1024),
            );
            let a = cluster.add_endpoint(0);
            let b = cluster.add_endpoint(1);
            let a_id = a.id();
            let b_id = b.id();
            let data = payload(8192);
            let expect = data.clone();

            let receiver = thread::spawn(move || {
                let got = recv(&b, a_id, Tag(5), 8192, T).expect("recv timed out");
                send(&b, a_id, Tag(6), got.clone());
                got
            });
            send(&a, b_id, Tag(5), data);
            let echoed = recv(&a, b_id, Tag(6), 8192, T).expect("echo timed out");
            let got = receiver.join().unwrap();
            assert_eq!(got, expect, "mode {mode:?}");
            assert_eq!(echoed, expect, "mode {mode:?}");
        }
    }

    #[test]
    fn late_receiver_is_still_correct() {
        let cluster = HostCluster::new(
            0,
            ProtocolConfig::paper_intranode().with_pushed_buffer(64 * 1024),
        );
        let a = cluster.add_endpoint(0);
        let b = cluster.add_endpoint(1);
        let data = payload(4096);
        // Send before any receive is posted: data must wait in the pushed
        // buffer and be drained when the receive appears.
        let h = send(&a, b.id(), Tag(1), data.clone());
        let got = recv(&b, a.id(), Tag(1), 4096, T).expect("recv timed out");
        assert_eq!(got, data);
        assert!(wait(&a, OpId::Send(h), T).is_some());
        assert!(b.stats().bytes_copied_staged > 0);
    }

    #[test]
    fn early_receiver_is_one_copy() {
        let cluster = HostCluster::new(0, ProtocolConfig::paper_intranode());
        let a = cluster.add_endpoint(0);
        let b = cluster.add_endpoint(1);
        let a_id = a.id();
        let b_id = b.id();
        let data = payload(4096);
        let expect = data.clone();
        let receiver = thread::spawn(move || recv(&b, a_id, Tag(2), 4096, T));
        // Give the receiver a moment to post.
        thread::sleep(Duration::from_millis(50));
        send(&a, b_id, Tag(2), data);
        assert_eq!(receiver.join().unwrap().unwrap(), expect);
    }

    #[test]
    fn many_messages_in_order() {
        let cluster = HostCluster::new(
            0,
            ProtocolConfig::paper_intranode().with_pushed_buffer(256 * 1024),
        );
        let a = cluster.add_endpoint(0);
        let b = cluster.add_endpoint(1);
        let count = 50usize;
        for i in 0..count {
            send(&a, b.id(), Tag(9), payload(i * 37 + 1));
        }
        for i in 0..count {
            let got = recv(&b, a.id(), Tag(9), 64 * 1024, T).expect("recv timed out");
            assert_eq!(got.len(), i * 37 + 1);
        }
    }

    #[test]
    fn recv_timeout_returns_none() {
        let cluster = HostCluster::new(0, ProtocolConfig::paper_intranode());
        let a = cluster.add_endpoint(0);
        let _b = cluster.add_endpoint(1);
        assert!(recv(
            &a,
            ProcessId::new(0, 1),
            Tag(1),
            64,
            Duration::from_millis(50)
        )
        .is_none());
    }

    #[test]
    fn wildcard_receive_and_recv_into() {
        let cluster = HostCluster::new(
            0,
            ProtocolConfig::paper_intranode().with_pushed_buffer(64 * 1024),
        );
        let a = cluster.add_endpoint(0);
        let b = cluster.add_endpoint(1);
        let data = payload(4096);
        let wild = b
            .post_recv(ANY_SOURCE, ANY_TAG, 4096, TruncationPolicy::Error)
            .unwrap();
        send(&a, b.id(), Tag(77), data.clone());
        let done = wait(&b, OpId::Recv(wild), T).expect("wildcard completed");
        assert_eq!(done.peer, a.id());
        assert_eq!(done.tag, Tag(77));
        assert_eq!(done.data.unwrap(), data);

        let op = b
            .post_recv_into(
                a.id(),
                Tag(78),
                RecvBuf::with_capacity(4096),
                TruncationPolicy::Error,
            )
            .unwrap();
        send(&a, b.id(), Tag(78), data.clone());
        let done = wait(&b, OpId::Recv(op), T).expect("recv_into completed");
        assert_eq!(done.buf.unwrap().as_slice(), &data[..]);
    }

    #[test]
    fn cancelled_receive_reports_cancellation() {
        let cluster = HostCluster::new(0, ProtocolConfig::paper_intranode());
        let a = cluster.add_endpoint(0);
        let b = cluster.add_endpoint(1);
        let op = b
            .post_recv(a.id(), Tag(1), 64, TruncationPolicy::Error)
            .unwrap();
        assert!(b.cancel(op));
        let done = wait(&b, OpId::Recv(op), T).unwrap();
        assert_eq!(done.status, Status::Cancelled);
        assert!(!b.cancel(op), "stale handle must not cancel again");
    }

    #[test]
    #[should_panic(expected = "added twice")]
    fn duplicate_endpoint_rejected() {
        let cluster = HostCluster::new(0, ProtocolConfig::paper_intranode());
        let _a = cluster.add_endpoint(0);
        let _b = cluster.add_endpoint(0);
    }

    #[test]
    fn sharded_endpoint_serves_many_peers() {
        // One 4-shard server, 8 client threads: each client sends a
        // distinct payload and receives a distinct echo.  Peers spread
        // round-robin over the shards, so concurrent clients exercise
        // different shard locks (on multi-core hardware, concurrently).
        let cluster = HostCluster::new(
            0,
            ProtocolConfig::paper_intranode().with_pushed_buffer(512 * 1024),
        );
        let server = cluster.add_endpoint_sharded(0, 4);
        assert_eq!(server.shard_count(), 4);
        let server_id = server.id();
        let clients: Vec<_> = (1..9)
            .map(|r| {
                let client = cluster.add_endpoint(r);
                thread::spawn(move || {
                    let data = payload(512 + r as usize * 37);
                    send(&client, server_id, Tag(r), data.clone());
                    let echoed =
                        recv(&client, server_id, Tag(100 + r), 64 * 1024, T).expect("echo");
                    assert_eq!(echoed, data);
                })
            })
            .collect();
        for r in 1..9u32 {
            let got = recv(&server, ProcessId::new(0, r), Tag(r), 64 * 1024, T)
                .expect("server recv timed out");
            send(&server, ProcessId::new(0, r), Tag(100 + r), got);
        }
        for handle in clients {
            handle.join().unwrap();
        }
        let stats = server.stats();
        assert_eq!(stats.recvs_completed, 8);
        assert_eq!(stats.sends_completed, 8);
    }

    #[test]
    fn sharded_endpoint_rejects_wildcard_source() {
        let cluster = HostCluster::new(0, ProtocolConfig::paper_intranode());
        let sharded = cluster.add_endpoint_sharded(0, 2);
        let _peer = cluster.add_endpoint(1);
        let err = sharded
            .post_recv(ANY_SOURCE, ANY_TAG, 64, TruncationPolicy::Error)
            .unwrap_err();
        assert_eq!(err, ppmsg_core::Error::ShardedWildcard { shards: 2 });
        // A concrete source with ANY_TAG stays legal.
        assert!(sharded
            .post_recv(ProcessId::new(0, 1), ANY_TAG, 64, TruncationPolicy::Error)
            .is_ok());
    }
}
