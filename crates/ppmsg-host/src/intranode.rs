//! Intranode fabric: threads within one OS process exchanging messages
//! through a shared in-memory "kernel agent", driving the same protocol
//! engine the simulator uses.

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use ppmsg_core::wire::Packet;
use ppmsg_core::{Action, Endpoint, EndpointStats, ProcessId, ProtocolConfig, SendHandle, Tag};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// Completion state shared between the user thread and whoever delivers the
/// completing packet.
#[derive(Default)]
struct Completions {
    received: HashMap<u64, Bytes>,
    sent: HashMap<u64, usize>,
}

struct Member {
    id: ProcessId,
    engine: Mutex<Endpoint>,
    completions: Mutex<Completions>,
    cv: Condvar,
}

/// The shared state of one intranode fabric (one simulated "SMP node" worth
/// of processes living in this OS process).
struct Fabric {
    members: Mutex<HashMap<u64, Arc<Member>>>,
}

impl Fabric {
    fn member(&self, id: ProcessId) -> Option<Arc<Member>> {
        self.members.lock().get(&id.as_u64()).cloned()
    }

    /// Routes packets between members until no more traffic is generated.
    /// This is the "kernel agent": it may run on any thread that produced
    /// traffic (the paper runs it on the least-loaded processor; here the OS
    /// scheduler decides).  One action buffer is reused across every hop, so
    /// routing a message exchange performs no per-packet allocation.
    fn route(&self, mut work: VecDeque<(ProcessId, ProcessId, Packet)>) {
        let mut actions = Vec::new();
        while let Some((src, dst, packet)) = work.pop_front() {
            let Some(member) = self.member(dst) else {
                continue;
            };
            {
                let mut engine = member.engine.lock();
                engine.handle_packet(src, packet);
                engine.drain_actions_into(&mut actions);
            }
            self.apply_actions(&member, &mut actions, &mut work);
        }
    }

    /// Applies one member's actions: queue outgoing packets, record
    /// completions, ignore cost-model hints (translate/copy) which have no
    /// user-space equivalent.  Drains `actions`, leaving its capacity for
    /// reuse.
    fn apply_actions(
        &self,
        member: &Member,
        actions: &mut Vec<Action>,
        work: &mut VecDeque<(ProcessId, ProcessId, Packet)>,
    ) {
        for action in actions.drain(..) {
            match action {
                Action::Transmit { dst, packet, .. } => {
                    work.push_back((member.id, dst, packet));
                }
                Action::TransmitFrame { .. } => {
                    unreachable!("intranode fabric never uses go-back-N frames")
                }
                Action::RecvComplete { handle, data, .. } => {
                    member.completions.lock().received.insert(handle.0, data);
                    member.cv.notify_all();
                }
                Action::SendComplete { handle, bytes, .. } => {
                    member.completions.lock().sent.insert(handle.0, bytes);
                    member.cv.notify_all();
                }
                Action::RecvFailed { handle, error, .. } => {
                    // Surface the failure as an empty completion so the
                    // blocked receiver wakes up and can report the error.
                    member
                        .completions
                        .lock()
                        .received
                        .insert(handle.0, Bytes::new());
                    member.cv.notify_all();
                    eprintln!("ppmsg-host: receive {handle:?} failed: {error}");
                }
                // Cost-model hints and reliability plumbing: nothing to do on
                // a real shared-memory path.
                Action::Translate { .. }
                | Action::Copy { .. }
                | Action::SetTimer { .. }
                | Action::CancelTimer { .. }
                | Action::PacketDropped { .. }
                | Action::ChannelFailed { .. } => {}
            }
        }
    }
}

/// A collection of intranode endpoints sharing one in-memory fabric.
#[derive(Clone)]
pub struct HostCluster {
    fabric: Arc<Fabric>,
    node: u32,
    protocol: ProtocolConfig,
}

impl HostCluster {
    /// Creates an empty intranode fabric for node `node`, with every endpoint
    /// using `protocol`.
    pub fn new(node: u32, protocol: ProtocolConfig) -> Self {
        HostCluster {
            fabric: Arc::new(Fabric {
                members: Mutex::new(HashMap::new()),
            }),
            node,
            protocol,
        }
    }

    /// Adds a process to the fabric and returns its endpoint handle.
    ///
    /// # Panics
    ///
    /// Panics if the local rank was already added.
    pub fn add_endpoint(&self, local_rank: u32) -> HostEndpoint {
        let id = ProcessId::new(self.node, local_rank);
        let member = Arc::new(Member {
            id,
            engine: Mutex::new(Endpoint::new(id, self.protocol.clone())),
            completions: Mutex::new(Completions::default()),
            cv: Condvar::new(),
        });
        let previous = self
            .fabric
            .members
            .lock()
            .insert(id.as_u64(), member.clone());
        assert!(previous.is_none(), "endpoint {id} added twice");
        HostEndpoint {
            fabric: self.fabric.clone(),
            member,
        }
    }
}

/// One process's handle onto the intranode fabric.
#[derive(Clone)]
pub struct HostEndpoint {
    fabric: Arc<Fabric>,
    member: Arc<Member>,
}

impl HostEndpoint {
    /// This endpoint's process id.
    pub fn id(&self) -> ProcessId {
        self.member.id
    }

    /// Posts a send of `data` to `peer`.  Returns once the transfer has been
    /// initiated (the pushed part delivered and the remainder registered for
    /// pulling); the data is captured by reference count, so the caller may
    /// drop its handle immediately.
    pub fn send(&self, peer: ProcessId, tag: Tag, data: impl Into<Bytes>) -> SendHandle {
        let mut actions = Vec::new();
        let handle = {
            let mut engine = self.member.engine.lock();
            let handle = engine
                .post_send(peer, tag, data.into())
                .expect("post_send failed");
            engine.drain_actions_into(&mut actions);
            handle
        };
        let mut work = VecDeque::new();
        self.fabric
            .apply_actions(&self.member, &mut actions, &mut work);
        self.fabric.route(work);
        handle
    }

    /// Blocks until the send identified by `handle` has been fully handed
    /// over (for Push-Pull sends this means the receiver has pulled the
    /// remainder).  Returns the number of bytes sent, or `None` on timeout.
    pub fn wait_send(&self, handle: SendHandle, timeout: Duration) -> Option<usize> {
        let mut completions = self.member.completions.lock();
        loop {
            if let Some(bytes) = completions.sent.remove(&handle.0) {
                return Some(bytes);
            }
            if self
                .member
                .cv
                .wait_for(&mut completions, timeout)
                .timed_out()
            {
                return completions.sent.remove(&handle.0);
            }
        }
    }

    /// Posts a receive for a message from `peer` with `tag` of at most
    /// `max_len` bytes and blocks until it arrives (or `timeout` expires, in
    /// which case `None` is returned).
    pub fn recv(
        &self,
        peer: ProcessId,
        tag: Tag,
        max_len: usize,
        timeout: Duration,
    ) -> Option<Bytes> {
        let mut actions = Vec::new();
        let handle = {
            let mut engine = self.member.engine.lock();
            let handle = engine.post_recv(peer, tag, max_len).ok()?;
            engine.drain_actions_into(&mut actions);
            handle
        };
        let mut work = VecDeque::new();
        self.fabric
            .apply_actions(&self.member, &mut actions, &mut work);
        self.fabric.route(work);

        let mut completions = self.member.completions.lock();
        loop {
            if let Some(data) = completions.received.remove(&handle.0) {
                return Some(data);
            }
            if self
                .member
                .cv
                .wait_for(&mut completions, timeout)
                .timed_out()
            {
                return completions.received.remove(&handle.0);
            }
        }
    }

    /// Protocol statistics of this endpoint.
    pub fn stats(&self) -> EndpointStats {
        self.member.engine.lock().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppmsg_core::ProtocolMode;
    use std::thread;

    const T: Duration = Duration::from_secs(5);

    fn payload(len: usize) -> Bytes {
        Bytes::from((0..len).map(|i| (i % 251) as u8).collect::<Vec<u8>>())
    }

    #[test]
    fn two_thread_pingpong_all_modes() {
        for mode in [
            ProtocolMode::PushZero,
            ProtocolMode::PushPull,
            ProtocolMode::PushAll,
        ] {
            let cluster = HostCluster::new(
                0,
                ProtocolConfig::paper_intranode()
                    .with_mode(mode)
                    .with_pushed_buffer(64 * 1024),
            );
            let a = cluster.add_endpoint(0);
            let b = cluster.add_endpoint(1);
            let a_id = a.id();
            let b_id = b.id();
            let data = payload(8192);
            let expect = data.clone();

            let receiver = thread::spawn(move || {
                let got = b.recv(a_id, Tag(5), 8192, T).expect("recv timed out");
                b.send(a_id, Tag(6), got.clone());
                got
            });
            a.send(b_id, Tag(5), data);
            let echoed = a.recv(b_id, Tag(6), 8192, T).expect("echo timed out");
            let got = receiver.join().unwrap();
            assert_eq!(got, expect, "mode {mode:?}");
            assert_eq!(echoed, expect, "mode {mode:?}");
        }
    }

    #[test]
    fn late_receiver_is_still_correct() {
        let cluster = HostCluster::new(
            0,
            ProtocolConfig::paper_intranode().with_pushed_buffer(64 * 1024),
        );
        let a = cluster.add_endpoint(0);
        let b = cluster.add_endpoint(1);
        let data = payload(4096);
        // Send before any receive is posted: data must wait in the pushed
        // buffer and be drained when the receive appears.
        let h = a.send(b.id(), Tag(1), data.clone());
        let got = b.recv(a.id(), Tag(1), 4096, T).expect("recv timed out");
        assert_eq!(got, data);
        assert!(a.wait_send(h, T).is_some());
        assert!(b.stats().bytes_copied_staged > 0);
    }

    #[test]
    fn early_receiver_is_one_copy() {
        let cluster = HostCluster::new(0, ProtocolConfig::paper_intranode());
        let a = cluster.add_endpoint(0);
        let b = cluster.add_endpoint(1);
        let a_id = a.id();
        let b_id = b.id();
        let data = payload(4096);
        let expect = data.clone();
        let receiver = thread::spawn(move || b.recv(a_id, Tag(2), 4096, T));
        // Give the receiver a moment to post.
        thread::sleep(Duration::from_millis(50));
        a.send(b_id, Tag(2), data);
        assert_eq!(receiver.join().unwrap().unwrap(), expect);
    }

    #[test]
    fn many_messages_in_order() {
        let cluster = HostCluster::new(
            0,
            ProtocolConfig::paper_intranode().with_pushed_buffer(256 * 1024),
        );
        let a = cluster.add_endpoint(0);
        let b = cluster.add_endpoint(1);
        let count = 50usize;
        for i in 0..count {
            a.send(b.id(), Tag(9), payload(i * 37 + 1));
        }
        for i in 0..count {
            let got = b
                .recv(a.id(), Tag(9), 64 * 1024, T)
                .expect("recv timed out");
            assert_eq!(got.len(), i * 37 + 1);
        }
    }

    #[test]
    fn recv_timeout_returns_none() {
        let cluster = HostCluster::new(0, ProtocolConfig::paper_intranode());
        let a = cluster.add_endpoint(0);
        let _b = cluster.add_endpoint(1);
        assert!(a
            .recv(ProcessId::new(0, 1), Tag(1), 64, Duration::from_millis(50))
            .is_none());
    }

    #[test]
    #[should_panic(expected = "added twice")]
    fn duplicate_endpoint_rejected() {
        let cluster = HostCluster::new(0, ProtocolConfig::paper_intranode());
        let _a = cluster.add_endpoint(0);
        let _b = cluster.add_endpoint(0);
    }
}
