//! Intranode fabric: threads within one OS process exchanging messages
//! through a shared in-memory "kernel agent", driving the same protocol
//! engine the simulator uses.

use bytes::Bytes;
use parking_lot::Mutex;
use ppmsg_core::wire::Packet;
use ppmsg_core::{
    Action, Completion, CompletionQueue, Endpoint, EndpointConfig, EndpointStats, ProcessId,
    ProtocolConfig, RawTransport, RecvBuf, RecvOp, Result, SendOp, Tag, TruncationPolicy,
};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

struct Member {
    id: ProcessId,
    engine: Mutex<Endpoint>,
    /// Completions drained from the engine, op-indexed so claims are O(1)
    /// (drain order preserved separately), with the wakers of tasks
    /// awaiting them — async futures and the facade's blocking `wait`
    /// alike, so publication needs no condvar broadcast.
    done: Mutex<CompletionQueue>,
}

impl Member {
    /// Publishes a batch of completions, waking every waiter registered for
    /// one of them.  Drains `comps`, leaving its capacity for reuse.
    /// Wakers are invoked **after** the `done` lock is released: a waker is
    /// arbitrary executor code and may poll (and so re-enter this endpoint)
    /// inline.
    fn publish(&self, comps: &mut Vec<Completion>) {
        if comps.is_empty() {
            return;
        }
        let woken = self.done.lock().publish(comps);
        ppmsg_core::ops::wake_all(woken, |drained| self.done.lock().recycle_woken(drained));
    }
}

/// The shared state of one intranode fabric (one simulated "SMP node" worth
/// of processes living in this OS process).
struct Fabric {
    members: Mutex<HashMap<u64, Arc<Member>>>,
}

impl Fabric {
    fn member(&self, id: ProcessId) -> Option<Arc<Member>> {
        self.members.lock().get(&id.as_u64()).cloned()
    }

    /// Queues a member's outgoing packets; cost-model hints
    /// (translate/copy) and reliability plumbing have no user-space
    /// equivalent and are dropped.  Drains `actions`, leaving its capacity
    /// for reuse.
    fn queue_actions(
        member: &Member,
        actions: &mut Vec<Action>,
        work: &mut VecDeque<(ProcessId, ProcessId, Packet)>,
    ) {
        for action in actions.drain(..) {
            match action {
                Action::Transmit { dst, packet, .. } => {
                    work.push_back((member.id, dst, packet));
                }
                Action::TransmitFrame { .. } => {
                    unreachable!("intranode fabric never uses go-back-N frames")
                }
                Action::Translate { .. }
                | Action::Copy { .. }
                | Action::SetTimer { .. }
                | Action::CancelTimer { .. }
                | Action::PacketDropped { .. }
                | Action::ChannelFailed { .. } => {}
            }
        }
    }

    /// Routes packets between members until no more traffic is generated.
    /// This is the "kernel agent": it may run on any thread that produced
    /// traffic (the paper runs it on the least-loaded processor; here the OS
    /// scheduler decides).  One action buffer is reused across every hop, so
    /// routing a message exchange performs no per-packet allocation.
    fn route(&self, mut work: VecDeque<(ProcessId, ProcessId, Packet)>) {
        let mut actions = Vec::new();
        let mut comps = Vec::new();
        while let Some((src, dst, packet)) = work.pop_front() {
            let Some(member) = self.member(dst) else {
                continue;
            };
            {
                let mut engine = member.engine.lock();
                engine.handle_packet(src, packet);
                engine.drain_actions_into(&mut actions);
                engine.drain_completions_into(&mut comps);
            }
            member.publish(&mut comps);
            Self::queue_actions(&member, &mut actions, &mut work);
        }
    }
}

/// A collection of intranode endpoints sharing one in-memory fabric.
#[derive(Clone)]
pub struct HostCluster {
    fabric: Arc<Fabric>,
    node: u32,
    protocol: ProtocolConfig,
}

impl HostCluster {
    /// Creates an empty intranode fabric for node `node`, with every endpoint
    /// using `protocol`.
    pub fn new(node: u32, protocol: ProtocolConfig) -> Self {
        HostCluster {
            fabric: Arc::new(Fabric {
                members: Mutex::new(HashMap::new()),
            }),
            node,
            protocol,
        }
    }

    /// Adds a process to the fabric and returns its endpoint handle.
    ///
    /// # Panics
    ///
    /// Panics if the local rank was already added.
    pub fn add_endpoint(&self, local_rank: u32) -> HostEndpoint {
        self.add_endpoint_with(local_rank, &EndpointConfig::new())
    }

    /// Adds a process with per-endpoint configuration overrides: the
    /// completion-retention cap, go-back-N window, and BTP eager threshold
    /// from `config` replace the fabric-wide defaults for this endpoint
    /// only.
    ///
    /// Only the protocol-and-queue overrides (retention cap, window, eager
    /// threshold) apply here; the config's default *truncation policy* is a
    /// front-end concern — wrap the returned endpoint in the facade's
    /// `Endpoint::with_config(raw, config)` to honor it.
    ///
    /// # Panics
    ///
    /// Panics if the local rank was already added or the resulting protocol
    /// configuration is invalid.
    pub fn add_endpoint_with(&self, local_rank: u32, config: &EndpointConfig) -> HostEndpoint {
        let id = ProcessId::new(self.node, local_rank);
        let protocol = config.apply_protocol(self.protocol.clone());
        let mut done = CompletionQueue::new();
        config.apply_retention(&mut done);
        let member = Arc::new(Member {
            id,
            engine: Mutex::new(Endpoint::new(id, protocol)),
            done: Mutex::new(done),
        });
        let previous = self
            .fabric
            .members
            .lock()
            .insert(id.as_u64(), member.clone());
        assert!(previous.is_none(), "endpoint {id} added twice");
        HostEndpoint {
            fabric: self.fabric.clone(),
            member,
        }
    }
}

/// One process's handle onto the intranode fabric.
#[derive(Clone)]
pub struct HostEndpoint {
    fabric: Arc<Fabric>,
    member: Arc<Member>,
}

impl HostEndpoint {
    /// This endpoint's process id.
    pub fn id(&self) -> ProcessId {
        self.member.id
    }

    /// Runs one engine interaction, then publishes its completions and
    /// routes its traffic through the fabric.
    fn run_engine<R>(&self, f: impl FnOnce(&mut Endpoint) -> R) -> R {
        let mut actions = Vec::new();
        let mut comps = Vec::new();
        let result = {
            let mut engine = self.member.engine.lock();
            let result = f(&mut engine);
            engine.drain_actions_into(&mut actions);
            engine.drain_completions_into(&mut comps);
            result
        };
        self.member.publish(&mut comps);
        let mut work = VecDeque::new();
        Fabric::queue_actions(&self.member, &mut actions, &mut work);
        self.fabric.route(work);
        result
    }

    /// Posts a send of `data` to `peer`, returning its operation handle.
    /// The transfer is initiated before this returns (the pushed part
    /// delivered and the remainder registered for pulling); the data is
    /// captured by reference count, so the caller may drop its handle
    /// immediately.
    pub fn post_send(&self, peer: ProcessId, tag: Tag, data: impl Into<Bytes>) -> Result<SendOp> {
        let data = data.into();
        self.run_engine(|engine| engine.post_send(peer, tag, data))
    }

    /// Posts a vectored send: `segments` arrive as one concatenated message
    /// but are never coalesced on the wire; see
    /// [`Endpoint::post_send_vectored`](ppmsg_core::Endpoint::post_send_vectored).
    pub fn post_send_vectored(
        &self,
        peer: ProcessId,
        tag: Tag,
        segments: &[Bytes],
    ) -> Result<SendOp> {
        self.run_engine(|engine| engine.post_send_vectored(peer, tag, segments))
    }

    /// Posts an engine-buffered receive.  `src` / `tag` may be the
    /// [`ANY_SOURCE`](ppmsg_core::ANY_SOURCE) /
    /// [`ANY_TAG`](ppmsg_core::ANY_TAG) wildcards.
    pub fn post_recv(
        &self,
        src: ProcessId,
        tag: Tag,
        capacity: usize,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        self.run_engine(|engine| engine.post_recv_with(src, tag, capacity, policy))
    }

    /// Posts a receive that reassembles directly into the caller-owned
    /// `buf`, handed back in the completion.
    pub fn post_recv_into(
        &self,
        src: ProcessId,
        tag: Tag,
        buf: RecvBuf,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        self.run_engine(|engine| engine.post_recv_into(src, tag, buf, policy))
    }

    /// Cancels a still-unmatched receive; see
    /// [`Endpoint::cancel`](ppmsg_core::Endpoint::cancel).
    pub fn cancel(&self, op: RecvOp) -> bool {
        self.run_engine(|engine| engine.cancel(op))
    }

    /// Cancels a posted send whose remainder has not been pulled yet; see
    /// [`Endpoint::cancel_send`](ppmsg_core::Endpoint::cancel_send).
    pub fn cancel_send(&self, op: SendOp) -> bool {
        self.run_engine(|engine| engine.cancel_send(op))
    }

    /// Protocol statistics of this endpoint, including the completion
    /// queue's eviction counter
    /// ([`EndpointStats::completions_evicted`]).
    pub fn stats(&self) -> EndpointStats {
        let mut stats = self.member.engine.lock().stats();
        stats.completions_evicted = self.member.done.lock().evicted();
        stats
    }
}

/// The intranode fabric's backend contract: the posting core delegates to
/// the engine behind the member lock, and completion access goes through the
/// `done` queue under its own lock (publication wakes registered wakers
/// after releasing it).
impl RawTransport for HostEndpoint {
    fn local_id(&self) -> ProcessId {
        self.id()
    }

    fn post_send(&self, peer: ProcessId, tag: Tag, data: Bytes) -> Result<SendOp> {
        HostEndpoint::post_send(self, peer, tag, data)
    }

    fn post_send_vectored(&self, peer: ProcessId, tag: Tag, segments: &[Bytes]) -> Result<SendOp> {
        HostEndpoint::post_send_vectored(self, peer, tag, segments)
    }

    fn post_recv(
        &self,
        src: ProcessId,
        tag: Tag,
        capacity: usize,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        HostEndpoint::post_recv(self, src, tag, capacity, policy)
    }

    fn post_recv_into(
        &self,
        src: ProcessId,
        tag: Tag,
        buf: RecvBuf,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        HostEndpoint::post_recv_into(self, src, tag, buf, policy)
    }

    fn cancel_recv(&self, op: RecvOp) -> bool {
        HostEndpoint::cancel(self, op)
    }

    fn cancel_send(&self, op: SendOp) -> bool {
        HostEndpoint::cancel_send(self, op)
    }

    fn with_completions(&self, f: &mut dyn FnMut(&mut CompletionQueue)) {
        f(&mut self.member.done.lock());
    }

    fn stats(&self) -> EndpointStats {
        HostEndpoint::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppmsg_core::{OpId, ProtocolMode, Status, ANY_SOURCE, ANY_TAG};
    use std::thread;
    use std::time::Duration;

    const T: Duration = Duration::from_secs(5);

    fn payload(len: usize) -> Bytes {
        Bytes::from((0..len).map(|i| (i % 251) as u8).collect::<Vec<u8>>())
    }

    /// Test-local blocking wait over the `RawTransport` core (the real
    /// blocking front-end lives in the facade crate, which this crate
    /// cannot depend on): claim-poll with a short sleep.
    fn wait(ep: &HostEndpoint, op: OpId, timeout: Duration) -> Option<Completion> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(completion) = ep.take_completion(op) {
                return Some(completion);
            }
            if std::time::Instant::now() >= deadline {
                return None;
            }
            thread::sleep(Duration::from_micros(200));
        }
    }

    fn send(ep: &HostEndpoint, peer: ProcessId, tag: Tag, data: Bytes) -> SendOp {
        ep.post_send(peer, tag, data).expect("post_send failed")
    }

    fn recv(
        ep: &HostEndpoint,
        peer: ProcessId,
        tag: Tag,
        max_len: usize,
        timeout: Duration,
    ) -> Option<Bytes> {
        let op = ep
            .post_recv(peer, tag, max_len, TruncationPolicy::Error)
            .ok()?;
        let completion = wait(ep, OpId::Recv(op), timeout)?;
        match completion.status {
            Status::Ok | Status::Truncated { .. } => completion.data,
            Status::Cancelled | Status::Error(_) => None,
        }
    }

    #[test]
    fn two_thread_pingpong_all_modes() {
        for mode in [
            ProtocolMode::PushZero,
            ProtocolMode::PushPull,
            ProtocolMode::PushAll,
        ] {
            let cluster = HostCluster::new(
                0,
                ProtocolConfig::paper_intranode()
                    .with_mode(mode)
                    .with_pushed_buffer(64 * 1024),
            );
            let a = cluster.add_endpoint(0);
            let b = cluster.add_endpoint(1);
            let a_id = a.id();
            let b_id = b.id();
            let data = payload(8192);
            let expect = data.clone();

            let receiver = thread::spawn(move || {
                let got = recv(&b, a_id, Tag(5), 8192, T).expect("recv timed out");
                send(&b, a_id, Tag(6), got.clone());
                got
            });
            send(&a, b_id, Tag(5), data);
            let echoed = recv(&a, b_id, Tag(6), 8192, T).expect("echo timed out");
            let got = receiver.join().unwrap();
            assert_eq!(got, expect, "mode {mode:?}");
            assert_eq!(echoed, expect, "mode {mode:?}");
        }
    }

    #[test]
    fn late_receiver_is_still_correct() {
        let cluster = HostCluster::new(
            0,
            ProtocolConfig::paper_intranode().with_pushed_buffer(64 * 1024),
        );
        let a = cluster.add_endpoint(0);
        let b = cluster.add_endpoint(1);
        let data = payload(4096);
        // Send before any receive is posted: data must wait in the pushed
        // buffer and be drained when the receive appears.
        let h = send(&a, b.id(), Tag(1), data.clone());
        let got = recv(&b, a.id(), Tag(1), 4096, T).expect("recv timed out");
        assert_eq!(got, data);
        assert!(wait(&a, OpId::Send(h), T).is_some());
        assert!(b.stats().bytes_copied_staged > 0);
    }

    #[test]
    fn early_receiver_is_one_copy() {
        let cluster = HostCluster::new(0, ProtocolConfig::paper_intranode());
        let a = cluster.add_endpoint(0);
        let b = cluster.add_endpoint(1);
        let a_id = a.id();
        let b_id = b.id();
        let data = payload(4096);
        let expect = data.clone();
        let receiver = thread::spawn(move || recv(&b, a_id, Tag(2), 4096, T));
        // Give the receiver a moment to post.
        thread::sleep(Duration::from_millis(50));
        send(&a, b_id, Tag(2), data);
        assert_eq!(receiver.join().unwrap().unwrap(), expect);
    }

    #[test]
    fn many_messages_in_order() {
        let cluster = HostCluster::new(
            0,
            ProtocolConfig::paper_intranode().with_pushed_buffer(256 * 1024),
        );
        let a = cluster.add_endpoint(0);
        let b = cluster.add_endpoint(1);
        let count = 50usize;
        for i in 0..count {
            send(&a, b.id(), Tag(9), payload(i * 37 + 1));
        }
        for i in 0..count {
            let got = recv(&b, a.id(), Tag(9), 64 * 1024, T).expect("recv timed out");
            assert_eq!(got.len(), i * 37 + 1);
        }
    }

    #[test]
    fn recv_timeout_returns_none() {
        let cluster = HostCluster::new(0, ProtocolConfig::paper_intranode());
        let a = cluster.add_endpoint(0);
        let _b = cluster.add_endpoint(1);
        assert!(recv(
            &a,
            ProcessId::new(0, 1),
            Tag(1),
            64,
            Duration::from_millis(50)
        )
        .is_none());
    }

    #[test]
    fn wildcard_receive_and_recv_into() {
        let cluster = HostCluster::new(
            0,
            ProtocolConfig::paper_intranode().with_pushed_buffer(64 * 1024),
        );
        let a = cluster.add_endpoint(0);
        let b = cluster.add_endpoint(1);
        let data = payload(4096);
        let wild = b
            .post_recv(ANY_SOURCE, ANY_TAG, 4096, TruncationPolicy::Error)
            .unwrap();
        send(&a, b.id(), Tag(77), data.clone());
        let done = wait(&b, OpId::Recv(wild), T).expect("wildcard completed");
        assert_eq!(done.peer, a.id());
        assert_eq!(done.tag, Tag(77));
        assert_eq!(done.data.unwrap(), data);

        let op = b
            .post_recv_into(
                a.id(),
                Tag(78),
                RecvBuf::with_capacity(4096),
                TruncationPolicy::Error,
            )
            .unwrap();
        send(&a, b.id(), Tag(78), data.clone());
        let done = wait(&b, OpId::Recv(op), T).expect("recv_into completed");
        assert_eq!(done.buf.unwrap().as_slice(), &data[..]);
    }

    #[test]
    fn cancelled_receive_reports_cancellation() {
        let cluster = HostCluster::new(0, ProtocolConfig::paper_intranode());
        let a = cluster.add_endpoint(0);
        let b = cluster.add_endpoint(1);
        let op = b
            .post_recv(a.id(), Tag(1), 64, TruncationPolicy::Error)
            .unwrap();
        assert!(b.cancel(op));
        let done = wait(&b, OpId::Recv(op), T).unwrap();
        assert_eq!(done.status, Status::Cancelled);
        assert!(!b.cancel(op), "stale handle must not cancel again");
    }

    #[test]
    #[should_panic(expected = "added twice")]
    fn duplicate_endpoint_rejected() {
        let cluster = HostCluster::new(0, ProtocolConfig::paper_intranode());
        let _a = cluster.add_endpoint(0);
        let _b = cluster.add_endpoint(0);
    }
}
