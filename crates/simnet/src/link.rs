//! Fast Ethernet link model: serialisation, framing overhead, propagation.

use serde::{Deserialize, Serialize};
use simsmp::time::{SimDuration, SimTime};

/// Ethernet framing constants (bytes added around every payload on the wire).
pub mod framing {
    /// Preamble + start-of-frame delimiter.
    pub const PREAMBLE: usize = 8;
    /// Destination MAC, source MAC, EtherType.
    pub const HEADER: usize = 14;
    /// Frame check sequence.
    pub const FCS: usize = 4;
    /// Inter-frame gap (expressed in byte times).
    pub const IFG: usize = 12;
    /// Minimum Ethernet payload.
    pub const MIN_PAYLOAD: usize = 46;
    /// Maximum Ethernet payload (the MTU).
    pub const MTU: usize = 1500;
    /// Total per-frame overhead in byte times.
    pub const PER_FRAME_OVERHEAD: usize = PREAMBLE + HEADER + FCS + IFG;
}

/// Configuration of one link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Link speed in megabits per second (100 for Fast Ethernet).
    pub mbit_per_s: u64,
    /// One-way propagation delay (cable + PHY).
    pub propagation: SimDuration,
    /// `true` for full duplex operation: the two directions do not contend.
    pub full_duplex: bool,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            mbit_per_s: 100,
            propagation: SimDuration::from_nanos(500),
            full_duplex: true,
        }
    }
}

/// A point-to-point Ethernet segment (node ↔ switch or node ↔ node).
///
/// The link serialises frames: a frame starts transmitting when the previous
/// frame in the same direction has left the wire.  Each direction keeps its
/// own busy time when the link is full duplex.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EthernetLink {
    config: LinkConfig,
    busy_until: [SimTime; 2],
    frames_carried: u64,
    bytes_carried: u64,
}

impl EthernetLink {
    /// Creates a link with the given configuration.
    pub fn new(config: LinkConfig) -> Self {
        EthernetLink {
            config,
            busy_until: [SimTime::ZERO; 2],
            frames_carried: 0,
            bytes_carried: 0,
        }
    }

    /// A 100 Mbit/s full-duplex Fast Ethernet link (the paper's network).
    pub fn fast_ethernet() -> Self {
        Self::new(LinkConfig::default())
    }

    /// The link configuration.
    pub fn config(&self) -> LinkConfig {
        self.config
    }

    /// Time to serialise a frame carrying `payload` bytes onto the wire,
    /// including Ethernet framing overhead and minimum-frame padding.
    pub fn serialization_time(&self, payload: usize) -> SimDuration {
        let padded = payload.max(framing::MIN_PAYLOAD);
        let wire_bytes = padded + framing::PER_FRAME_OVERHEAD;
        // bits / (Mbit/s) = microseconds; keep nanosecond precision.
        let ns = (wire_bytes as u64 * 8 * 1_000) / self.config.mbit_per_s;
        SimDuration::from_nanos(ns)
    }

    /// Transmits a frame of `payload` bytes in `direction` (0 or 1), queued
    /// behind earlier frames in the same direction, starting no earlier than
    /// `now`.  Returns the time the last bit arrives at the far end.
    pub fn transmit(&mut self, now: SimTime, direction: usize, payload: usize) -> SimTime {
        let dir = if self.config.full_duplex {
            direction % 2
        } else {
            0
        };
        let start = now.max(self.busy_until[dir]);
        let done_sending = start + self.serialization_time(payload);
        self.busy_until[dir] = done_sending;
        self.frames_carried += 1;
        self.bytes_carried += payload as u64;
        done_sending + self.config.propagation
    }

    /// Number of frames carried so far.
    pub fn frames_carried(&self) -> u64 {
        self.frames_carried
    }

    /// Payload bytes carried so far.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// The theoretical payload bandwidth for back-to-back frames of
    /// `payload` bytes, in MB/s.  Useful for sanity-checking measured
    /// bandwidth against the 12.5 MB/s wire limit.
    pub fn effective_bandwidth_mb_s(&self, payload: usize) -> f64 {
        let t = self.serialization_time(payload);
        payload as f64 / t.as_secs_f64() / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_time_matches_wire_math() {
        let link = EthernetLink::fast_ethernet();
        // A 1460-byte payload: (1460 + 38) * 8 bits at 100 Mbit/s = 119.84 us.
        let t = link.serialization_time(1460);
        assert_eq!(t.as_nanos(), (1460 + 38) * 8 * 10);
        // Tiny payloads are padded to the 46-byte minimum.
        assert_eq!(link.serialization_time(4), link.serialization_time(46));
    }

    #[test]
    fn frames_in_same_direction_serialise() {
        let mut link = EthernetLink::fast_ethernet();
        let a = link.transmit(SimTime(0), 0, 1460);
        let b = link.transmit(SimTime(0), 0, 1460);
        assert!(b > a);
        let gap = b.since(a);
        assert_eq!(gap, link.serialization_time(1460));
    }

    #[test]
    fn full_duplex_directions_do_not_contend() {
        let mut link = EthernetLink::fast_ethernet();
        let a = link.transmit(SimTime(0), 0, 1460);
        let b = link.transmit(SimTime(0), 1, 1460);
        assert_eq!(a, b, "opposite directions run concurrently");
        assert_eq!(link.frames_carried(), 2);
    }

    #[test]
    fn half_duplex_serialises_both_directions() {
        let mut link = EthernetLink::new(LinkConfig {
            full_duplex: false,
            ..LinkConfig::default()
        });
        let a = link.transmit(SimTime(0), 0, 1460);
        let b = link.transmit(SimTime(0), 1, 1460);
        assert!(b > a);
    }

    #[test]
    fn effective_bandwidth_near_wire_limit_for_large_frames() {
        let link = EthernetLink::fast_ethernet();
        let bw = link.effective_bandwidth_mb_s(1460);
        assert!(
            (11.5..12.5).contains(&bw),
            "large-frame bandwidth {bw:.2} MB/s should approach 12.5 MB/s"
        );
        // Small frames are dominated by overhead.
        assert!(link.effective_bandwidth_mb_s(4) < 1.0);
    }

    #[test]
    fn idle_link_transmits_immediately() {
        let mut link = EthernetLink::fast_ethernet();
        let arrival = link.transmit(SimTime(1_000_000), 0, 100);
        let expected =
            SimTime(1_000_000) + link.serialization_time(100) + link.config().propagation;
        assert_eq!(arrival, expected);
    }
}
