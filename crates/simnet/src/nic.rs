//! NIC model: finite FIFO buffers, DMA costs, user-mappable registers and
//! interrupt generation (stage 1 and stage 3 of the communication model).

use serde::{Deserialize, Serialize};
use simsmp::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Cost and capacity parameters of one NIC (calibrated loosely to the DEC
/// 21140 "Tulip" controller on the D-Link 500TX card).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NicConfig {
    /// Capacity of the outgoing FIFO in bytes.
    pub tx_fifo_bytes: usize,
    /// Capacity of the incoming FIFO (the "designated buffer") in bytes.
    pub rx_fifo_bytes: usize,
    /// Cost of injecting a packet descriptor from **user space** through the
    /// mapped control registers (direct thread invocation, §4.3).
    pub user_inject_cost: SimDuration,
    /// Cost of injecting a packet through the kernel transmission thread
    /// (system call + driver).
    pub kernel_inject_cost: SimDuration,
    /// Per-packet DMA setup cost (descriptor fetch, ring update).
    pub dma_setup_cost: SimDuration,
    /// DMA transfer rate between host memory and the NIC, in ns per byte
    /// (PCI 33 MHz / 32-bit ≈ 133 MB/s peak, ~8 ns/byte sustained).
    pub dma_ns_per_byte: f64,
    /// Cost charged on the receive path for raising the interrupt and
    /// updating descriptors.
    pub rx_descriptor_cost: SimDuration,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            tx_fifo_bytes: 64 * 1024,
            rx_fifo_bytes: 64 * 1024,
            user_inject_cost: SimDuration::from_nanos(900),
            kernel_inject_cost: SimDuration::from_micros(3),
            dma_setup_cost: SimDuration::from_nanos(800),
            dma_ns_per_byte: 8.0,
            rx_descriptor_cost: SimDuration::from_micros(1),
        }
    }
}

/// Statistics of one NIC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NicStats {
    /// Frames accepted for transmission.
    pub tx_frames: u64,
    /// Payload bytes accepted for transmission.
    pub tx_bytes: u64,
    /// Frames received into the RX FIFO.
    pub rx_frames: u64,
    /// Payload bytes received into the RX FIFO.
    pub rx_bytes: u64,
    /// Frames dropped because the TX FIFO was full.
    pub tx_drops: u64,
    /// Frames dropped because the RX FIFO was full.
    pub rx_drops: u64,
    /// High-water mark of RX FIFO occupancy in bytes.
    pub rx_high_water: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct FifoEntry {
    bytes: usize,
}

/// One simulated network interface card.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Nic {
    config: NicConfig,
    tx_queue: VecDeque<FifoEntry>,
    tx_occupancy: usize,
    rx_queue: VecDeque<FifoEntry>,
    rx_occupancy: usize,
    /// Time at which the DMA engine finishes its current transfer.
    dma_busy_until: SimTime,
    stats: NicStats,
}

impl Nic {
    /// Creates a NIC with the given configuration.
    pub fn new(config: NicConfig) -> Self {
        Nic {
            config,
            tx_queue: VecDeque::new(),
            tx_occupancy: 0,
            rx_queue: VecDeque::new(),
            rx_occupancy: 0,
            dma_busy_until: SimTime::ZERO,
            stats: NicStats::default(),
        }
    }

    /// The NIC configuration.
    pub fn config(&self) -> NicConfig {
        self.config
    }

    /// Host-side cost of handing a `bytes`-byte frame to the NIC.
    /// `user_space` selects the mapped-register path (no system call).
    pub fn inject_cost(&self, bytes: usize, user_space: bool) -> SimDuration {
        let base = if user_space {
            self.config.user_inject_cost
        } else {
            self.config.kernel_inject_cost
        };
        base + self.dma_cost(bytes)
    }

    /// Cost of DMAing `bytes` bytes between host memory and the NIC.
    pub fn dma_cost(&self, bytes: usize) -> SimDuration {
        self.config.dma_setup_cost
            + SimDuration::from_nanos((bytes as f64 * self.config.dma_ns_per_byte).round() as u64)
    }

    /// Attempts to enqueue a frame of `bytes` payload bytes for transmission
    /// at time `now`.  Returns the time at which the frame is ready to start
    /// serialising on the wire (after DMA), or `None` if the TX FIFO is full.
    pub fn enqueue_tx(&mut self, now: SimTime, bytes: usize) -> Option<SimTime> {
        if self.tx_occupancy + bytes > self.config.tx_fifo_bytes {
            self.stats.tx_drops += 1;
            return None;
        }
        self.tx_queue.push_back(FifoEntry { bytes });
        self.tx_occupancy += bytes;
        self.stats.tx_frames += 1;
        self.stats.tx_bytes += bytes as u64;
        // The DMA engine copies descriptors/data serially.
        let start = now.max(self.dma_busy_until);
        let ready = start + self.dma_cost(bytes);
        self.dma_busy_until = ready;
        Some(ready)
    }

    /// Marks a previously enqueued TX frame as having left the wire, freeing
    /// its FIFO space.
    pub fn complete_tx(&mut self, bytes: usize) {
        if let Some(front) = self.tx_queue.pop_front() {
            debug_assert_eq!(front.bytes, bytes, "TX completions must be in FIFO order");
            self.tx_occupancy -= front.bytes;
        }
    }

    /// Attempts to store an arriving frame of `bytes` payload bytes in the RX
    /// FIFO at time `now`.  Returns the time at which the frame is visible to
    /// the host (after DMA into host memory and descriptor update), or `None`
    /// if the FIFO is full and the frame is dropped.
    pub fn enqueue_rx(&mut self, now: SimTime, bytes: usize) -> Option<SimTime> {
        if self.rx_occupancy + bytes > self.config.rx_fifo_bytes {
            self.stats.rx_drops += 1;
            return None;
        }
        self.rx_queue.push_back(FifoEntry { bytes });
        self.rx_occupancy += bytes;
        self.stats.rx_frames += 1;
        self.stats.rx_bytes += bytes as u64;
        self.stats.rx_high_water = self.stats.rx_high_water.max(self.rx_occupancy);
        let start = now.max(self.dma_busy_until);
        let visible = start + self.dma_cost(bytes) + self.config.rx_descriptor_cost;
        self.dma_busy_until = visible;
        Some(visible)
    }

    /// Releases the RX FIFO space of a frame after the reception handler has
    /// consumed it.
    pub fn complete_rx(&mut self, bytes: usize) {
        if let Some(front) = self.rx_queue.pop_front() {
            debug_assert_eq!(front.bytes, bytes, "RX completions must be in FIFO order");
            self.rx_occupancy -= front.bytes;
        }
    }

    /// Current occupancy of the RX FIFO in bytes.
    pub fn rx_occupancy(&self) -> usize {
        self.rx_occupancy
    }

    /// Current occupancy of the TX FIFO in bytes.
    pub fn tx_occupancy(&self) -> usize {
        self.tx_occupancy
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> NicStats {
        self.stats
    }
}

impl Default for Nic {
    fn default() -> Self {
        Nic::new(NicConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_injection_is_cheaper_than_kernel_injection() {
        let nic = Nic::default();
        assert!(nic.inject_cost(100, true) < nic.inject_cost(100, false));
    }

    #[test]
    fn dma_cost_grows_with_size() {
        let nic = Nic::default();
        assert!(nic.dma_cost(1460) > nic.dma_cost(64));
    }

    #[test]
    fn tx_fifo_accounting_and_overflow() {
        let mut nic = Nic::new(NicConfig {
            tx_fifo_bytes: 3000,
            ..NicConfig::default()
        });
        assert!(nic.enqueue_tx(SimTime(0), 1460).is_some());
        assert!(nic.enqueue_tx(SimTime(0), 1460).is_some());
        // Third frame does not fit.
        assert!(nic.enqueue_tx(SimTime(0), 1460).is_none());
        assert_eq!(nic.stats().tx_drops, 1);
        nic.complete_tx(1460);
        assert!(nic.enqueue_tx(SimTime(0), 1460).is_some());
        assert_eq!(nic.tx_occupancy(), 2920);
    }

    #[test]
    fn rx_fifo_overflow_drops_frames() {
        let mut nic = Nic::new(NicConfig {
            rx_fifo_bytes: 2000,
            ..NicConfig::default()
        });
        assert!(nic.enqueue_rx(SimTime(0), 1460).is_some());
        assert!(nic.enqueue_rx(SimTime(0), 1460).is_none());
        assert_eq!(nic.stats().rx_drops, 1);
        assert_eq!(nic.stats().rx_frames, 1);
        nic.complete_rx(1460);
        assert_eq!(nic.rx_occupancy(), 0);
    }

    #[test]
    fn dma_serialises_transfers() {
        let mut nic = Nic::default();
        let a = nic.enqueue_tx(SimTime(0), 1460).unwrap();
        let b = nic.enqueue_tx(SimTime(0), 1460).unwrap();
        assert!(b > a, "second DMA starts after the first finishes");
    }

    #[test]
    fn rx_high_water_tracked() {
        let mut nic = Nic::default();
        nic.enqueue_rx(SimTime(0), 1000).unwrap();
        nic.enqueue_rx(SimTime(0), 2000).unwrap();
        nic.complete_rx(1000);
        nic.enqueue_rx(SimTime(0), 100).unwrap();
        assert_eq!(nic.stats().rx_high_water, 3000);
    }
}
