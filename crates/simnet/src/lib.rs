//! # simnet — simulated Fast Ethernet substrate
//!
//! Models the network path the paper's prototype used: a D-Link 500TX Fast
//! Ethernet NIC (DEC 21140) in each node, connected by a 100 Mbit/s
//! full-duplex link through a store-and-forward switch.
//!
//! * [`link`] — wire serialisation and propagation at 100 Mbit/s, including
//!   Ethernet framing overhead (preamble, header, FCS, inter-frame gap).
//! * [`nic`] — the network interface card: finite outgoing/incoming FIFO
//!   buffers, DMA setup costs, a user-mappable register window enabling
//!   direct (user-space) injection, and interrupt generation.
//! * [`switch`] — store-and-forward switch latency and per-port queueing.
//! * [`loss`] — deterministic loss injection for failure testing.
//! * [`fault`] — seeded duplication / reorder / delay / partition models for
//!   the chaos harness.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fault;
pub mod link;
pub mod loss;
pub mod nic;
pub mod switch;

pub use fault::{
    derive_seed, DelayModel, DuplicateModel, FrameFate, LinkFaults, PartitionSchedule, ReorderModel,
};
pub use link::{EthernetLink, LinkConfig};
pub use loss::LossModel;
pub use nic::{Nic, NicConfig, NicStats};
pub use switch::{Switch, SwitchConfig};
