//! Seeded fault models beyond plain loss: duplication, reordering, delay
//! jitter, and partition schedules.
//!
//! Every model here is driven by its own deterministic [`StdRng`] stream, so
//! a fault plane built from one master seed replays the same decision
//! sequence run after run — the property the chaos harness's seed-replay
//! workflow depends on.  [`LossModel`](crate::loss::LossModel) stays the drop
//! decider; the models in this module answer the *other* questions a faulty
//! link poses: is this frame duplicated, is it held back past its successors,
//! how long does it take, and is the link partitioned right now.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Mixes `salt` into `master`, returning an independent derived seed.
///
/// Used to give every link (and every model on that link) its own RNG stream
/// from one master seed: streams must not correlate, and adding a link must
/// not shift the streams of existing links.  The finalizer is splitmix64's,
/// which is bijective and well dispersed.
pub fn derive_seed(master: u64, salt: u64) -> u64 {
    let mut z = master
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(salt.wrapping_mul(0xD6E8_FEB8_6659_FD93));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Decides whether a frame is delivered twice.
#[derive(Debug, Clone)]
pub struct DuplicateModel {
    p: f64,
    rng: StdRng,
}

impl DuplicateModel {
    /// Each frame is independently duplicated with probability `p`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        DuplicateModel {
            p,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// `true` if the next frame should arrive twice.
    pub fn should_duplicate(&mut self) -> bool {
        self.rng.gen::<f64>() < self.p
    }
}

/// Decides whether a frame is held back so later frames overtake it.
///
/// Reordering is modelled as extra delay: a held frame arrives up to
/// `max_hold_us` later than its nominal delivery time, so any frame sent in
/// that window passes it.  This produces *real* out-of-order arrival at the
/// receiver without the model having to know about other frames.
#[derive(Debug, Clone)]
pub struct ReorderModel {
    p: f64,
    max_hold_us: u64,
    rng: StdRng,
}

impl ReorderModel {
    /// Each frame is independently held with probability `p`, for a uniform
    /// extra delay in `[1, max_hold_us]` microseconds.
    pub fn new(p: f64, max_hold_us: u64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        ReorderModel {
            p,
            max_hold_us,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Extra hold time for the next frame, or `None` when it is not held.
    pub fn hold_us(&mut self) -> Option<u64> {
        // Draw both values unconditionally so the stream consumed per frame
        // is constant — hold decisions on one frame must not shift the
        // delays of later frames.
        let held = self.rng.gen::<f64>() < self.p;
        let hold = if self.max_hold_us == 0 {
            0
        } else {
            1 + self.rng.gen_range(0..self.max_hold_us)
        };
        (held && hold > 0).then_some(hold)
    }
}

/// Per-frame latency: a fixed base plus uniform jitter.
#[derive(Debug, Clone)]
pub struct DelayModel {
    base_us: u64,
    jitter_us: u64,
    rng: StdRng,
}

impl DelayModel {
    /// Frames take `base_us` plus a uniform draw from `[0, jitter_us]`
    /// microseconds.
    pub fn new(base_us: u64, jitter_us: u64, seed: u64) -> Self {
        DelayModel {
            base_us,
            jitter_us,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The wire latency of the next frame in microseconds.
    pub fn delay_us(&mut self) -> u64 {
        if self.jitter_us == 0 {
            return self.base_us;
        }
        self.base_us + self.rng.gen_range(0..self.jitter_us + 1)
    }
}

/// A seeded schedule of partition-and-heal windows for one node pair.
///
/// The schedule alternates healthy gaps and blocked windows, both drawn
/// uniformly from the configured ranges, generated lazily as time advances.
/// [`PartitionSchedule::blocked`] must be queried with a monotonically
/// non-decreasing clock (the chaos router's virtual time satisfies this).
#[derive(Debug, Clone)]
pub struct PartitionSchedule {
    rng: StdRng,
    gap_us: (u64, u64),
    len_us: (u64, u64),
    /// The current or next blocked window `[start, end)`.
    window: (u64, u64),
}

impl PartitionSchedule {
    /// A schedule whose healthy gaps last `gap_us.0..=gap_us.1` and whose
    /// blocked windows last `len_us.0..=len_us.1` microseconds.
    pub fn new(seed: u64, gap_us: (u64, u64), len_us: (u64, u64)) -> Self {
        assert!(
            gap_us.0 <= gap_us.1 && len_us.0 <= len_us.1,
            "range inverted"
        );
        assert!(
            gap_us.1 > 0,
            "a zero-length gap would block the link forever"
        );
        let mut schedule = PartitionSchedule {
            rng: StdRng::seed_from_u64(seed),
            gap_us,
            len_us,
            window: (0, 0),
        };
        schedule.window = schedule.next_window(0);
        schedule
    }

    fn draw(&mut self, (lo, hi): (u64, u64)) -> u64 {
        if lo == hi {
            lo
        } else {
            self.rng.gen_range(lo..hi + 1)
        }
    }

    fn next_window(&mut self, from: u64) -> (u64, u64) {
        let start = from + self.draw(self.gap_us).max(1);
        let end = start + self.draw(self.len_us);
        (start, end)
    }

    /// `true` while the pair is partitioned at virtual time `now_us`.
    pub fn blocked(&mut self, now_us: u64) -> bool {
        loop {
            let (start, end) = self.window;
            if now_us < start {
                return false;
            }
            if now_us < end {
                return true;
            }
            self.window = self.next_window(end);
        }
    }
}

/// What happens to one frame crossing a faulty link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFate {
    /// The frame is lost.
    Dropped,
    /// The frame arrives after `delay_us`; when `duplicate_delay_us` is set,
    /// a second copy arrives after that many microseconds as well.
    Deliver {
        /// Wire latency of the (first) copy, in microseconds.
        delay_us: u64,
        /// Latency of the duplicate copy, if the frame is duplicated.
        duplicate_delay_us: Option<u64>,
    },
}

/// The composite fault plane of one directed link: loss, duplication,
/// reordering, and latency jitter, each on its own derived RNG stream.
#[derive(Debug, Clone)]
pub struct LinkFaults {
    /// Drop decider (reuses the existing loss models).
    pub loss: crate::loss::LossModel,
    /// Duplication decider.
    pub duplicate: DuplicateModel,
    /// Reorder (hold-back) decider.
    pub reorder: ReorderModel,
    /// Latency model.
    pub delay: DelayModel,
}

impl LinkFaults {
    /// Decides the fate of the next frame on this link.
    ///
    /// Every model is consulted on every frame — including dropped ones — so
    /// each model consumes a constant amount of its stream per frame and the
    /// decision sequence for frame *n* never depends on the fate of frames
    /// before it.
    pub fn decide(&mut self) -> FrameFate {
        let dropped = self.loss.should_drop();
        let delay = self.delay.delay_us() + self.reorder.hold_us().unwrap_or(0);
        let duplicate = self
            .duplicate
            .should_duplicate()
            .then(|| self.delay.delay_us() + self.reorder.hold_us().unwrap_or(0));
        if dropped {
            FrameFate::Dropped
        } else {
            FrameFate::Deliver {
                delay_us: delay,
                duplicate_delay_us: duplicate,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_disperses() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(42, 0));
    }

    #[test]
    fn duplicate_model_is_deterministic_and_calibrated() {
        let mut a = DuplicateModel::new(0.3, 9);
        let mut b = DuplicateModel::new(0.3, 9);
        let seq_a: Vec<bool> = (0..500).map(|_| a.should_duplicate()).collect();
        let seq_b: Vec<bool> = (0..500).map(|_| b.should_duplicate()).collect();
        assert_eq!(seq_a, seq_b);
        let dups = seq_a.iter().filter(|&&d| d).count();
        assert!(
            (90..220).contains(&dups),
            "duplicate count {dups} far from 30%"
        );
    }

    #[test]
    fn reorder_model_holds_within_bound() {
        let mut m = ReorderModel::new(0.5, 40, 3);
        let mut held = 0;
        for _ in 0..500 {
            if let Some(hold) = m.hold_us() {
                assert!((1..=40).contains(&hold));
                held += 1;
            }
        }
        assert!((150..350).contains(&held), "held {held} far from 50%");
    }

    #[test]
    fn delay_model_stays_in_range() {
        let mut m = DelayModel::new(30, 20, 5);
        for _ in 0..500 {
            let d = m.delay_us();
            assert!((30..=50).contains(&d));
        }
        let mut fixed = DelayModel::new(7, 0, 5);
        assert!((0..100).all(|_| fixed.delay_us() == 7));
    }

    #[test]
    fn partition_schedule_alternates_and_is_deterministic() {
        let build = || PartitionSchedule::new(11, (50, 100), (20, 60));
        let mut a = build();
        let mut b = build();
        let seq_a: Vec<bool> = (0..5000).map(|t| a.blocked(t)).collect();
        let seq_b: Vec<bool> = (0..5000).map(|t| b.blocked(t)).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|&x| x), "schedule never partitioned");
        assert!(seq_a.iter().any(|&x| !x), "schedule never healed");
        assert!(!seq_a[0], "time zero starts healthy (gap first)");
    }

    #[test]
    fn link_faults_consume_constant_stream_per_frame() {
        // Two identically seeded planes must agree on frame n even though
        // one of them saw different *fates* earlier — guaranteed by the
        // constant-consumption rule in `decide`.
        let build = || LinkFaults {
            loss: crate::loss::LossModel::bernoulli(0.3, 1),
            duplicate: DuplicateModel::new(0.3, 2),
            reorder: ReorderModel::new(0.3, 50, 3),
            delay: DelayModel::new(30, 10, 4),
        };
        let mut a = build();
        let mut b = build();
        let fates_a: Vec<FrameFate> = (0..200).map(|_| a.decide()).collect();
        let fates_b: Vec<FrameFate> = (0..200).map(|_| b.decide()).collect();
        assert_eq!(fates_a, fates_b);
        assert!(fates_a.contains(&FrameFate::Dropped));
        assert!(fates_a.iter().any(|f| matches!(
            f,
            FrameFate::Deliver {
                duplicate_delay_us: Some(_),
                ..
            }
        )));
    }
}
