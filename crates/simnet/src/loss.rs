//! Loss injection for failure testing of the go-back-N recovery path.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Decides whether a frame is lost on the wire.
///
/// Buffer-overflow drops are modelled by the NIC and the pushed buffer; this
/// model adds *wire* losses (bit errors, congestion elsewhere) so tests can
/// exercise the reliability layer under adverse conditions.
#[derive(Debug, Clone, Default)]
pub enum LossModel {
    /// No frames are lost.
    #[default]
    None,
    /// Each frame is independently lost with probability `p`, driven by a
    /// deterministic seeded RNG.
    Bernoulli {
        /// Loss probability in `[0, 1]`.
        p: f64,
        /// The RNG state.
        rng: StdRng,
    },
    /// Every `n`-th frame is lost (deterministic, convenient for tests).
    EveryNth {
        /// Lose one frame out of every `n`.
        n: u64,
        /// Frames observed so far.
        count: u64,
    },
    /// Lose exactly the frames whose index (0-based) is in the list.
    Explicit {
        /// Indices of frames to lose.
        indices: Vec<u64>,
        /// Frames observed so far.
        count: u64,
    },
}

impl LossModel {
    /// A lossless wire.
    pub fn none() -> Self {
        LossModel::None
    }

    /// Independent losses with probability `p`, seeded deterministically.
    pub fn bernoulli(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        LossModel::Bernoulli {
            p,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Lose every `n`-th frame.
    pub fn every_nth(n: u64) -> Self {
        assert!(n > 0);
        LossModel::EveryNth { n, count: 0 }
    }

    /// Lose exactly the frames at the given indices.
    pub fn explicit(indices: Vec<u64>) -> Self {
        LossModel::Explicit { indices, count: 0 }
    }

    /// Returns `true` if the next frame should be dropped.
    pub fn should_drop(&mut self) -> bool {
        match self {
            LossModel::None => false,
            LossModel::Bernoulli { p, rng } => rng.gen::<f64>() < *p,
            LossModel::EveryNth { n, count } => {
                *count += 1;
                *count % *n == 0
            }
            LossModel::Explicit { indices, count } => {
                let idx = *count;
                *count += 1;
                indices.contains(&idx)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_drops() {
        let mut m = LossModel::none();
        assert!((0..1000).all(|_| !m.should_drop()));
    }

    #[test]
    fn every_nth_is_periodic() {
        let mut m = LossModel::every_nth(3);
        let pattern: Vec<bool> = (0..9).map(|_| m.should_drop()).collect();
        assert_eq!(
            pattern,
            vec![false, false, true, false, false, true, false, false, true]
        );
    }

    #[test]
    fn explicit_drops_exact_indices() {
        let mut m = LossModel::explicit(vec![0, 4]);
        let pattern: Vec<bool> = (0..6).map(|_| m.should_drop()).collect();
        assert_eq!(pattern, vec![true, false, false, false, true, false]);
    }

    #[test]
    fn bernoulli_is_deterministic_per_seed_and_roughly_calibrated() {
        let mut a = LossModel::bernoulli(0.2, 42);
        let mut b = LossModel::bernoulli(0.2, 42);
        let seq_a: Vec<bool> = (0..500).map(|_| a.should_drop()).collect();
        let seq_b: Vec<bool> = (0..500).map(|_| b.should_drop()).collect();
        assert_eq!(seq_a, seq_b);
        let drops = seq_a.iter().filter(|&&d| d).count();
        assert!(
            (50..150).contains(&drops),
            "drop count {drops} far from 20%"
        );
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_rejected() {
        let _ = LossModel::bernoulli(1.5, 0);
    }
}
