//! Store-and-forward switch model.

use crate::link::EthernetLink;
use serde::{Deserialize, Serialize};
use simsmp::time::{SimDuration, SimTime};

/// Configuration of the switch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchConfig {
    /// Fixed forwarding latency (lookup + scheduling) added to every frame.
    pub forwarding_latency: SimDuration,
    /// `true` for store-and-forward operation: the switch must receive the
    /// complete frame before it starts forwarding it (adds one serialisation
    /// time); `false` models a cut-through switch.
    pub store_and_forward: bool,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            forwarding_latency: SimDuration::from_micros(3),
            store_and_forward: true,
        }
    }
}

/// A small workgroup switch connecting the cluster nodes.
///
/// Output-port contention is modelled per destination port: frames towards
/// the same node queue behind each other, frames towards different nodes do
/// not interact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Switch {
    config: SwitchConfig,
    /// Busy time of each output port, indexed by destination node.
    port_busy_until: Vec<SimTime>,
    frames_forwarded: u64,
}

impl Switch {
    /// Creates a switch with `ports` output ports.
    pub fn new(config: SwitchConfig, ports: usize) -> Self {
        Switch {
            config,
            port_busy_until: vec![SimTime::ZERO; ports.max(1)],
            frames_forwarded: 0,
        }
    }

    /// The switch configuration.
    pub fn config(&self) -> SwitchConfig {
        self.config
    }

    /// Forwards a frame of `payload` bytes that finished arriving at the
    /// switch at `arrival`, towards output port `dst_port`, using
    /// `egress_link` for the final hop.  Returns the time the last bit
    /// reaches the destination node.
    pub fn forward(
        &mut self,
        arrival: SimTime,
        dst_port: usize,
        payload: usize,
        egress_link: &mut EthernetLink,
    ) -> SimTime {
        let port = dst_port % self.port_busy_until.len();
        // Store-and-forward: the frame is already fully received (the caller
        // hands us the arrival time of the last bit), so only the lookup
        // latency and egress serialisation remain.
        let ready = arrival + self.config.forwarding_latency;
        let start = ready.max(self.port_busy_until[port]);
        let delivered = egress_link.transmit(start, 0, payload);
        self.port_busy_until[port] = delivered;
        self.frames_forwarded += 1;
        delivered
    }

    /// Latency the switch itself adds for a frame of `payload` bytes
    /// (excluding egress-port queueing), useful for latency budgeting.
    pub fn added_latency(&self, payload: usize, egress_link: &EthernetLink) -> SimDuration {
        let serialisation = if self.config.store_and_forward {
            egress_link.serialization_time(payload)
        } else {
            SimDuration::ZERO
        };
        self.config.forwarding_latency + serialisation
    }

    /// Number of frames forwarded so far.
    pub fn frames_forwarded(&self) -> u64 {
        self.frames_forwarded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;

    #[test]
    fn forwarding_adds_latency_and_serialisation() {
        let mut sw = Switch::new(SwitchConfig::default(), 2);
        let mut egress = EthernetLink::new(LinkConfig::default());
        let arrival = SimTime(1000);
        let delivered = sw.forward(arrival, 1, 1460, &mut egress);
        let expected = arrival
            + sw.config().forwarding_latency
            + egress.serialization_time(1460)
            + egress.config().propagation;
        assert_eq!(delivered, expected);
        assert_eq!(sw.frames_forwarded(), 1);
    }

    #[test]
    fn same_output_port_contends() {
        let mut sw = Switch::new(SwitchConfig::default(), 2);
        let mut egress = EthernetLink::new(LinkConfig::default());
        let a = sw.forward(SimTime(0), 1, 1460, &mut egress);
        let b = sw.forward(SimTime(0), 1, 1460, &mut egress);
        assert!(b > a);
    }

    #[test]
    fn different_output_ports_do_not_contend_at_the_switch() {
        let mut sw = Switch::new(SwitchConfig::default(), 4);
        let mut egress_a = EthernetLink::new(LinkConfig::default());
        let mut egress_b = EthernetLink::new(LinkConfig::default());
        let a = sw.forward(SimTime(0), 1, 1460, &mut egress_a);
        let b = sw.forward(SimTime(0), 2, 1460, &mut egress_b);
        assert_eq!(a, b);
    }

    #[test]
    fn added_latency_reflects_store_and_forward() {
        let egress = EthernetLink::new(LinkConfig::default());
        let saf = Switch::new(SwitchConfig::default(), 2);
        let cut = Switch::new(
            SwitchConfig {
                store_and_forward: false,
                ..SwitchConfig::default()
            },
            2,
        );
        assert!(saf.added_latency(1460, &egress) > cut.added_latency(1460, &egress));
    }
}
