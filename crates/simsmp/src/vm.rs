//! Virtual memory: per-process page tables with deterministic
//! virtual→physical mappings, page pinning, and translation cost accounting.
//!
//! The cross-space zero buffer (§4.2) needs the physical scatter list of a
//! virtually contiguous buffer; this module supplies it.  Physical frames are
//! assigned on first touch by a deterministic hash of `(process, virtual
//! page)`, which scatters them like a real allocator would without requiring
//! a global frame allocator.

use crate::config::HwConfig;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One physically contiguous extent of a translated buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhysExtent {
    /// Starting physical address.
    pub phys_addr: u64,
    /// Length in bytes.
    pub len: usize,
}

/// Statistics of one page table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageTableStats {
    /// Number of translation requests served.
    pub translations: u64,
    /// Total pages walked.
    pub pages_walked: u64,
    /// Pages currently pinned.
    pub pinned_pages: u64,
}

/// The page table of one simulated process.
#[derive(Debug, Clone)]
pub struct PageTable {
    process_seed: u64,
    page_size: usize,
    /// Virtual page number → physical frame number, populated on first touch.
    mappings: HashMap<u64, u64>,
    pinned: HashMap<u64, bool>,
    stats: PageTableStats,
}

impl PageTable {
    /// Creates the page table for a process.  `process_seed` makes different
    /// processes receive different (but deterministic) physical layouts.
    pub fn new(process_seed: u64, page_size: usize) -> Self {
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        PageTable {
            process_seed,
            page_size,
            mappings: HashMap::new(),
            pinned: HashMap::new(),
            stats: PageTableStats::default(),
        }
    }

    /// The page size of this address space.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    fn frame_for(&mut self, vpn: u64) -> u64 {
        let seed = self.process_seed;
        *self.mappings.entry(vpn).or_insert_with(|| {
            // SplitMix64-style deterministic scatter.
            let mut x = vpn
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(seed.wrapping_mul(0xBF58_476D_1CE4_E5B9));
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            // 64 K physical frames (256 MB of RAM at 4 KiB pages), as on the
            // paper's machines.
            x % 65_536
        })
    }

    /// Translates the `len` bytes starting at virtual address `virt` into a
    /// physical scatter list.  Adjacent pages that happen to map to adjacent
    /// frames are merged into a single extent.
    pub fn translate(&mut self, virt: u64, len: usize) -> Vec<PhysExtent> {
        self.stats.translations += 1;
        if len == 0 {
            return Vec::new();
        }
        let page = self.page_size as u64;
        let mut extents: Vec<PhysExtent> = Vec::new();
        let mut addr = virt;
        let mut remaining = len;
        while remaining > 0 {
            let vpn = addr / page;
            let offset = addr % page;
            let in_page = ((page - offset) as usize).min(remaining);
            let frame = self.frame_for(vpn);
            self.stats.pages_walked += 1;
            let phys = frame * page + offset;
            if let Some(last) = extents.last_mut() {
                if last.phys_addr + last.len as u64 == phys {
                    last.len += in_page;
                    addr += in_page as u64;
                    remaining -= in_page;
                    continue;
                }
            }
            extents.push(PhysExtent {
                phys_addr: phys,
                len: in_page,
            });
            addr += in_page as u64;
            remaining -= in_page;
        }
        extents
    }

    /// The cost of translating a `len`-byte buffer under `hw`'s cost model.
    pub fn translation_cost(&self, hw: &HwConfig, len: usize) -> SimDuration {
        hw.translation_cost(len)
    }

    /// Pins the pages covering `[virt, virt+len)` (e.g. the pushed buffer or
    /// a communication endpoint), preventing them from being "paged out" and
    /// counting towards the pinned-memory footprint.
    pub fn pin(&mut self, virt: u64, len: usize) {
        let page = self.page_size as u64;
        if len == 0 {
            return;
        }
        let first = virt / page;
        let last = (virt + len as u64 - 1) / page;
        for vpn in first..=last {
            let newly = self.pinned.insert(vpn, true).is_none();
            if newly {
                self.stats.pinned_pages += 1;
            }
        }
    }

    /// Unpins the pages covering `[virt, virt+len)`.
    pub fn unpin(&mut self, virt: u64, len: usize) {
        let page = self.page_size as u64;
        if len == 0 {
            return;
        }
        let first = virt / page;
        let last = (virt + len as u64 - 1) / page;
        for vpn in first..=last {
            if self.pinned.remove(&vpn).is_some() {
                self.stats.pinned_pages -= 1;
            }
        }
    }

    /// `true` if the page containing `virt` is pinned.
    pub fn is_pinned(&self, virt: u64) -> bool {
        self.pinned.contains_key(&(virt / self.page_size as u64))
    }

    /// Bytes of pinned memory (whole pages).
    pub fn pinned_bytes(&self) -> usize {
        self.pinned.len() * self.page_size
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> PageTableStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translation_covers_exactly_the_requested_bytes() {
        let mut pt = PageTable::new(7, 4096);
        for (virt, len) in [(0u64, 1usize), (100, 4096), (4095, 2), (0x1_2345, 40_000)] {
            let extents = pt.translate(virt, len);
            let total: usize = extents.iter().map(|e| e.len).sum();
            assert_eq!(total, len, "virt={virt:#x} len={len}");
        }
        assert!(pt.translate(0, 0).is_empty());
    }

    #[test]
    fn translation_is_deterministic_and_stable() {
        let mut a = PageTable::new(42, 4096);
        let mut b = PageTable::new(42, 4096);
        assert_eq!(a.translate(0x8000, 20_000), b.translate(0x8000, 20_000));
        // Repeated translation of the same range returns the same frames.
        let first = a.translate(0x8000, 20_000);
        let second = a.translate(0x8000, 20_000);
        assert_eq!(first, second);
    }

    #[test]
    fn different_processes_get_different_layouts() {
        let mut a = PageTable::new(1, 4096);
        let mut b = PageTable::new(2, 4096);
        assert_ne!(a.translate(0x8000, 20_000), b.translate(0x8000, 20_000));
    }

    #[test]
    fn physical_pages_are_scattered() {
        // A multi-page buffer should not be one contiguous physical extent
        // (that is the whole reason zero buffers are scatter lists).
        let mut pt = PageTable::new(3, 4096);
        let extents = pt.translate(0, 64 * 1024);
        assert!(extents.len() > 1, "expected a scattered layout");
    }

    #[test]
    fn offsets_within_page_are_preserved() {
        let mut pt = PageTable::new(9, 4096);
        let extents = pt.translate(4096 + 123, 10);
        assert_eq!(extents.len(), 1);
        assert_eq!(extents[0].phys_addr % 4096, 123);
        assert_eq!(extents[0].len, 10);
    }

    #[test]
    fn pin_and_unpin_accounting() {
        let mut pt = PageTable::new(5, 4096);
        pt.pin(4096, 8192); // pages 1 and 2
        assert_eq!(pt.stats().pinned_pages, 2);
        assert_eq!(pt.pinned_bytes(), 8192);
        assert!(pt.is_pinned(5000));
        assert!(!pt.is_pinned(0));
        // Overlapping pin does not double count.
        pt.pin(4096, 4096);
        assert_eq!(pt.stats().pinned_pages, 2);
        pt.unpin(4096, 8192);
        assert_eq!(pt.stats().pinned_pages, 0);
        assert!(!pt.is_pinned(5000));
    }

    #[test]
    fn stats_track_walks() {
        let mut pt = PageTable::new(5, 4096);
        pt.translate(0, 4096 * 3);
        let s = pt.stats();
        assert_eq!(s.translations, 1);
        assert_eq!(s.pages_walked, 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn page_size_must_be_power_of_two() {
        let _ = PageTable::new(0, 3000);
    }
}
