//! # simsmp — a discrete-event simulator for commodity SMP cluster nodes
//!
//! The Push-Pull Messaging paper was evaluated on two quad Pentium Pro SMP
//! machines running Linux 2.1.90.  This crate rebuilds that substrate as a
//! deterministic discrete-event simulation:
//!
//! * a nanosecond-resolution virtual clock and event engine ([`engine`]),
//! * per-processor execution state with load tracking ([`cpu`]),
//! * a memory-system cost model (copy bandwidth, cache effects) ([`memory`]),
//! * per-process page tables with virtual→physical translation costs
//!   ([`vm`]),
//! * interrupt delivery — asymmetric, symmetric (least-loaded arbitration)
//!   or polling ([`interrupt`]),
//! * SMP nodes tying processors, memory and kernel state together
//!   ([`node`]),
//! * measurement helpers that reproduce the paper's trimmed-mean methodology
//!   ([`stats`]).
//!
//! All costs come from a [`HwConfig`]; the [`HwConfig::pentium_pro_1999`]
//! preset is calibrated against the component costs the paper reports.  The
//! simulation is fully deterministic: all randomness flows from a seeded RNG.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod cpu;
pub mod engine;
pub mod interrupt;
pub mod memory;
pub mod node;
pub mod stats;
pub mod time;
pub mod vm;

pub use config::HwConfig;
pub use cpu::{Processor, ProcessorId};
pub use engine::{Engine, EventId};
pub use interrupt::{InterruptController, InterruptMode};
pub use memory::MemorySystem;
pub use node::SmpNode;
pub use stats::{BandwidthSample, LatencyStats};
pub use time::{SimDuration, SimTime};
pub use vm::{PageTable, PhysExtent};
