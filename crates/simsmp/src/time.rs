//! Simulated time: a nanosecond-resolution virtual clock.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A duration of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs a duration from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Constructs a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Constructs a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs a duration from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// The duration in nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration in (fractional) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by an integer factor.
    #[inline]
    pub fn times(self, factor: u64) -> SimDuration {
        SimDuration(self.0 * factor)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// An instant of simulated time, in nanoseconds since the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since the start of the run.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (fractional) since the start of the run.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self` (a causality bug).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            earlier <= self,
            "time went backwards: {earlier:?} > {self:?}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}us", self.as_micros_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_conversions() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert!((SimDuration::from_micros(1500).as_millis_f64() - 1.5).abs() < 1e-9);
        assert!((SimDuration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let a = SimDuration::from_micros(10);
        let b = SimDuration::from_micros(4);
        assert_eq!((a + b).as_nanos(), 14_000);
        assert_eq!((a - b).as_nanos(), 6_000);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(a.times(3).as_nanos(), 30_000);

        let t = SimTime::ZERO + a;
        assert_eq!(t.as_nanos(), 10_000);
        assert_eq!(t.since(SimTime::ZERO), a);
        assert_eq!(t.max(SimTime(5)), t);
        assert_eq!(SimTime(5).max(t), t);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration(500).to_string(), "500ns");
        assert_eq!(SimDuration::from_micros(34).to_string(), "34.000us");
        assert_eq!(SimDuration::from_millis(150).to_string(), "150.000ms");
        assert_eq!(SimTime(34_900).to_string(), "t=34.900us");
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    #[cfg(debug_assertions)]
    fn since_panics_on_causality_violation() {
        let _ = SimTime(5).since(SimTime(10));
    }
}
