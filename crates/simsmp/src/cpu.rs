//! Processor model: each SMP node has a small number of processors whose
//! occupancy is tracked so work can be placed on the least-loaded one (§4.1).

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Identifies a processor within one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessorId(pub usize);

/// One processor of an SMP node.
///
/// The model is an availability timeline: a processor executes one piece of
/// work at a time; new work placed on it starts no earlier than the time its
/// previous work finishes.  Cumulative busy time is tracked for utilisation
/// statistics and least-loaded selection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Processor {
    id: ProcessorId,
    busy_until: SimTime,
    busy_total: SimDuration,
    tasks_run: u64,
}

impl Processor {
    /// Creates an idle processor.
    pub fn new(id: ProcessorId) -> Self {
        Processor {
            id,
            busy_until: SimTime::ZERO,
            busy_total: SimDuration::ZERO,
            tasks_run: 0,
        }
    }

    /// This processor's identifier.
    #[inline]
    pub fn id(&self) -> ProcessorId {
        self.id
    }

    /// The earliest time at which new work can start on this processor.
    #[inline]
    pub fn available_at(&self) -> SimTime {
        self.busy_until
    }

    /// Total busy time accumulated so far.
    #[inline]
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// Number of work items executed.
    #[inline]
    pub fn tasks_run(&self) -> u64 {
        self.tasks_run
    }

    /// `true` if the processor is idle at `now`.
    #[inline]
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Reserves the processor for `duration` of work requested at `now`.
    /// Returns the interval `(start, end)` during which the work runs: it
    /// starts at `max(now, available_at)`.
    pub fn run(&mut self, now: SimTime, duration: SimDuration) -> (SimTime, SimTime) {
        let start = now.max(self.busy_until);
        let end = start + duration;
        self.busy_until = end;
        self.busy_total += duration;
        self.tasks_run += 1;
        (start, end)
    }

    /// Utilisation over the window `[0, now]`, in `[0, 1]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now.as_nanos() == 0 {
            return 0.0;
        }
        (self.busy_total.as_nanos() as f64 / now.as_nanos() as f64).min(1.0)
    }
}

/// A bank of processors belonging to one SMP node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProcessorBank {
    processors: Vec<Processor>,
}

impl ProcessorBank {
    /// Creates `count` idle processors.
    pub fn new(count: usize) -> Self {
        assert!(count > 0, "a node needs at least one processor");
        ProcessorBank {
            processors: (0..count).map(|i| Processor::new(ProcessorId(i))).collect(),
        }
    }

    /// Number of processors in the bank.
    pub fn len(&self) -> usize {
        self.processors.len()
    }

    /// `true` if the bank is empty (never the case for a constructed bank).
    pub fn is_empty(&self) -> bool {
        self.processors.is_empty()
    }

    /// Immutable access to a processor.
    pub fn get(&self, id: ProcessorId) -> &Processor {
        &self.processors[id.0]
    }

    /// Mutable access to a processor.
    pub fn get_mut(&mut self, id: ProcessorId) -> &mut Processor {
        &mut self.processors[id.0]
    }

    /// The processor that becomes available the earliest (the "least loaded"
    /// processor used by the symmetric-interrupt pull phase, §4.1).  Ties are
    /// broken towards the lowest processor id, which keeps runs deterministic.
    pub fn least_loaded(&self) -> ProcessorId {
        self.processors
            .iter()
            .min_by_key(|p| (p.available_at(), p.id().0))
            .map(|p| p.id())
            .expect("bank is never empty")
    }

    /// The least-loaded processor *excluding* `exclude` (used when the pull
    /// phase must not run on the application's processor).
    pub fn least_loaded_excluding(&self, exclude: ProcessorId) -> ProcessorId {
        if self.processors.len() == 1 {
            return exclude;
        }
        self.processors
            .iter()
            .filter(|p| p.id() != exclude)
            .min_by_key(|p| (p.available_at(), p.id().0))
            .map(|p| p.id())
            .expect("more than one processor")
    }

    /// Runs `duration` of work on processor `id`, starting no earlier than
    /// `now`; returns the `(start, end)` interval.
    pub fn run_on(
        &mut self,
        id: ProcessorId,
        now: SimTime,
        duration: SimDuration,
    ) -> (SimTime, SimTime) {
        self.get_mut(id).run(now, duration)
    }

    /// Iterates over the processors.
    pub fn iter(&self) -> impl Iterator<Item = &Processor> {
        self.processors.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_serialises_work_on_one_processor() {
        let mut p = Processor::new(ProcessorId(0));
        let (s1, e1) = p.run(SimTime(100), SimDuration(50));
        assert_eq!((s1, e1), (SimTime(100), SimTime(150)));
        // Requested earlier than available: starts when free.
        let (s2, e2) = p.run(SimTime(120), SimDuration(30));
        assert_eq!((s2, e2), (SimTime(150), SimTime(180)));
        // Requested after an idle gap: starts immediately.
        let (s3, e3) = p.run(SimTime(500), SimDuration(10));
        assert_eq!((s3, e3), (SimTime(500), SimTime(510)));
        assert_eq!(p.busy_total(), SimDuration(90));
        assert_eq!(p.tasks_run(), 3);
    }

    #[test]
    fn utilization_bounded() {
        let mut p = Processor::new(ProcessorId(0));
        assert_eq!(p.utilization(SimTime::ZERO), 0.0);
        p.run(SimTime(0), SimDuration(500));
        assert!((p.utilization(SimTime(1000)) - 0.5).abs() < 1e-9);
        assert!(p.utilization(SimTime(100)) <= 1.0);
    }

    #[test]
    fn least_loaded_picks_earliest_available() {
        let mut bank = ProcessorBank::new(4);
        assert_eq!(bank.least_loaded(), ProcessorId(0));
        bank.run_on(ProcessorId(0), SimTime(0), SimDuration(100));
        bank.run_on(ProcessorId(1), SimTime(0), SimDuration(50));
        bank.run_on(ProcessorId(2), SimTime(0), SimDuration(10));
        // Processor 3 is idle and wins; after loading it, processor 2 wins.
        assert_eq!(bank.least_loaded(), ProcessorId(3));
        bank.run_on(ProcessorId(3), SimTime(0), SimDuration(200));
        assert_eq!(bank.least_loaded(), ProcessorId(2));
    }

    #[test]
    fn least_loaded_excluding_app_processor() {
        let mut bank = ProcessorBank::new(2);
        assert_eq!(bank.least_loaded_excluding(ProcessorId(0)), ProcessorId(1));
        bank.run_on(ProcessorId(1), SimTime(0), SimDuration(1_000_000));
        // Still excludes processor 0 even though it is idle.
        assert_eq!(bank.least_loaded_excluding(ProcessorId(0)), ProcessorId(1));
        let single = ProcessorBank::new(1);
        assert_eq!(
            single.least_loaded_excluding(ProcessorId(0)),
            ProcessorId(0)
        );
    }

    #[test]
    fn ties_break_deterministically() {
        let bank = ProcessorBank::new(4);
        assert_eq!(bank.least_loaded(), ProcessorId(0));
        assert_eq!(bank.least_loaded_excluding(ProcessorId(0)), ProcessorId(1));
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn empty_bank_rejected() {
        let _ = ProcessorBank::new(0);
    }
}
