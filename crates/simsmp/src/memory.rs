//! Memory-system cost model: copy costs with a coarse cache-locality effect
//! and bus contention accounting.

use crate::config::HwConfig;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Aggregate statistics of the memory system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MemoryStats {
    /// Total bytes moved by copies.
    pub bytes_copied: u64,
    /// Number of copy operations.
    pub copies: u64,
    /// Bytes copied at the cache-hot rate.
    pub bytes_hot: u64,
    /// Total simulated time spent copying (summed across processors).
    pub copy_time: SimDuration,
}

/// The shared memory system of one SMP node.
///
/// The model captures the two effects the paper leans on:
///
/// * copies cost a fixed setup plus a per-byte charge at either a cache-hot
///   or cache-cold rate (the push phase stays on the application's processor
///   precisely to exploit temporal locality, §4.1), and
/// * the memory bus is shared: concurrent copies serialise on the bus, which
///   is what limits intranode bandwidth to a fraction of the bus bandwidth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemorySystem {
    hw: HwConfig,
    /// Time until which the bus is already committed to earlier copies.
    bus_busy_until: SimTime,
    /// Buffers recently written by this node's processors, modelled coarsely
    /// as "the last buffer touched per process" being cache-hot if small.
    stats: MemoryStats,
}

impl MemorySystem {
    /// Creates the memory system of one node.
    pub fn new(hw: HwConfig) -> Self {
        MemorySystem {
            hw,
            bus_busy_until: SimTime::ZERO,
            stats: MemoryStats::default(),
        }
    }

    /// The hardware configuration used by this memory system.
    pub fn hw(&self) -> &HwConfig {
        &self.hw
    }

    /// Cost of one copy of `bytes` bytes, ignoring bus contention.
    pub fn copy_cost(&self, bytes: usize, cache_hot: bool) -> SimDuration {
        self.hw.memcpy_cost(bytes, cache_hot)
    }

    /// Performs a copy of `bytes` bytes starting no earlier than `now`,
    /// serialising with other copies on the shared bus.  Returns the
    /// `(start, end)` interval of the copy.
    pub fn copy(&mut self, now: SimTime, bytes: usize, cache_hot: bool) -> (SimTime, SimTime) {
        let cost = self.copy_cost(bytes, cache_hot);
        let start = now.max(self.bus_busy_until);
        let end = start + cost;
        self.bus_busy_until = end;
        self.stats.bytes_copied += bytes as u64;
        self.stats.copies += 1;
        if cache_hot && bytes <= self.hw.l2_cache_bytes {
            self.stats.bytes_hot += bytes as u64;
        }
        self.stats.copy_time += cost;
        (start, end)
    }

    /// Address-translation (zero-buffer construction) cost for `bytes` bytes.
    pub fn translation_cost(&self, bytes: usize) -> SimDuration {
        self.hw.translation_cost(bytes)
    }

    /// A snapshot of the memory statistics.
    pub fn stats(&self) -> MemoryStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copies_serialise_on_the_bus() {
        let mut mem = MemorySystem::new(HwConfig::pentium_pro_1999());
        let (s1, e1) = mem.copy(SimTime(0), 4000, false);
        assert_eq!(s1, SimTime(0));
        // A second copy requested while the first is in progress waits.
        let (s2, e2) = mem.copy(SimTime(100), 4000, false);
        assert_eq!(s2, e1);
        assert!(e2 > e1);
        // A copy requested long after the bus is free starts immediately.
        let late = e2 + SimDuration::from_micros(100);
        let (s3, _e3) = mem.copy(late, 16, false);
        assert_eq!(s3, late);
    }

    #[test]
    fn stats_accumulate() {
        let mut mem = MemorySystem::new(HwConfig::pentium_pro_1999());
        mem.copy(SimTime(0), 1000, false);
        mem.copy(SimTime(0), 2000, true);
        let s = mem.stats();
        assert_eq!(s.copies, 2);
        assert_eq!(s.bytes_copied, 3000);
        assert_eq!(s.bytes_hot, 2000);
        assert!(s.copy_time > SimDuration::ZERO);
    }

    #[test]
    fn intranode_peak_bandwidth_in_paper_range() {
        // One-copy transfers of 4000-byte messages should sustain a few
        // hundred MB/s, like the paper's 350.9 MB/s peak.
        let mem = MemorySystem::new(HwConfig::pentium_pro_1999());
        let per_copy = mem.copy_cost(4000, false);
        let bw_mb_s = 4000.0 / per_copy.as_secs_f64() / 1e6;
        assert!(
            (250.0..500.0).contains(&bw_mb_s),
            "one-copy bandwidth {bw_mb_s:.1} MB/s out of range"
        );
    }
}
