//! Hardware cost configuration for the simulated cluster.
//!
//! Every timing knob of the simulation lives here, so experiments can be run
//! both with the 1999 calibration the paper used and with arbitrary "what if"
//! hardware.  The [`HwConfig::pentium_pro_1999`] preset is calibrated so that
//! the component costs the paper states are honoured:
//!
//! * intranode single-trip latency of a 10-byte message ≈ 7.5 µs,
//! * intranode peak bandwidth ≈ 350 MB/s (≈ 66 % of the 533 MB/s bus),
//! * internode single-trip latency of a short message ≈ 34.9 µs over
//!   100 Mbit/s Fast Ethernet,
//! * address-translation overhead of ≈ 12–13 µs for long messages.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Cost model for one node (and the per-node side of the network path).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HwConfig {
    /// Number of processors per SMP node (the paper's machines have four).
    pub processors_per_node: usize,
    /// CPU clock frequency in MHz (Pentium Pro 200).
    pub cpu_mhz: u64,
    /// Cost of executing one NOP instruction (used by the compute phases of
    /// the early/late receiver test).
    pub nop_cost: SimDuration,

    // --- memory system -------------------------------------------------
    /// Fixed cost of starting a memory copy (function call, setup).
    pub memcpy_setup: SimDuration,
    /// Per-byte cost of a memory copy that misses the cache (main-memory
    /// bandwidth).  2.5 ns/byte ≈ 400 MB/s, about 75 % of the 533 MB/s bus.
    pub memcpy_ns_per_byte_cold: f64,
    /// Per-byte cost of a copy whose source is resident in the L2 cache.
    pub memcpy_ns_per_byte_hot: f64,
    /// Size of the unified L2 cache in bytes (512 KiB on the Pentium Pro
    /// machines); copies larger than this never run at the hot rate.
    pub l2_cache_bytes: usize,
    /// Page size used by the virtual memory system.
    pub page_size: usize,

    // --- kernel / protocol processing ----------------------------------
    /// Fixed cost of a user→kernel crossing (trap, argument checking).
    pub syscall_cost: SimDuration,
    /// Cost of acquiring and releasing a kernel lock protecting the shared
    /// queues (uncontended).
    pub lock_cost: SimDuration,
    /// Cost of enqueuing or dequeuing an entry on a kernel queue.
    pub queue_op_cost: SimDuration,
    /// Fixed cost of building a zero buffer (entering the kernel, walking
    /// the first page-table level).
    pub translation_base: SimDuration,
    /// Additional cost per page translated.
    pub translation_per_page: SimDuration,
    /// Protocol processing cost per packet at the sender (header build,
    /// state update).
    pub send_proc_cost: SimDuration,
    /// Protocol processing cost per packet at the receiver (header parse,
    /// matching, state update).
    pub recv_proc_cost: SimDuration,

    // --- interrupts -----------------------------------------------------
    /// Cost of taking an interrupt and dispatching the handler.
    pub interrupt_entry_cost: SimDuration,
    /// Extra arbitration cost of symmetric interrupt delivery (choosing the
    /// processor via the APIC arbitration scheme).
    pub symmetric_arbitration_cost: SimDuration,
    /// Polling interval when the reception handler is invoked by polling
    /// instead of interrupts.
    pub polling_interval: SimDuration,

    // --- scheduling -----------------------------------------------------
    /// Cost of waking a blocked user thread (schedule + context switch).
    pub wakeup_cost: SimDuration,
}

impl HwConfig {
    /// The calibration used for all paper-reproduction experiments: two quad
    /// Pentium Pro 200 MHz nodes as described in Section 5.
    pub fn pentium_pro_1999() -> Self {
        HwConfig {
            processors_per_node: 4,
            cpu_mhz: 200,
            nop_cost: SimDuration::from_nanos(5), // 1 cycle at 200 MHz
            memcpy_setup: SimDuration::from_nanos(300),
            memcpy_ns_per_byte_cold: 2.5, // ≈ 400 MB/s
            memcpy_ns_per_byte_hot: 1.6,  // ≈ 625 MB/s from L2
            l2_cache_bytes: 512 * 1024,
            page_size: 4096,
            syscall_cost: SimDuration::from_nanos(900),
            lock_cost: SimDuration::from_nanos(200),
            queue_op_cost: SimDuration::from_nanos(250),
            translation_base: SimDuration::from_nanos(1200),
            translation_per_page: SimDuration::from_nanos(1400),
            send_proc_cost: SimDuration::from_nanos(1200),
            recv_proc_cost: SimDuration::from_nanos(1500),
            interrupt_entry_cost: SimDuration::from_micros(4),
            symmetric_arbitration_cost: SimDuration::from_nanos(500),
            polling_interval: SimDuration::from_micros(5),
            wakeup_cost: SimDuration::from_micros(2),
        }
    }

    /// A loose model of a modern commodity server, used by the "what would
    /// this protocol look like today" examples.  Not used for any paper
    /// figure.
    pub fn modern_2020s() -> Self {
        HwConfig {
            processors_per_node: 16,
            cpu_mhz: 3000,
            nop_cost: SimDuration::from_nanos(1),
            memcpy_setup: SimDuration::from_nanos(40),
            memcpy_ns_per_byte_cold: 0.05, // ≈ 20 GB/s
            memcpy_ns_per_byte_hot: 0.02,
            l2_cache_bytes: 32 * 1024 * 1024,
            page_size: 4096,
            syscall_cost: SimDuration::from_nanos(400),
            lock_cost: SimDuration::from_nanos(30),
            queue_op_cost: SimDuration::from_nanos(25),
            translation_base: SimDuration::from_nanos(500),
            translation_per_page: SimDuration::from_nanos(100),
            send_proc_cost: SimDuration::from_nanos(150),
            recv_proc_cost: SimDuration::from_nanos(200),
            interrupt_entry_cost: SimDuration::from_micros(2),
            symmetric_arbitration_cost: SimDuration::from_nanos(100),
            polling_interval: SimDuration::from_micros(1),
            wakeup_cost: SimDuration::from_micros(1),
        }
    }

    /// Cost of executing `n` NOP instructions (the compute phases of the
    /// early/late receiver benchmark).
    pub fn compute_cost(&self, nops: u64) -> SimDuration {
        SimDuration(self.nop_cost.as_nanos() * nops)
    }

    /// Cost of copying `bytes` bytes, optionally assuming the source is hot
    /// in the L2 cache.
    pub fn memcpy_cost(&self, bytes: usize, cache_hot: bool) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let rate = if cache_hot && bytes <= self.l2_cache_bytes {
            self.memcpy_ns_per_byte_hot
        } else {
            self.memcpy_ns_per_byte_cold
        };
        self.memcpy_setup + SimDuration((bytes as f64 * rate).round() as u64)
    }

    /// Cost of building the zero buffer for a `bytes`-byte buffer: the
    /// linear-in-size address translation overhead of §4.3.
    pub fn translation_cost(&self, bytes: usize) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let pages = bytes.div_ceil(self.page_size) as u64;
        self.translation_base + self.translation_per_page.times(pages)
    }
}

impl Default for HwConfig {
    fn default() -> Self {
        HwConfig::pentium_pro_1999()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_matches_reported_component_costs() {
        let hw = HwConfig::pentium_pro_1999();
        // The paper reports an address translation overhead of "around
        // 12-13 us for long messages"; a long (tens of KiB) message should
        // land in that range, while a one-page message stays cheap enough
        // that the 7.5 us intranode latency is achievable.
        let long = hw.translation_cost(32 * 1024);
        assert!(
            (9.0..16.0).contains(&long.as_micros_f64()),
            "translation cost for 32 KiB = {long}"
        );
        assert!(hw.translation_cost(1400).as_micros_f64() < 4.0);
        // Intranode peak bandwidth should be in the hundreds of MB/s: one
        // copy of 4000 bytes must take roughly 10 us.
        let c = hw.memcpy_cost(4000, false);
        assert!(
            (8.0..14.0).contains(&c.as_micros_f64()),
            "4000-byte copy = {c}"
        );
        // 500 000 NOPs at 200 MHz take 2.5 ms.
        assert_eq!(hw.compute_cost(500_000), SimDuration::from_micros(2_500));
    }

    #[test]
    fn memcpy_cost_monotonic_in_size() {
        let hw = HwConfig::pentium_pro_1999();
        let mut last = SimDuration::ZERO;
        for bytes in [0usize, 1, 16, 100, 1000, 4096, 8192, 65536] {
            let c = hw.memcpy_cost(bytes, false);
            assert!(c >= last);
            last = c;
        }
    }

    #[test]
    fn hot_copies_are_cheaper_than_cold() {
        let hw = HwConfig::pentium_pro_1999();
        assert!(hw.memcpy_cost(4096, true) < hw.memcpy_cost(4096, false));
        // Buffers larger than L2 cannot be hot.
        let large = 1024 * 1024;
        assert_eq!(hw.memcpy_cost(large, true), hw.memcpy_cost(large, false));
    }

    #[test]
    fn translation_cost_grows_linearly_with_pages() {
        let hw = HwConfig::pentium_pro_1999();
        let one_page = hw.translation_cost(100);
        let two_pages = hw.translation_cost(4097);
        let four_pages = hw.translation_cost(4096 * 4);
        assert_eq!(
            two_pages - one_page,
            hw.translation_per_page,
            "one extra page adds exactly the per-page cost"
        );
        assert!(four_pages > two_pages);
        assert_eq!(hw.translation_cost(0), SimDuration::ZERO);
    }

    #[test]
    fn modern_preset_is_faster_across_the_board() {
        let old = HwConfig::pentium_pro_1999();
        let new = HwConfig::modern_2020s();
        assert!(new.memcpy_cost(8192, false) < old.memcpy_cost(8192, false));
        assert!(new.translation_cost(8192) < old.translation_cost(8192));
        assert!(new.compute_cost(1000) < old.compute_cost(1000));
    }
}
