//! An SMP node: processors, the shared memory system, per-process page
//! tables, and the interrupt controller.

use crate::config::HwConfig;
use crate::cpu::{ProcessorBank, ProcessorId};
use crate::interrupt::{Dispatch, InterruptController, InterruptMode};
use crate::memory::MemorySystem;
use crate::time::{SimDuration, SimTime};
use crate::vm::PageTable;
use std::collections::HashMap;

/// One simulated SMP machine.
#[derive(Debug)]
pub struct SmpNode {
    id: u32,
    hw: HwConfig,
    processors: ProcessorBank,
    memory: MemorySystem,
    interrupts: InterruptController,
    page_tables: HashMap<u32, PageTable>,
}

impl SmpNode {
    /// Creates a node with `hw.processors_per_node` processors and the given
    /// reception-handler invocation mode.
    pub fn new(id: u32, hw: HwConfig, interrupt_mode: InterruptMode) -> Self {
        let processors = ProcessorBank::new(hw.processors_per_node);
        let memory = MemorySystem::new(hw.clone());
        SmpNode {
            id,
            hw,
            processors,
            memory,
            interrupts: InterruptController::new(interrupt_mode),
            page_tables: HashMap::new(),
        }
    }

    /// The node identifier.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The hardware configuration of this node.
    pub fn hw(&self) -> &HwConfig {
        &self.hw
    }

    /// The processor bank.
    pub fn processors(&self) -> &ProcessorBank {
        &self.processors
    }

    /// Mutable access to the processor bank.
    pub fn processors_mut(&mut self) -> &mut ProcessorBank {
        &mut self.processors
    }

    /// The memory system.
    pub fn memory(&self) -> &MemorySystem {
        &self.memory
    }

    /// Mutable access to the memory system.
    pub fn memory_mut(&mut self) -> &mut MemorySystem {
        &mut self.memory
    }

    /// The interrupt controller.
    pub fn interrupts(&self) -> &InterruptController {
        &self.interrupts
    }

    /// The page table of local process `local_rank`, created on first use.
    pub fn page_table(&mut self, local_rank: u32) -> &mut PageTable {
        let page_size = self.hw.page_size;
        let id = self.id;
        self.page_tables
            .entry(local_rank)
            .or_insert_with(|| PageTable::new(((id as u64) << 32) | local_rank as u64, page_size))
    }

    /// The processor that application process `local_rank` runs on.  The
    /// paper binds each communicating process to its own processor; we use a
    /// simple round-robin assignment.
    pub fn app_processor(&self, local_rank: u32) -> ProcessorId {
        ProcessorId(local_rank as usize % self.processors.len())
    }

    /// Runs `duration` of work for process `local_rank` on its application
    /// processor, starting no earlier than `now`.  Returns `(start, end)`.
    pub fn run_app_work(
        &mut self,
        local_rank: u32,
        now: SimTime,
        duration: SimDuration,
    ) -> (SimTime, SimTime) {
        let p = self.app_processor(local_rank);
        self.processors.run_on(p, now, duration)
    }

    /// Runs `duration` of kernel work on the least-loaded processor (§4.1),
    /// excluding `avoid` when given (the application's processor).  Returns
    /// `(processor, start, end)`.
    pub fn run_kernel_work_least_loaded(
        &mut self,
        now: SimTime,
        duration: SimDuration,
        avoid: Option<ProcessorId>,
    ) -> (ProcessorId, SimTime, SimTime) {
        let p = match avoid {
            Some(a) => self.processors.least_loaded_excluding(a),
            None => self.processors.least_loaded(),
        };
        let (s, e) = self.processors.run_on(p, now, duration);
        (p, s, e)
    }

    /// Dispatches the reception handler for an arrival at `arrival`,
    /// charging the invocation overhead to the chosen processor.  Returns the
    /// dispatch decision with the handler start time already serialised
    /// against the chosen processor's earlier work.
    pub fn dispatch_reception(&mut self, arrival: SimTime) -> Dispatch {
        let d = self
            .interrupts
            .dispatch(&self.hw, &self.processors, arrival);
        let (_, end) = self.processors.run_on(d.processor, arrival, d.overhead);
        Dispatch {
            processor: d.processor,
            handler_start: end.max(d.handler_start),
            overhead: d.overhead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> SmpNode {
        SmpNode::new(0, HwConfig::pentium_pro_1999(), InterruptMode::Symmetric)
    }

    #[test]
    fn app_processor_assignment_is_stable() {
        let n = node();
        assert_eq!(n.app_processor(0), ProcessorId(0));
        assert_eq!(n.app_processor(1), ProcessorId(1));
        assert_eq!(n.app_processor(5), ProcessorId(1));
    }

    #[test]
    fn page_tables_are_per_process_and_persistent() {
        let mut n = node();
        let a1 = n.page_table(0).translate(0x1000, 10_000);
        let b = n.page_table(1).translate(0x1000, 10_000);
        let a2 = n.page_table(0).translate(0x1000, 10_000);
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    #[test]
    fn kernel_work_avoids_the_application_processor() {
        let mut n = node();
        let app = n.app_processor(0);
        for _ in 0..10 {
            let (p, _, _) =
                n.run_kernel_work_least_loaded(SimTime(0), SimDuration::from_micros(10), Some(app));
            assert_ne!(p, app);
        }
    }

    #[test]
    fn reception_dispatch_charges_overhead() {
        let mut n = node();
        let d = n.dispatch_reception(SimTime(1000));
        assert!(d.handler_start >= SimTime(1000) + n.hw().interrupt_entry_cost);
        let busy = n.processors().get(d.processor).busy_total();
        assert_eq!(busy, d.overhead);
    }

    #[test]
    fn app_work_serialises_per_process() {
        let mut n = node();
        let (_, e1) = n.run_app_work(0, SimTime(0), SimDuration::from_micros(100));
        let (s2, _) = n.run_app_work(0, SimTime(0), SimDuration::from_micros(50));
        assert_eq!(s2, e1);
        // A different process runs on a different processor, in parallel.
        let (s3, _) = n.run_app_work(1, SimTime(0), SimDuration::from_micros(50));
        assert_eq!(s3, SimTime(0));
    }
}
