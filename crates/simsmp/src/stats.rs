//! Measurement helpers reproducing the paper's methodology.
//!
//! "Each test performed one thousand iterations.  Among all timing results,
//! the first and last 10 % (in terms of execution time) were neglected.  Only
//! the middle 80 % of the timings was used to calculate the average."

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// A collection of latency samples with the paper's trimmed-mean reduction.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyStats {
    samples: Vec<SimDuration>,
}

impl LatencyStats {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, sample: SimDuration) {
        self.samples.push(sample);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The paper's reduction: sort by execution time, drop the first and last
    /// 10 %, and average the middle 80 %.  With fewer than ten samples the
    /// plain mean is returned.
    pub fn trimmed_mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let trim = sorted.len() / 10;
        let kept = &sorted[trim..sorted.len() - trim];
        let kept = if kept.is_empty() { &sorted[..] } else { kept };
        let sum: u128 = kept.iter().map(|d| d.as_nanos() as u128).sum();
        SimDuration((sum / kept.len() as u128) as u64)
    }

    /// Plain arithmetic mean.
    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u128 = self.samples.iter().map(|d| d.as_nanos() as u128).sum();
        SimDuration((sum / self.samples.len() as u128) as u64)
    }

    /// Minimum sample.
    pub fn min(&self) -> SimDuration {
        self.samples
            .iter()
            .copied()
            .min()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Maximum sample.
    pub fn max(&self) -> SimDuration {
        self.samples
            .iter()
            .copied()
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// The `p`-th percentile (0–100), by nearest-rank.
    pub fn percentile(&self, p: f64) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }
}

/// One bandwidth measurement: `bytes` transferred in `elapsed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BandwidthSample {
    /// Number of payload bytes transferred.
    pub bytes: u64,
    /// Time taken.
    pub elapsed: SimDuration,
}

impl BandwidthSample {
    /// Bandwidth in megabytes per second (decimal MB, as the paper reports).
    pub fn megabytes_per_second(&self) -> f64 {
        if self.elapsed == SimDuration::ZERO {
            return 0.0;
        }
        self.bytes as f64 / self.elapsed.as_secs_f64() / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trimmed_mean_ignores_outliers() {
        let mut s = LatencyStats::new();
        for _ in 0..96 {
            s.record(SimDuration::from_micros(10));
        }
        // Four wild outliers (cold caches, scheduling noise) are trimmed.
        for _ in 0..4 {
            s.record(SimDuration::from_millis(50));
        }
        let tm = s.trimmed_mean();
        assert_eq!(tm, SimDuration::from_micros(10));
        assert!(s.mean() > tm);
    }

    #[test]
    fn small_sample_sets_fall_back_to_plain_mean() {
        let mut s = LatencyStats::new();
        s.record(SimDuration::from_micros(10));
        s.record(SimDuration::from_micros(20));
        assert_eq!(s.trimmed_mean(), SimDuration::from_micros(15));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = LatencyStats::new();
        assert!(s.is_empty());
        assert_eq!(s.trimmed_mean(), SimDuration::ZERO);
        assert_eq!(s.mean(), SimDuration::ZERO);
        assert_eq!(s.min(), SimDuration::ZERO);
        assert_eq!(s.max(), SimDuration::ZERO);
        assert_eq!(s.percentile(99.0), SimDuration::ZERO);
    }

    #[test]
    fn min_max_percentile() {
        let mut s = LatencyStats::new();
        for i in 1..=100u64 {
            s.record(SimDuration::from_micros(i));
        }
        assert_eq!(s.min(), SimDuration::from_micros(1));
        assert_eq!(s.max(), SimDuration::from_micros(100));
        let p50 = s.percentile(50.0);
        assert!(p50 >= SimDuration::from_micros(50) && p50 <= SimDuration::from_micros(51));
        assert!(s.percentile(99.0) >= SimDuration::from_micros(98));
    }

    #[test]
    fn bandwidth_sample_math() {
        let s = BandwidthSample {
            bytes: 12_100_000,
            elapsed: SimDuration::from_secs(1),
        };
        assert!((s.megabytes_per_second() - 12.1).abs() < 1e-9);
        let z = BandwidthSample {
            bytes: 100,
            elapsed: SimDuration::ZERO,
        };
        assert_eq!(z.megabytes_per_second(), 0.0);
    }
}
