//! The discrete-event engine: a virtual clock plus a priority queue of
//! pending events.
//!
//! The engine is generic over the event payload type `E`; the binding crate
//! (`ppmsg-sim`) defines its own event enum and a handler that mutates the
//! simulated world.  Events scheduled for the same instant fire in
//! scheduling order (FIFO), which keeps runs deterministic.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Identifies a scheduled event so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A deterministic discrete-event simulation engine.
#[derive(Debug)]
pub struct Engine<E> {
    now: SimTime,
    queue: BinaryHeap<Reverse<Scheduled<E>>>,
    cancelled: HashSet<EventId>,
    next_seq: u64,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine with the clock at zero and an empty event queue.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            processed: 0,
        }
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events processed so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending (including cancelled ones not yet
    /// popped).
    pub fn pending(&self) -> usize {
        self.queue.len() - self.cancelled.len()
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(at >= self.now, "cannot schedule an event in the past");
        let id = EventId(self.next_seq);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse(Scheduled {
            time: at,
            seq,
            id,
            payload,
        }));
        id
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Cancels a previously scheduled event.  Returns `true` if the event had
    /// not fired yet.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        // Cancellation is lazy: the event is skipped when popped.
        self.cancelled.insert(id)
    }

    /// Pops the next non-cancelled event, advancing the clock to its time.
    pub fn next_event(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(ev)) = self.queue.pop() {
            if self.cancelled.remove(&ev.id) {
                continue;
            }
            debug_assert!(ev.time >= self.now, "event queue went backwards");
            self.now = ev.time;
            self.processed += 1;
            return Some((ev.time, ev.payload));
        }
        None
    }

    /// Runs the simulation until the event queue is exhausted or `handler`
    /// returns `false`, whichever comes first.  Returns the number of events
    /// processed by this call.
    pub fn run_while(&mut self, mut handler: impl FnMut(&mut Self, SimTime, E) -> bool) -> u64 {
        let start = self.processed;
        while let Some((time, payload)) = self.next_event() {
            if !handler(self, time, payload) {
                break;
            }
        }
        self.processed - start
    }

    /// Runs until the queue is empty or the clock passes `deadline`.
    /// Events scheduled after the deadline remain queued.
    pub fn run_until(
        &mut self,
        deadline: SimTime,
        mut handler: impl FnMut(&mut Self, SimTime, E) -> bool,
    ) -> u64 {
        let start = self.processed;
        loop {
            let next_time = loop {
                match self.queue.peek() {
                    Some(Reverse(ev)) if self.cancelled.contains(&ev.id) => {
                        let Reverse(ev) = self.queue.pop().unwrap();
                        self.cancelled.remove(&ev.id);
                    }
                    Some(Reverse(ev)) => break Some(ev.time),
                    None => break None,
                }
            };
            match next_time {
                Some(t) if t <= deadline => {
                    let (time, payload) = self.next_event().expect("peeked event must exist");
                    if !handler(self, time, payload) {
                        break;
                    }
                }
                _ => break,
            }
        }
        self.processed - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule_at(SimTime(300), 3);
        engine.schedule_at(SimTime(100), 1);
        engine.schedule_at(SimTime(200), 2);
        let mut seen = Vec::new();
        engine.run_while(|eng, time, payload| {
            assert_eq!(eng.now(), time);
            seen.push((time.as_nanos(), payload));
            true
        });
        assert_eq!(seen, vec![(100, 1), (200, 2), (300, 3)]);
        assert_eq!(engine.events_processed(), 3);
    }

    #[test]
    fn same_time_events_fire_in_fifo_order() {
        let mut engine: Engine<u32> = Engine::new();
        for i in 0..10 {
            engine.schedule_at(SimTime(500), i);
        }
        let mut seen = Vec::new();
        engine.run_while(|_, _, p| {
            seen.push(p);
            true
        });
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handler_can_schedule_more_events() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule_at(SimTime(10), 0);
        let mut count = 0;
        engine.run_while(|eng, _, payload| {
            count += 1;
            if payload < 5 {
                eng.schedule_in(SimDuration(10), payload + 1);
            }
            true
        });
        assert_eq!(count, 6);
        assert_eq!(engine.now(), SimTime(60));
    }

    #[test]
    fn cancellation_skips_events() {
        let mut engine: Engine<&'static str> = Engine::new();
        let _a = engine.schedule_at(SimTime(10), "keep");
        let b = engine.schedule_at(SimTime(20), "cancel");
        let _c = engine.schedule_at(SimTime(30), "keep2");
        assert!(engine.cancel(b));
        assert!(!engine.cancel(b), "double cancel reports false");
        assert!(!engine.cancel(EventId(999)));
        let mut seen = Vec::new();
        engine.run_while(|_, _, p| {
            seen.push(p);
            true
        });
        assert_eq!(seen, vec!["keep", "keep2"]);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut engine: Engine<u32> = Engine::new();
        for i in 1..=10u64 {
            engine.schedule_at(SimTime(i * 100), i as u32);
        }
        let mut seen = Vec::new();
        engine.run_until(SimTime(450), |_, _, p| {
            seen.push(p);
            true
        });
        assert_eq!(seen, vec![1, 2, 3, 4]);
        assert_eq!(engine.now(), SimTime(400));
        // The rest is still there.
        let mut rest = Vec::new();
        engine.run_while(|_, _, p| {
            rest.push(p);
            true
        });
        assert_eq!(rest.len(), 6);
    }

    #[test]
    fn handler_returning_false_stops_the_run() {
        let mut engine: Engine<u32> = Engine::new();
        for i in 0..10 {
            engine.schedule_at(SimTime(10 + i), i as u32);
        }
        let n = engine.run_while(|_, _, p| p < 3);
        assert_eq!(n, 4); // events 0,1,2 return true; 3 returns false.
        assert_eq!(engine.pending(), 6);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule_at(SimTime(100), 1);
        engine.run_while(|eng, _, _| {
            eng.schedule_at(SimTime(50), 2);
            true
        });
    }
}
