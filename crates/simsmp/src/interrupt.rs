//! Reception-handler invocation: asymmetric interrupts, symmetric interrupts
//! with least-loaded arbitration, or polling (stage 3 of the communication
//! model in §2).

use crate::config::HwConfig;
use crate::cpu::{ProcessorBank, ProcessorId};
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// How the reception handler is invoked when data arrives at a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InterruptMode {
    /// Requests are always delivered to one pre-assigned processor.
    Asymmetric(ProcessorId),
    /// Requests can be delivered to different processors; the arbitration
    /// scheme used here picks the least-loaded one (this is the mode used in
    /// all of the paper's optimised tests).
    Symmetric,
    /// A polling routine watches state variables; the handler starts at the
    /// next polling tick after arrival.
    Polling,
}

/// Statistics of the interrupt controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterruptStats {
    /// Handler invocations dispatched.
    pub dispatches: u64,
    /// Invocations delivered to each processor (indexed by processor id,
    /// fixed maximum of 16 for simplicity).
    pub per_processor: [u64; 16],
}

/// Decides which processor runs the reception handler for an arrival and how
/// much invocation overhead is charged.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterruptController {
    mode: InterruptMode,
    stats: InterruptStats,
}

/// The outcome of dispatching one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dispatch {
    /// Processor chosen to run the reception handler.
    pub processor: ProcessorId,
    /// Time at which the handler may begin (arrival + invocation overhead,
    /// or the next polling tick).
    pub handler_start: SimTime,
    /// The invocation overhead charged to the chosen processor.
    pub overhead: SimDuration,
}

impl InterruptController {
    /// Creates a controller with the given invocation mode.
    pub fn new(mode: InterruptMode) -> Self {
        InterruptController {
            mode,
            stats: InterruptStats::default(),
        }
    }

    /// The configured invocation mode.
    pub fn mode(&self) -> InterruptMode {
        self.mode
    }

    /// Dispatches an arrival at time `arrival` on a node whose processors are
    /// described by `bank`.
    pub fn dispatch(&mut self, hw: &HwConfig, bank: &ProcessorBank, arrival: SimTime) -> Dispatch {
        let d = match self.mode {
            InterruptMode::Asymmetric(p) => Dispatch {
                processor: p,
                handler_start: arrival + hw.interrupt_entry_cost,
                overhead: hw.interrupt_entry_cost,
            },
            InterruptMode::Symmetric => {
                let overhead = hw.interrupt_entry_cost + hw.symmetric_arbitration_cost;
                Dispatch {
                    processor: bank.least_loaded(),
                    handler_start: arrival + overhead,
                    overhead,
                }
            }
            InterruptMode::Polling => {
                // The handler starts at the next polling tick on the least
                // loaded processor; the per-invocation overhead is small.
                let interval = hw.polling_interval.as_nanos().max(1);
                let next_tick = arrival.as_nanos().div_ceil(interval) * interval;
                Dispatch {
                    processor: bank.least_loaded(),
                    handler_start: SimTime(next_tick),
                    overhead: SimDuration::from_nanos(200),
                }
            }
        };
        self.stats.dispatches += 1;
        if d.processor.0 < 16 {
            self.stats.per_processor[d.processor.0] += 1;
        }
        d
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> InterruptStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn hw() -> HwConfig {
        HwConfig::pentium_pro_1999()
    }

    #[test]
    fn asymmetric_always_hits_the_assigned_processor() {
        let mut ic = InterruptController::new(InterruptMode::Asymmetric(ProcessorId(2)));
        let mut bank = ProcessorBank::new(4);
        bank.run_on(ProcessorId(2), SimTime(0), SimDuration::from_millis(10));
        for _ in 0..5 {
            let d = ic.dispatch(&hw(), &bank, SimTime(100));
            assert_eq!(d.processor, ProcessorId(2));
            assert_eq!(d.handler_start, SimTime(100) + hw().interrupt_entry_cost);
        }
        assert_eq!(ic.stats().dispatches, 5);
        assert_eq!(ic.stats().per_processor[2], 5);
    }

    #[test]
    fn symmetric_picks_least_loaded_processor() {
        let mut ic = InterruptController::new(InterruptMode::Symmetric);
        let mut bank = ProcessorBank::new(4);
        bank.run_on(ProcessorId(0), SimTime(0), SimDuration::from_millis(1));
        bank.run_on(ProcessorId(1), SimTime(0), SimDuration::from_millis(2));
        bank.run_on(ProcessorId(3), SimTime(0), SimDuration::from_millis(3));
        let d = ic.dispatch(&hw(), &bank, SimTime(0));
        assert_eq!(d.processor, ProcessorId(2));
        assert!(d.overhead > hw().interrupt_entry_cost);
    }

    #[test]
    fn polling_waits_for_the_next_tick() {
        let mut ic = InterruptController::new(InterruptMode::Polling);
        let bank = ProcessorBank::new(4);
        let interval = hw().polling_interval.as_nanos();
        let arrival = SimTime(interval + 1);
        let d = ic.dispatch(&hw(), &bank, arrival);
        assert_eq!(d.handler_start, SimTime(interval * 2));
        // Arrival exactly on a tick is served at that tick.
        let d = ic.dispatch(&hw(), &bank, SimTime(interval));
        assert_eq!(d.handler_start, SimTime(interval));
    }

    #[test]
    fn symmetric_spreads_load_across_processors() {
        let mut ic = InterruptController::new(InterruptMode::Symmetric);
        let mut bank = ProcessorBank::new(4);
        // Dispatch a series of arrivals, each handler occupying the chosen
        // processor for a while: the controller should rotate processors.
        for i in 0..8 {
            let now = SimTime(i * 100);
            let d = ic.dispatch(&hw(), &bank, now);
            bank.run_on(d.processor, d.handler_start, SimDuration::from_micros(500));
        }
        let touched = ic.stats().per_processor.iter().filter(|&&c| c > 0).count();
        assert!(
            touched >= 3,
            "expected load spreading, got {touched} processors"
        );
    }
}
