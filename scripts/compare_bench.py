#!/usr/bin/env python3
"""Compare two BENCH_PR*.json files and fail on hot-path regressions.

Usage:
    compare_bench.py BASELINE.json CURRENT.json [--threshold 1.25] [--calibrate]

Every benchmark key present in both files is compared; a key whose current
median exceeds baseline * threshold is a regression and the script exits 1.
Keys only present on one side (benches added or retired between PRs) are
reported and skipped.  ``--skip KEY`` (repeatable) excludes a key from the
gate entirely — for informational rows like speedup ratios, where "bigger
than baseline" means the hardware got better, not that the code got worse.

--calibrate rescales the current numbers by the median speed ratio of the
``*_naive`` benches shared by both files.  Those benches run the frozen
pre-refactor implementations preserved in ``ppmsg_bench::baseline``, so their
drift measures the machine/toolchain, not our code; dividing it out lets a
checked-in baseline from one machine gate runs on another (CI runners are not
the laptop that produced the baseline).  Without any shared naive keys the
flag is a no-op.
"""

import argparse
import json
import statistics
import sys


def load(path: str) -> dict[str, float]:
    with open(path) as fh:
        doc = json.load(fh)
    return {k: float(v) for k, v in doc["benches"].items()}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="fail when current > baseline * threshold (default 1.25)")
    parser.add_argument("--calibrate", action="store_true",
                        help="rescale by the shared *_naive benches' drift")
    parser.add_argument("--skip", action="append", default=[], metavar="KEY",
                        help="exclude KEY from the regression gate (repeatable)")
    args = parser.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    shared = sorted((base.keys() & cur.keys()) - set(args.skip))
    if not shared:
        print("error: no shared benchmark keys to compare", file=sys.stderr)
        return 1

    scale = 1.0
    if args.calibrate:
        ratios = [cur[k] / base[k] for k in shared
                  if k.endswith("_naive") and base[k] > 0]
        if ratios:
            scale = statistics.median(ratios)
            print(f"calibration: machine-drift scale {scale:.3f} "
                  f"(median of {len(ratios)} frozen-baseline benches)")

    regressions = []
    print(f"{'benchmark':<48} {'baseline':>10} {'current':>10} {'ratio':>7}")
    for key in shared:
        adjusted = cur[key] / scale
        ratio = adjusted / base[key] if base[key] > 0 else float("inf")
        flag = ""
        if ratio > args.threshold:
            regressions.append((key, ratio))
            flag = "  << REGRESSION"
        print(f"{key:<48} {base[key]:>10.1f} {adjusted:>10.1f} {ratio:>6.2f}x{flag}")

    for key in sorted(base.keys() - cur.keys()):
        print(f"{key:<48} {'(retired)':>10}")
    for key in sorted(cur.keys() - base.keys()):
        print(f"{key:<48} {'(new)':>21} {cur[key]:>10.1f}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond {args.threshold:.2f}x:",
              file=sys.stderr)
        for key, ratio in regressions:
            print(f"  {key}: {ratio:.2f}x", file=sys.stderr)
        return 1
    print(f"\nok: {len(shared)} benches within {args.threshold:.2f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
