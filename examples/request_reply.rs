//! Many-client request/reply server over the async front-end.
//!
//! One server endpoint keeps a full window of wildcard receives in flight —
//! one per expected request, all posted before any request arrives — while N
//! client tasks each send a burst of requests and await the replies.  The
//! whole exchange is scheduled by the [`Driver`], the shared progress
//! multiplexer: a single thread overlaps every receive, send, and reply
//! without ever blocking in `wait`.
//!
//! The same generic function runs on all three backends:
//!
//! * the deterministic sim-cluster loopback (same interleaving every run),
//! * the intranode shared-memory fabric (engines pumped on the posting
//!   thread),
//! * the UDP internode backend (engines pumped by per-endpoint reception
//!   threads; completions wake the driver).
//!
//! Run with: `cargo run --example request_reply`

use bytes::Bytes;
use push_pull_messaging::core::ANY_SOURCE;
use push_pull_messaging::prelude::*;
use std::sync::{Arc, Mutex};

const CLIENTS: usize = 6;
const REQUESTS_PER_CLIENT: usize = 4;
const REQ_TAG: Tag = Tag(1);
const REPLY_TAG: Tag = Tag(2);

/// Builds the request payload client `id` sends as its `seq`-th request.
fn request(id: ProcessId, seq: usize) -> Bytes {
    Bytes::from(format!("client {id} request {seq}").into_bytes())
}

/// The reply is the request payload, uppercased — enough to prove the server
/// really saw it.
fn reply_for(request: &[u8]) -> Bytes {
    Bytes::from(request.to_ascii_uppercase())
}

/// Runs the request/reply exchange: `endpoints[0]` serves, the rest are
/// clients.  Returns the number of replies received, which the caller checks
/// against the expected total.  Generic over the backend through the
/// `Endpoint<T: RawTransport>` front-end — the same function also accepts
/// `Endpoint<Box<dyn RawTransport>>` for heterogeneous fleets.
fn run_request_reply<T: RawTransport + 'static>(endpoints: Vec<Endpoint<T>>, label: &str) -> usize {
    let total = (endpoints.len() - 1) * REQUESTS_PER_CLIENT;
    let replies = Arc::new(Mutex::new(0usize));
    let mut driver = Driver::new();

    let mut endpoints = endpoints.into_iter();
    let server = endpoints.next().expect("server endpoint");

    // The server overlaps `total` wildcard receives: every request slot is
    // posted before the first request arrives, so no client ever finds the
    // server without a matching receive, however the sends interleave.
    driver.spawn(async move {
        let pending: Vec<_> = (0..total)
            .map(|_| {
                server
                    .recv(ANY_SOURCE, REQ_TAG, 1024, TruncationPolicy::Error)
                    .expect("post server receive")
            })
            .collect();
        for fut in pending {
            let req = fut.await;
            assert_eq!(req.status, Status::Ok, "server receive failed");
            let body = req.data.as_deref().expect("request payload");
            let reply = reply_for(body);
            server
                .send(req.peer, REPLY_TAG, reply)
                .expect("post reply")
                .await;
        }
    });

    for client in endpoints {
        let replies = replies.clone();
        let server_id = ProcessId::new(0, 0);
        driver.spawn(async move {
            for seq in 0..REQUESTS_PER_CLIENT {
                let body = request(client.local_id(), seq);
                let expected = reply_for(&body);
                // Post the reply receive before the request goes out, then
                // overlap both: the send and the receive are in flight
                // together.
                let reply = client
                    .recv(server_id, REPLY_TAG, 1024, TruncationPolicy::Error)
                    .expect("post reply receive");
                client
                    .send(server_id, REQ_TAG, body)
                    .expect("post request")
                    .await;
                let got = reply.await;
                assert_eq!(got.status, Status::Ok, "reply receive failed");
                assert_eq!(got.data.as_deref(), Some(&expected[..]), "reply payload");
                *replies.lock().unwrap() += 1;
            }
        });
    }

    driver.run();
    let count = *replies.lock().unwrap();
    println!("{label}: {count}/{total} replies received");
    count
}

fn main() {
    let expected = CLIENTS * REQUESTS_PER_CLIENT;

    // Deterministic sim-cluster loopback: server on node 0, clients on their
    // own nodes (internode go-back-N path), zero latency, same interleaving
    // every run.
    let cluster =
        LoopbackCluster::new(ProtocolConfig::paper_internode().with_pushed_buffer(128 * 1024));
    let mut endpoints = vec![Endpoint::new(cluster.add_endpoint(ProcessId::new(0, 0)))];
    for rank in 1..=CLIENTS as u32 {
        endpoints.push(Endpoint::new(cluster.add_endpoint(ProcessId::new(rank, 0))));
    }
    assert_eq!(run_request_reply(endpoints, "loopback"), expected);

    // Intranode shared-memory fabric: every endpoint is a thread-safe handle
    // onto one node's fabric; the driver still runs everything on one thread.
    let cluster = HostCluster::new(
        0,
        ProtocolConfig::paper_intranode().with_pushed_buffer(128 * 1024),
    );
    let mut endpoints = vec![Endpoint::new(cluster.add_endpoint(0))];
    for rank in 1..=CLIENTS as u32 {
        endpoints.push(Endpoint::new(cluster.add_endpoint(rank)));
    }
    assert_eq!(run_request_reply(endpoints, "intranode"), expected);

    // UDP internode backend: real sockets on localhost, reception threads
    // pumping the engines, completions waking the driver.
    let proto = ProtocolConfig::paper_internode().with_pushed_buffer(128 * 1024);
    let mut endpoints = Vec::new();
    for rank in 0..=CLIENTS as u32 {
        endpoints.push(Endpoint::new(
            UdpEndpoint::bind(ProcessId::new(rank, 0), proto.clone(), "127.0.0.1:0")
                .expect("bind UDP endpoint"),
        ));
    }
    let addrs: Vec<_> = endpoints
        .iter()
        .map(|e| (e.local_id(), e.raw().local_addr().unwrap()))
        .collect();
    for endpoint in &endpoints {
        for (id, addr) in &addrs {
            if *id != endpoint.local_id() {
                endpoint.raw().add_peer(*id, *addr);
            }
        }
    }
    assert_eq!(run_request_reply(endpoints, "udp"), expected);

    println!("request/reply completed on all three backends");
}
