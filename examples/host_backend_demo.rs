//! The real (non-simulated) backend: threads exchanging messages through the
//! shared-memory fabric and through UDP loopback sockets, using the same
//! protocol engine the simulator drives.
//!
//! Run with: `cargo run --release --example host_backend_demo`

use bytes::Bytes;
use push_pull_messaging::prelude::*;
use std::time::{Duration, Instant};

fn main() {
    let timeout = Duration::from_secs(5);

    // --- intranode: two threads, one shared-memory fabric ----------------
    let cluster = HostCluster::new(
        0,
        ProtocolConfig::paper_intranode().with_pushed_buffer(256 * 1024),
    );
    let a = Endpoint::new(cluster.add_endpoint(0));
    let b = Endpoint::new(cluster.add_endpoint(1));
    let data = Bytes::from(vec![1u8; 65536]);
    let start = Instant::now();
    let iters = 2000;
    for _ in 0..iters {
        // Post the send, then receive: a large message only completes its
        // send once the receiver's pull has been served, so a blocking send
        // before the matching receive would deadlock.
        let s1 = a.post_send(b.local_id(), Tag(1), data.clone()).unwrap();
        let got = b
            .recv_blocking(a.local_id(), Tag(1), data.len(), timeout)
            .unwrap();
        let s2 = b.post_send(a.local_id(), Tag(2), got).unwrap();
        a.recv_blocking(b.local_id(), Tag(2), data.len(), timeout)
            .unwrap();
        a.wait(OpId::Send(s1), timeout).unwrap();
        b.wait(OpId::Send(s2), timeout).unwrap();
    }
    let elapsed = start.elapsed();
    let bytes = 2.0 * iters as f64 * data.len() as f64;
    println!(
        "intranode fabric: {iters} x 64 KiB round trips in {:.2?} ({:.0} MB/s)",
        elapsed,
        bytes / elapsed.as_secs_f64() / 1e6
    );

    // --- internode: UDP loopback -----------------------------------------
    let proto = ProtocolConfig::paper_internode().with_pushed_buffer(256 * 1024);
    let ua = UdpEndpoint::bind(ProcessId::new(0, 0), proto.clone(), "127.0.0.1:0").unwrap();
    let ub = UdpEndpoint::bind(ProcessId::new(1, 0), proto, "127.0.0.1:0").unwrap();
    ua.add_peer(ub.id(), ub.local_addr().unwrap());
    ub.add_peer(ua.id(), ua.local_addr().unwrap());
    let (ua, ub) = (Endpoint::new(ua), Endpoint::new(ub));
    let data = Bytes::from(vec![2u8; 4096]);
    let start = Instant::now();
    let iters = 500;
    for _ in 0..iters {
        let s1 = ua.post_send(ub.local_id(), Tag(1), data.clone()).unwrap();
        let got = ub
            .recv_blocking(ua.local_id(), Tag(1), data.len(), timeout)
            .unwrap();
        let s2 = ub.post_send(ua.local_id(), Tag(2), got).unwrap();
        ua.recv_blocking(ub.local_id(), Tag(2), data.len(), timeout)
            .unwrap();
        ua.wait(OpId::Send(s1), timeout).unwrap();
        ub.wait(OpId::Send(s2), timeout).unwrap();
    }
    let elapsed = start.elapsed();
    println!(
        "udp loopback: {iters} x 4 KiB round trips in {:.2?} ({:.1} us/rtt)",
        elapsed,
        elapsed.as_micros() as f64 / iters as f64
    );
    println!("same protocol engine, real OS transports — see ppmsg-sim for the 1999 numbers");
}
