//! Quickstart: drive the sans-I/O protocol engine by hand.
//!
//! Two endpoints on the same node exchange a 4 KiB message; we relay the
//! engine's actions ourselves so every protocol step is visible, then drain
//! the completion queues for the results.  A second exchange receives into a
//! caller-owned buffer (`post_recv_into`) — the allocation-free pull path.
//!
//! Run with: `cargo run --example quickstart`

use bytes::Bytes;
// This example drives the sans-I/O protocol *engine* by hand; the explicit
// import shadows the prelude's transport front-end of the same name.
use push_pull_messaging::core::Endpoint;
use push_pull_messaging::prelude::*;

/// Relays one endpoint's actions into the other, printing each step.
fn pump(me: &mut Endpoint, other: &mut Endpoint) -> bool {
    let mut progressed = false;
    while let Some(action) = me.poll_action() {
        progressed = true;
        match action {
            Action::Transmit { packet, .. } => {
                println!(
                    "  {} -> {}: {:?} ({} payload bytes)",
                    me.id(),
                    other.id(),
                    packet.header.kind,
                    packet.payload.len()
                );
                other.handle_packet(me.id(), packet);
            }
            Action::Copy { kind, bytes, .. } => {
                println!("  {}: copy {:?} of {} bytes", me.id(), kind, bytes);
            }
            _ => {}
        }
    }
    progressed
}

fn relay(sender: &mut Endpoint, receiver: &mut Endpoint) {
    loop {
        let mut progressed = pump(sender, receiver);
        progressed |= pump(receiver, sender);
        if !progressed {
            break;
        }
    }
}

/// Prints and returns every completion an endpoint has queued.
fn drain(endpoint: &mut Endpoint) -> Vec<Completion> {
    let mut out = Vec::new();
    endpoint.drain_completions_into(&mut out);
    for c in &out {
        println!(
            "  {}: {} completed with {:?} ({} bytes, peer {}, {})",
            endpoint.id(),
            c.op,
            c.status,
            c.len,
            c.peer,
            c.tag
        );
    }
    out
}

fn main() {
    let cfg = ProtocolConfig::paper_intranode();
    let alice = ProcessId::new(0, 0);
    let bob = ProcessId::new(0, 1);
    let mut sender = Endpoint::new(alice, cfg.clone());
    let mut receiver = Endpoint::new(bob, cfg);

    let message = Bytes::from(vec![42u8; 4096]);
    println!(
        "posting a {}-byte send (mode: push-pull, BTP = 16)",
        message.len()
    );
    sender.post_send(bob, Tag(7), message.clone()).unwrap();
    let recv_op = receiver.post_recv(alice, Tag(7), 4096).unwrap();
    relay(&mut sender, &mut receiver);

    drain(&mut sender);
    let delivered = drain(&mut receiver)
        .into_iter()
        .find(|c| c.op == OpId::Recv(recv_op))
        .expect("message must be delivered");
    assert_eq!(delivered.status, Status::Ok);
    assert_eq!(delivered.data.unwrap(), message);
    println!("message delivered intact through the completion queue");

    // Round two: a caller-owned buffer. The engine reassembles the pushed
    // and pulled fragments directly into it and hands it back.
    println!("\nreceiving into a caller-owned RecvBuf (allocation-free pull path)");
    let op = receiver
        .post_recv_into(
            alice,
            Tag(8),
            RecvBuf::with_capacity(4096),
            TruncationPolicy::Error,
        )
        .unwrap();
    sender.post_send(bob, Tag(8), message.clone()).unwrap();
    relay(&mut sender, &mut receiver);
    drain(&mut sender);
    let completion = drain(&mut receiver)
        .into_iter()
        .find(|c| c.op == OpId::Recv(op))
        .expect("caller-buffered receive must complete");
    let buf = completion.buf.expect("buffer handed back");
    assert_eq!(buf.as_slice(), &message[..]);
    println!("caller buffer returned with {} bytes — done", buf.len());
}
