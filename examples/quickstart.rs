//! Quickstart: drive the sans-I/O protocol engine by hand.
//!
//! Two endpoints on the same node exchange a 4 KiB message; we relay the
//! engine's actions ourselves so every protocol step is visible.
//!
//! Run with: `cargo run --example quickstart`

use bytes::Bytes;
use push_pull_messaging::prelude::*;

fn main() {
    let cfg = ProtocolConfig::paper_intranode();
    let alice = ProcessId::new(0, 0);
    let bob = ProcessId::new(0, 1);
    let mut sender = Endpoint::new(alice, cfg.clone());
    let mut receiver = Endpoint::new(bob, cfg);

    let message = Bytes::from(vec![42u8; 4096]);
    println!(
        "posting a {}-byte send (mode: push-pull, BTP = 16)",
        message.len()
    );
    sender.post_send(bob, Tag(7), message.clone()).unwrap();
    receiver.post_recv(alice, Tag(7), 4096).unwrap();

    // Relay packets between the two endpoints until both go idle, printing
    // each protocol step.
    fn pump(me: &mut Endpoint, other: &mut Endpoint, delivered: &mut Option<bytes::Bytes>) -> bool {
        let mut progressed = false;
        while let Some(action) = me.poll_action() {
            progressed = true;
            match action {
                Action::Transmit { packet, .. } => {
                    println!(
                        "  {} -> {}: {:?} ({} payload bytes)",
                        me.id(),
                        other.id(),
                        packet.header.kind,
                        packet.payload.len()
                    );
                    other.handle_packet(me.id(), packet);
                }
                Action::Copy { kind, bytes, .. } => {
                    println!("  {}: copy {:?} of {} bytes", me.id(), kind, bytes);
                }
                Action::RecvComplete { data, .. } => {
                    println!("  {}: receive complete ({} bytes)", me.id(), data.len());
                    *delivered = Some(data);
                }
                Action::SendComplete { bytes, .. } => {
                    println!("  {}: send complete ({bytes} bytes)", me.id());
                }
                _ => {}
            }
        }
        progressed
    }

    let mut delivered = None;
    loop {
        let mut progressed = pump(&mut sender, &mut receiver, &mut delivered);
        progressed |= pump(&mut receiver, &mut sender, &mut delivered);
        if !progressed {
            break;
        }
    }
    assert_eq!(delivered.expect("message must be delivered"), message);
    println!("message delivered intact — done");
}
