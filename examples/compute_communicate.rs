//! The early/late receiver experiment of §5.3: a compute-then-communicate
//! parallel program where the receiver is forced to post its receive either
//! before (early) or after (late) the matching send, showing how Push-Pull
//! adapts while Push-All collapses when its pushed buffer overflows.
//!
//! Run with: `cargo run --release --example compute_communicate`

use ppmsg_sim::experiments::{early_late_test, EarlyLateVariant};

fn main() {
    let sizes = [4usize, 2048, 3072, 4096, 8192];
    let iters = 6;
    for variant in [EarlyLateVariant::Early, EarlyLateVariant::Late] {
        let (x, y) = variant.nops();
        println!(
            "\n{} receiver test (x = {x} NOPs, y = {y} NOPs), loop latency in us:",
            variant.label()
        );
        for p in early_late_test(variant, &sizes, iters) {
            print!("  {:>6} B", p.size);
            for (label, v) in &p.series {
                print!("   {label}={v:.0}");
            }
            println!();
        }
    }
    println!("\nNote how push-all/late explodes once the message no longer fits the 4 KiB");
    println!("pushed buffer and go-back-N retransmission has to recover the dropped frames,");
    println!("while push-pull stays steady — the paper's central robustness claim.");
}
