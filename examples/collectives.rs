//! Collective communication demo: a distributed "word-count"-style
//! pipeline — scatter, compute, all-reduce, gather — run twice:
//!
//! 1. deterministically, with every rank as a task on one [`Driver`] over
//!    the loopback cluster (the same interleaving every run), and
//! 2. concurrently, with one OS thread per rank over the intranode host
//!    backend, using the blocking collective flavours.
//!
//! Run with `cargo run --example collectives`.

use bytes::Bytes;
use push_pull_messaging::coll::Group;
use push_pull_messaging::prelude::*;
use std::sync::{Arc, Mutex};

/// Sum two little-endian u64 payloads element-wise (length-preserving and
/// associative, as the reduce contract requires; addition is commutative
/// too, but the tree wouldn't care if it weren't).
fn sum_u64(a: Bytes, b: Bytes) -> Bytes {
    let mut out = Vec::with_capacity(a.len());
    for (x, y) in a.chunks_exact(8).zip(b.chunks_exact(8)) {
        let sum =
            u64::from_le_bytes(x.try_into().unwrap()) + u64::from_le_bytes(y.try_into().unwrap());
        out.extend_from_slice(&sum.to_le_bytes());
    }
    Bytes::from(out)
}

/// The SPMD body every rank runs: scatter a block of numbers from rank 0,
/// locally sum the block, all-reduce the partial sums, and gather the
/// per-rank partials back to rank 0 for display.
async fn rank_body<T: ppmsg_core::RawTransport>(
    member: GroupMember<T>,
    input: Bytes,
    block: usize,
    log: Arc<Mutex<Vec<String>>>,
) {
    let n = member.group().size();
    let mine = member.scatter(0, input, block).await.expect("scatter");

    // Local phase: fold my block into one u64.
    let local: u64 = mine
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .sum();

    // Everyone learns the global sum.
    let global = member
        .all_reduce(Bytes::copy_from_slice(&local.to_le_bytes()), sum_u64)
        .await
        .expect("all_reduce");
    let global = u64::from_le_bytes(global[..8].try_into().unwrap());

    // Rank 0 collects the per-rank partials for the report.
    let partials = member
        .gather(0, Bytes::copy_from_slice(&local.to_le_bytes()))
        .await
        .expect("gather");
    member.barrier().await.expect("barrier");

    if let Some(partials) = partials {
        let per_rank: Vec<u64> = partials
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        log.lock().unwrap().push(format!(
            "  {n} ranks: partial sums {per_rank:?}, global sum {global}"
        ));
    }
}

fn input_numbers(n_ranks: usize, per_rank: usize) -> (Bytes, usize, u64) {
    let total = n_ranks * per_rank;
    let mut buf = Vec::with_capacity(total * 8);
    let mut expect = 0u64;
    for v in 1..=total as u64 {
        expect += v;
        buf.extend_from_slice(&v.to_le_bytes());
    }
    (Bytes::from(buf), per_rank * 8, expect)
}

fn main() {
    let ranks = 6usize;
    let (input, block, expect) = input_numbers(ranks, 8);
    println!(
        "summing 1..={} across {ranks} ranks (expect {expect})",
        ranks * 8
    );

    // --- Deterministic: one Driver, loopback cluster, three sim nodes. ---
    println!("loopback cluster, one Driver:");
    let cluster = LoopbackCluster::new(ProtocolConfig::paper_internode());
    let ids: Vec<ProcessId> = (0..ranks)
        .map(|r| ProcessId::new((r / 2) as u32, (r % 2) as u32))
        .collect();
    let group = Group::new(1, ids.clone()).unwrap();
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut driver = Driver::new();
    for &id in &ids {
        let member = group.bind(Endpoint::new(cluster.add_endpoint(id))).unwrap();
        let data = if member.rank() == 0 {
            input.clone()
        } else {
            Bytes::new()
        };
        driver.spawn(rank_body(member, data, block, log.clone()));
    }
    driver.run();
    for line in log.lock().unwrap().drain(..) {
        println!("{line}");
    }

    // --- Concurrent: one thread per rank, intranode shared memory. ---
    println!("intranode host backend, one thread per rank:");
    let host = HostCluster::new(0, ProtocolConfig::paper_intranode());
    let ids: Vec<ProcessId> = (0..ranks as u32).map(|r| ProcessId::new(0, r)).collect();
    let group = Group::new(2, ids.clone()).unwrap();
    let log = Arc::new(Mutex::new(Vec::new()));
    std::thread::scope(|s| {
        for &id in &ids {
            let member = group
                .bind(Endpoint::new(host.add_endpoint(id.local_rank)))
                .unwrap();
            let data = if member.rank() == 0 {
                input.clone()
            } else {
                Bytes::new()
            };
            let log = log.clone();
            s.spawn(move || block_on(rank_body(member, data, block, log)));
        }
    });
    for line in log.lock().unwrap().drain(..) {
        println!("{line}");
    }
}
