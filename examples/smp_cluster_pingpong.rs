//! Reproduce the paper's headline latency/bandwidth numbers on the simulated
//! 1999 testbed (two quad Pentium Pro nodes, 100 Mbit/s Fast Ethernet).
//!
//! Run with: `cargo run --release --example smp_cluster_pingpong`

use ppmsg_sim::experiments::{
    bandwidth_sweep, fig3_intranode, fig3_sizes, fig4_internode, fig4_sizes, headline_numbers,
};

fn main() {
    let iters = 40;
    println!("Simulating the paper's testbed (this takes a few seconds)...\n");

    let h = headline_numbers(iters);
    println!("Headline numbers (paper -> measured):");
    println!(
        "  intranode 10-byte latency:   7.5 us   -> {:6.1} us",
        h.intranode_latency_us
    );
    println!(
        "  intranode peak bandwidth:  350.9 MB/s -> {:6.1} MB/s",
        h.intranode_peak_bw_mb_s
    );
    println!(
        "  internode 4-byte latency:   34.9 us   -> {:6.1} us",
        h.internode_latency_us
    );
    println!(
        "  internode peak bandwidth:   12.1 MB/s -> {:6.1} MB/s",
        h.internode_peak_bw_mb_s
    );
    println!(
        "  masked translation overhead: 12-13 us -> {:6.1} us",
        h.translation_overhead_us
    );

    println!("\nFigure 3 (intranode latency, us):");
    for p in fig3_intranode(&fig3_sizes(), iters) {
        print!("  {:>6} B", p.size);
        for (label, v) in &p.series {
            print!("   {label}={v:.1}");
        }
        println!();
    }

    println!("\nFigure 4 (internode latency, us):");
    for p in fig4_internode(&fig4_sizes(), iters) {
        print!("  {:>6} B", p.size);
        for (label, v) in &p.series {
            print!("   [{label}]={v:.1}");
        }
        println!();
    }

    println!("\nInternode bandwidth:");
    for p in bandwidth_sweep(false, &[1024, 4096, 8192, 32768], iters) {
        println!("  {:>6} B  {:6.1} MB/s", p.size, p.mb_per_s);
    }
}
